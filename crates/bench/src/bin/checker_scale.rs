//! Checker-scale profile: certification cost on 100k-op histories.
//!
//! Measures the three certification paths on a synthetic history with known
//! component structure (see `regular_sweep::synthetic_history`):
//!
//! * `witness_full_100k` — the sequential batch certificate checker over the
//!   whole history, the baseline every other row is a ratio of.
//! * `witness_decomposed_100k` — component-decomposed witness checking
//!   (single-threaded, so the ratio measures the decomposition itself, not
//!   host parallelism).
//! * `streaming_100k` — the windowed streaming checker fed in
//!   completion-time order through a reorder buffer.
//! * `saturated_search_2k` — the full search-side cascade (saturation
//!   prefilter + component decomposition + guided search) *finding* a
//!   witness for a 2k-op history, far past the old 128-op exact frontier.
//!
//! The decomposed and streaming rows carry a `speedup` ratio against
//! `witness_full_100k` measured in the same process, which transfers across
//! hosts the way absolute milliseconds do not; `bench_gate --checker` gates
//! those ratios against `ci/checker_scale_reference.json`.
//!
//! Usage:
//!
//! ```text
//! checker_scale [--ops 100000] [--groups 8] [--search-ops 2000] \
//!               [--out BENCH_checker_scale.json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use regular_core::checker::certificate::WitnessModel;
use regular_core::{check, check_witness, check_witness_decomposed, Model};
use regular_sweep::{certify_streaming, synthetic_history, write_json, Json};

/// Wall-clock milliseconds, median of `ROUNDS` interleaved runs per path.
///
/// The paths are measured round-robin (one run of each per round) rather
/// than back to back, so slow host phases (frequency scaling, a noisy
/// neighbour) hit every path about equally, and the median resists
/// outlier-fast and outlier-slow samples alike — the *ratios* the gate
/// consumes stay stable even when absolute times wobble.
fn time_all(paths: &mut [(&str, &mut dyn FnMut() -> bool)]) -> Vec<f64> {
    const ROUNDS: usize = 15;
    for (name, f) in paths.iter_mut() {
        assert!(f(), "{name} failed during warmup");
    }
    let mut samples = vec![Vec::with_capacity(ROUNDS); paths.len()];
    for _ in 0..ROUNDS {
        for (i, (name, f)) in paths.iter_mut().enumerate() {
            let started = Instant::now();
            assert!(f(), "{name} failed");
            samples[i].push(started.elapsed().as_secs_f64() * 1_000.0);
        }
    }
    samples
        .into_iter()
        .map(|mut s| {
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        })
        .collect()
}

fn entry(name: &str, ops: usize, components: usize, millis: f64, speedup: Option<f64>) -> Json {
    let round2 = |v: f64| (v * 100.0).round() / 100.0;
    let ops_per_sec = if millis > 0.0 { (ops as f64 / (millis / 1_000.0)).round() } else { 0.0 };
    let mut pairs = vec![
        ("name".to_string(), Json::str(name)),
        ("ops".to_string(), Json::u64(ops as u64)),
        ("components".to_string(), Json::u64(components as u64)),
        ("millis".to_string(), Json::f64(round2(millis))),
        ("ops_per_sec".to_string(), Json::f64(ops_per_sec)),
    ];
    if let Some(s) = speedup {
        pairs.push(("speedup".to_string(), Json::f64(round2(s))));
    }
    Json::Obj(pairs)
}

fn main() -> ExitCode {
    let mut ops = 100_000usize;
    let mut groups = 8usize;
    let mut search_ops = 2_000usize;
    let mut out = PathBuf::from("BENCH_checker_scale.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--ops" => ops = value().parse().expect("bad --ops"),
            "--groups" => groups = value().parse().expect("bad --groups"),
            "--search-ops" => search_ops = value().parse().expect("bad --search-ops"),
            "--out" => out = PathBuf::from(value()),
            other => {
                eprintln!("checker_scale: unknown argument '{other}'");
                eprintln!(
                    "usage: checker_scale [--ops N] [--groups G] [--search-ops N] [--out PATH]"
                );
                return ExitCode::from(2);
            }
        }
    }

    println!("== checker scale: {ops} ops in {groups} groups, search at {search_ops} ops ==");
    let (history, witness) = synthetic_history(ops, groups);
    let model = WitnessModel::Regular;

    let (search_history, _) = synthetic_history(search_ops, groups.min(4));

    let mut peak_window = 0usize;
    let mut full = || check_witness(&history, &witness, model).is_ok();
    let mut decomposed = || check_witness_decomposed(&history, &witness, model, 1).is_ok();
    let mut streaming = || match certify_streaming(&history, &witness, model) {
        Ok(stats) => {
            peak_window = stats.peak_window;
            true
        }
        Err(_) => false,
    };
    let mut search = || {
        check(&search_history, Model::RegularSequentialConsistency)
            .map(|o| o.satisfied)
            .unwrap_or(false)
    };
    let times = time_all(&mut [
        ("witness_full", &mut full),
        ("witness_decomposed", &mut decomposed),
        ("streaming", &mut streaming),
        ("saturated_search", &mut search),
    ]);
    let (full_ms, decomposed_ms, streaming_ms, search_ms) =
        (times[0], times[1], times[2], times[3]);
    println!("   witness_full       {full_ms:>9.2} ms");
    println!("   witness_decomposed {decomposed_ms:>9.2} ms ({:.2}x)", full_ms / decomposed_ms);
    println!("   streaming          {streaming_ms:>9.2} ms ({:.2}x)", full_ms / streaming_ms);
    println!("   saturated_search   {search_ms:>9.2} ms ({search_ops} ops)");

    let report = Json::Obj(
        vec![
            ("schema".to_string(), Json::str("regular-seq/checker-scale/v1")),
            ("peak_window".to_string(), Json::u64(peak_window as u64)),
            (
                "entries".to_string(),
                Json::Arr(vec![
                    entry("witness_full_100k", ops, groups, full_ms, None),
                    entry(
                        "witness_decomposed_100k",
                        ops,
                        groups,
                        decomposed_ms,
                        Some(full_ms / decomposed_ms),
                    ),
                    entry(
                        "streaming_100k",
                        ops,
                        groups,
                        streaming_ms,
                        Some(full_ms / streaming_ms),
                    ),
                    entry("saturated_search_2k", search_ops, groups.min(4), search_ms, None),
                ]),
            ),
        ]
        .into_iter()
        .collect(),
    );
    if let Err(e) = write_json(&out, &report) {
        eprintln!("checker_scale: failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("checker-scale profile written to {}", out.display());
    ExitCode::SUCCESS
}
