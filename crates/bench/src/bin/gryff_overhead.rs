//! §7.4: Gryff-RSC's overhead — throughput and median latency with the
//! wide-area emulation disabled, YCSB-A (50 % writes) and YCSB-B (5 % writes),
//! 10 % conflicts, increasing client counts.
//!
//! Usage: `cargo run --release -p regular-bench --bin gryff_overhead [--quick]`

use regular_bench::{fmt_ms, run_gryff_ycsb, GryffRunParams};
use regular_gryff::prelude::Mode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let client_counts: &[usize] = if quick { &[16, 64] } else { &[8, 16, 32, 64, 128, 256] };

    for (name, write_ratio) in [("YCSB-A (50% writes)", 0.5), ("YCSB-B (5% writes)", 0.05)] {
        println!("== Gryff overhead, {name}, 10% conflicts, single data center ==");
        println!(
            "{:>8} | {:>12} {:>10} | {:>12} {:>10} | {:>12}",
            "clients", "gryff op/s", "p50 ms", "rsc op/s", "p50 ms", "thpt delta"
        );
        for &clients in client_counts {
            let params = GryffRunParams {
                write_ratio,
                conflict_rate: 0.10,
                clients,
                wan: false,
                duration_secs: if quick { 5 } else { 10 },
                seed: 11,
            };
            let baseline = run_gryff_ycsb(Mode::Gryff, &params);
            let rsc = run_gryff_ycsb(Mode::GryffRsc, &params);
            let mut b = baseline.read_latencies.clone();
            b.merge(&baseline.write_latencies);
            let mut r = rsc.read_latencies.clone();
            r.merge(&rsc.write_latencies);
            let delta = if baseline.throughput > 0.0 {
                (rsc.throughput - baseline.throughput) / baseline.throughput * 100.0
            } else {
                0.0
            };
            println!(
                "{:>8} | {:>12.0} {:>10} | {:>12.0} {:>10} | {:>11.2}%",
                clients,
                baseline.throughput,
                fmt_ms(b.percentile(50.0)),
                rsc.throughput,
                fmt_ms(r.percentile(50.0)),
                delta,
            );
        }
        println!();
    }
    println!("Expectation (paper): Gryff-RSC's throughput and latency are within ~1% of Gryff's.");
}
