//! Wall-clock profile of the discrete-event engine hot path.
//!
//! Runs the fixed `engine_hotpath` protocol configurations (a 10-simulated-
//! second saturated single-DC Spanner-RSS run and a pipelined Gryff-RSC WAN
//! run) on both event-queue implementations — the indexed arena/time-wheel
//! queue and the retained reference heap — and reports the wall-clock of
//! each plus the speedup.
//! Because the two queues pop in identical order, the executions are
//! event-for-event the same; the bin asserts that (processed event counts
//! and simulated throughput must match exactly) before reporting.
//!
//! With `--out` the numbers land in `BENCH_engine.json`
//! (schema `regular-seq/engine-hotpath/v1`), which `bench_gate --engine`
//! compares against the checked-in `ci/engine_hotpath_reference.json`: the
//! *speedup ratio* is gated, not the raw wall-clock, so the gate is
//! meaningful on any host.
//!
//! Usage:
//!
//! ```text
//! sim_profile [--seconds 10] [--seed 1] [--iters 3] [--out BENCH_engine.json]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use regular_bench::runs::{engine_profile_gryff, engine_profile_spanner};
use regular_sim::queue::QueueKind;
use regular_sweep::{write_json, Json};

struct Profile {
    name: &'static str,
    events: u64,
    sim_ops: u64,
    indexed_wall_ms: f64,
    heap_wall_ms: f64,
}

impl Profile {
    fn speedup(&self) -> f64 {
        if self.indexed_wall_ms > 0.0 {
            self.heap_wall_ms / self.indexed_wall_ms
        } else {
            0.0
        }
    }
}

/// Times `run` over `iters` iterations and returns the median wall-clock in
/// milliseconds plus the last run's `(events, ops)` observables.
fn time_runs(iters: usize, mut run: impl FnMut() -> (u64, u64)) -> (f64, u64, u64) {
    let mut walls = Vec::with_capacity(iters);
    let mut observed = (0, 0);
    for _ in 0..iters {
        let started = Instant::now();
        observed = run();
        walls.push(started.elapsed().as_secs_f64() * 1_000.0);
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall clocks are finite"));
    (walls[walls.len() / 2], observed.0, observed.1)
}

fn profile(name: &'static str, iters: usize, run: impl Fn(QueueKind) -> (u64, u64)) -> Profile {
    let (indexed_wall_ms, events_indexed, ops_indexed) =
        time_runs(iters, || run(QueueKind::Indexed));
    let (heap_wall_ms, events_heap, ops_heap) = time_runs(iters, || run(QueueKind::ReferenceHeap));
    assert_eq!(
        (events_indexed, ops_indexed),
        (events_heap, ops_heap),
        "{name}: the two queue kinds must replay the identical execution"
    );
    Profile { name, events: events_indexed, sim_ops: ops_indexed, indexed_wall_ms, heap_wall_ms }
}

fn main() {
    let mut seconds = 10u64;
    let mut seed = 1u64;
    let mut iters = 3usize;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--seconds" => seconds = value().parse().expect("bad --seconds"),
            "--seed" => seed = value().parse().expect("bad --seed"),
            "--iters" => iters = value().parse::<usize>().expect("bad --iters").max(1),
            "--out" => out = Some(PathBuf::from(value())),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    println!(
        "== engine hot-path profile: {seconds} simulated seconds, seed {seed}, \
         median of {iters} iteration(s) =="
    );
    let profiles = vec![
        profile("spanner_rss_saturated", iters, |queue| {
            let result = engine_profile_spanner(seconds, seed, queue);
            let ops = result.client_stats.rw_completed + result.client_stats.ro_completed;
            (result.messages, ops)
        }),
        profile("gryff_rsc_wan", iters, |queue| {
            let result = engine_profile_gryff(seconds, seed, queue);
            let ops = result.client_stats.reads + result.client_stats.writes;
            (result.messages, ops)
        }),
    ];

    println!(
        "{:<18} {:>12} {:>10} {:>14} {:>14} {:>9}",
        "profile", "messages", "sim ops", "indexed (ms)", "heap (ms)", "speedup"
    );
    for p in &profiles {
        println!(
            "{:<18} {:>12} {:>10} {:>14.1} {:>14.1} {:>8.2}x",
            p.name,
            p.events,
            p.sim_ops,
            p.indexed_wall_ms,
            p.heap_wall_ms,
            p.speedup()
        );
    }

    if let Some(path) = out {
        let json = Json::obj(vec![
            ("schema", Json::str("regular-seq/engine-hotpath/v1")),
            ("seconds", Json::u64(seconds)),
            ("seed", Json::u64(seed)),
            ("iters", Json::u64(iters as u64)),
            (
                "profiles",
                Json::Arr(
                    profiles
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("name", Json::str(p.name)),
                                ("messages", Json::u64(p.events)),
                                ("sim_ops", Json::u64(p.sim_ops)),
                                ("indexed_wall_ms", Json::f64(round2(p.indexed_wall_ms))),
                                ("heap_wall_ms", Json::f64(round2(p.heap_wall_ms))),
                                ("speedup", Json::f64(round2(p.speedup()))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        match write_json(&path, &json) {
            Ok(()) => println!("engine profile written to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}
