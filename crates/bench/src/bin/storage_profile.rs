//! IO profile of the durable storage layer: group-commit batch size versus
//! write throughput, on both storage devices, with recovery verified after
//! every run.
//!
//! For each backend (the deterministic in-process `MemDisk` and real files
//! via `DirDisk` under `target/storage_profile`) and each group-commit
//! window, the profile appends a fixed stream of self-describing records on
//! a simulated clock (one record per `ARRIVAL_US`), syncing exactly when the
//! WAL's group-commit deadline expires — the same discipline the protocol
//! nodes use. It then crashes the log and replays it, verifying every
//! recovered record byte-for-byte against the stream.
//!
//! Because the sync schedule is driven by the *simulated* clock, `records`,
//! `syncs`, and `checkpoints` are deterministic on both backends; only the
//! `*_per_sec` wall-clock figures depend on the host. `bench_gate --storage`
//! gates the deterministic observables and the recovery verdict, and treats
//! wall-clock drift as warn-only.
//!
//! Usage:
//!
//! ```text
//! storage_profile [--out BENCH_storage.json] [--records N]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use regular_storage::codec::{Dec, Enc};
use regular_storage::wal::Wal;
use regular_storage::{Backing, StorageRegistry, WalOptions};
use regular_sweep::{write_json, Json};

/// Simulated microseconds between record arrivals: at 20 µs per record, a
/// 200 µs group-commit window batches ~11 records per fsync.
const ARRIVAL_US: u64 = 20;

/// The group-commit windows swept, in simulated microseconds. `0` syncs
/// every append (the durability floor the healthy-run byte-identity
/// guarantee relies on); the rest trade acknowledgement latency for batching.
const GC_WINDOWS_US: [u64; 4] = [0, 100, 500, 2_000];

/// Record payload: a self-describing frame (sequence number + filler) so
/// recovery can verify both content and order.
fn payload(seq: u64) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(seq);
    e.bytes(&[0xA5; 48]);
    e.finish()
}

fn parse_payload(bytes: &[u8]) -> Option<u64> {
    let mut d = Dec::new(bytes);
    let seq = d.u64()?;
    let filler = d.bytes()?;
    if filler != [0xA5; 48] || !d.is_empty() {
        return None;
    }
    Some(seq)
}

struct ProfileEntry {
    name: String,
    backend: &'static str,
    group_commit_us: u64,
    records: u64,
    syncs: u64,
    checkpoints: u64,
    batch_mean: f64,
    append_ops_per_sec: f64,
    recovered_records: u64,
    recovery_verified: bool,
    recover_ms: f64,
}

/// One profile run: append `n` records on the simulated clock, sync on the
/// group-commit deadline, checkpoint when due, then crash + recover and
/// verify the replayed stream.
fn run_profile(opts: &WalOptions, name: String, backend: &'static str, n: u64) -> ProfileEntry {
    let (mut wal, recovered) = Wal::open(opts, &name);
    assert!(recovered.is_empty(), "profile logs start empty");
    // The snapshot a checkpoint persists: the next sequence number. Recovery
    // resumes verification from it, exactly like a protocol snapshot.
    let mut checkpoint_base = 0u64;
    let started = Instant::now();
    for seq in 0..n {
        let now_us = seq * ARRIVAL_US;
        wal.append(&payload(seq), now_us);
        if wal.wants_sync() && wal.deadline_us().is_none_or(|d| d <= now_us) {
            wal.sync();
        }
        if wal.checkpoint_due() {
            let mut e = Enc::new();
            e.u64(seq + 1);
            if wal.checkpoint(&e.finish()) {
                checkpoint_base = seq + 1;
            }
        }
    }
    if wal.wants_sync() {
        wal.sync();
    }
    let append_secs = started.elapsed().as_secs_f64();
    let stats = wal.stats();

    // Crash and replay. On the memory device unsynced bytes are torn away;
    // everything here was synced, so the full suffix must come back. The dir
    // device keeps files as the OS left them — same expectation.
    wal.on_crash();
    let recover_started = Instant::now();
    let log = wal.recover();
    let recover_ms = recover_started.elapsed().as_secs_f64() * 1_000.0;
    let base = match &log.snapshot {
        None => 0,
        Some(snap) => {
            let mut d = Dec::new(snap);
            d.u64().expect("snapshot carries the next sequence number")
        }
    };
    let mut verified = base == checkpoint_base;
    let mut seq = base;
    for rec in &log.records {
        match parse_payload(rec) {
            Some(got) if got == seq => seq += 1,
            _ => {
                verified = false;
                break;
            }
        }
    }
    verified &= seq == n;

    ProfileEntry {
        name,
        backend,
        group_commit_us: wal.group_commit_us(),
        records: stats.records,
        syncs: stats.syncs,
        checkpoints: stats.checkpoints,
        batch_mean: stats.records as f64 / stats.syncs.max(1) as f64,
        append_ops_per_sec: if append_secs > 0.0 { n as f64 / append_secs } else { 0.0 },
        recovered_records: log.records.len() as u64,
        recovery_verified: verified,
        recover_ms,
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn main() {
    let mut out = PathBuf::from("BENCH_storage.json");
    let mut mem_records = 50_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--out" => out = PathBuf::from(value()),
            "--records" => mem_records = value().parse().expect("bad --records"),
            other => {
                eprintln!("unknown argument '{other}' (usage: storage_profile [--out PATH] [--records N])");
                std::process::exit(2);
            }
        }
    }
    // Real fsyncs are ~1000x a memcpy; keep the file-backed sweep small
    // enough that the gc=0 row (one fsync per record) stays in CI budget.
    let dir_records = (mem_records / 25).max(200);
    let scratch: PathBuf =
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/storage_profile"));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut entries = Vec::new();
    for &gc in &GC_WINDOWS_US {
        let opts = WalOptions::mem(StorageRegistry::new()).with_group_commit_us(gc);
        entries.push(run_profile(&opts, format!("mem-gc{gc}"), "mem", mem_records));
    }
    for &gc in &GC_WINDOWS_US {
        let opts = WalOptions {
            backing: Backing::Dir(scratch.join(format!("gc{gc}"))),
            ..WalOptions::dir(&scratch)
        }
        .with_group_commit_us(gc);
        entries.push(run_profile(&opts, format!("dir-gc{gc}"), "dir", dir_records));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // The IO-axis invariant this profile exists to demonstrate: widening the
    // group-commit window can only batch *more* records per fsync. This is
    // deterministic (the sync schedule runs on the simulated clock), so a
    // violation is a storage-layer bug, not host noise.
    for backend in ["mem", "dir"] {
        let batches: Vec<f64> =
            entries.iter().filter(|e| e.backend == backend).map(|e| e.batch_mean).collect();
        assert!(
            batches.windows(2).all(|w| w[0] <= w[1]),
            "{backend}: group-commit batching must grow with the window: {batches:?}"
        );
    }

    for e in &entries {
        println!(
            "{:<10} {:>7} records  {:>6} syncs  batch {:>6.1}  {:>9.0} append/s  \
             recovered {:>7} ({})  recover {:.2} ms",
            e.name,
            e.records,
            e.syncs,
            e.batch_mean,
            e.append_ops_per_sec,
            e.recovered_records,
            if e.recovery_verified { "verified" } else { "MISMATCH" },
            e.recover_ms,
        );
    }

    let json = Json::obj(vec![
        ("schema", Json::str("regular-seq/storage-profile/v1")),
        ("arrival_us", Json::u64(ARRIVAL_US)),
        ("mem_records", Json::u64(mem_records)),
        ("dir_records", Json::u64(dir_records)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("name", Json::str(&e.name)),
                            ("backend", Json::str(e.backend)),
                            ("group_commit_us", Json::u64(e.group_commit_us)),
                            ("records", Json::u64(e.records)),
                            ("syncs", Json::u64(e.syncs)),
                            ("checkpoints", Json::u64(e.checkpoints)),
                            ("batch_mean", Json::f64(round2(e.batch_mean))),
                            ("append_ops_per_sec", Json::f64(round2(e.append_ops_per_sec))),
                            ("recovered_records", Json::u64(e.recovered_records)),
                            ("recovery_verified", Json::Bool(e.recovery_verified)),
                            ("recover_ms", Json::f64(round2(e.recover_ms))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    write_json(&out, &json).expect("write profile");
    let failed = entries.iter().filter(|e| !e.recovery_verified).count();
    println!("storage profile written to {} ({} entries)", out.display(), entries.len());
    if failed > 0 {
        eprintln!("{failed} entries FAILED recovery verification");
        std::process::exit(1);
    }
}
