//! Ablation: the cost of Gryff-RSC's dependency piggybacking versus the
//! baseline's synchronous write-back phase.
//!
//! For a sweep of conflict rates this reports, per variant, how many reads
//! disagreed at their quorum, how that disagreement was resolved (second
//! round trip for Gryff, piggybacked dependency for Gryff-RSC), and the
//! resulting p99 read latency — quantifying that the piggybacking mechanism
//! removes the second round trip without adding message overhead.
//!
//! Usage: `cargo run --release -p regular-bench --bin ablation_gryff [--quick]`

use regular_bench::{fmt_ms, run_gryff_ycsb, GryffRunParams};
use regular_gryff::prelude::Mode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { 20 } else { 60 };

    println!(
        "== Ablation: write-back round trips vs piggybacked dependencies (write ratio 0.5) ==\n"
    );
    println!(
        "{:>10} | {:>10} {:>12} {:>12} {:>10} | {:>10} {:>12} {:>12} {:>10}",
        "conflict", "gryff", "slow reads", "msgs", "p99 ms", "rsc", "deps piggy", "msgs", "p99 ms"
    );
    for &conflict in &[0.02, 0.10, 0.25, 0.50] {
        let params = GryffRunParams {
            write_ratio: 0.5,
            conflict_rate: conflict,
            duration_secs: duration,
            ..GryffRunParams::default()
        };
        let baseline = run_gryff_ycsb(Mode::Gryff, &params);
        let rsc = run_gryff_ycsb(Mode::GryffRsc, &params);
        let mut b = baseline.read_latencies.clone();
        let mut r = rsc.read_latencies.clone();
        println!(
            "{:>9.0}% | {:>10} {:>12} {:>12} {:>10} | {:>10} {:>12} {:>12} {:>10}",
            conflict * 100.0,
            baseline.client_stats.reads,
            baseline.client_stats.slow_reads,
            baseline.messages,
            fmt_ms(b.percentile(99.0)),
            rsc.client_stats.reads,
            rsc.client_stats.deps_piggybacked,
            rsc.messages,
            fmt_ms(r.percentile(99.0)),
        );
    }
}
