//! Figure 5: read-only transaction tail latency, Spanner vs Spanner-RSS,
//! Retwis workload, Zipf skews 0.5 / 0.7 / 0.9 over the CA/VA/IR topology.
//!
//! Usage: `cargo run --release -p regular-bench --bin fig5 [--quick]`

use regular_bench::{
    print_cdf, print_tail_row, reduction_pct, run_spanner_retwis, RetwisRunParams,
};
use regular_spanner::prelude::Mode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { 30 } else { 150 };
    let fractions = [0.5, 0.9, 0.99, 0.995, 0.999, 0.9999];

    println!("== Figure 5: RO transaction tail latency (Retwis, wide-area) ==");
    println!("   duration={duration}s simulated per run, partly-open clients in CA/VA/IR\n");

    for &skew in &[0.5, 0.7, 0.9] {
        // Like the paper, the offered load is calibrated per workload to stay at
        // 70-80% of the contention-limited capacity: the 0.9-skew workload is
        // driven at a lower session arrival rate because its hottest keys are
        // close to lock saturation.
        let arrival_rate = if skew >= 0.85 { 3.0 } else { 4.0 };
        let params = RetwisRunParams {
            skew,
            duration_secs: duration,
            arrival_rate,
            ..RetwisRunParams::default()
        };
        let baseline = run_spanner_retwis(Mode::Spanner, &params);
        let rss = run_spanner_retwis(Mode::SpannerRss, &params);

        println!("--- skew {skew} ---");
        print_tail_row("Spanner      RO", &baseline.ro_latencies);
        print_tail_row("Spanner-RSS  RO", &rss.ro_latencies);
        print_tail_row("Spanner      RW", &baseline.rw_latencies);
        print_tail_row("Spanner-RSS  RW", &rss.rw_latencies);
        let mut b = baseline.ro_latencies.clone();
        let mut r = rss.ro_latencies.clone();
        for pct in [99.0, 99.9] {
            println!(
                "    p{pct} RO reduction: {:.1}%",
                reduction_pct(b.percentile(pct), r.percentile(pct))
            );
        }
        let blocked: u64 = baseline.shard_stats.iter().map(|s| s.ro_blocked).sum();
        let blocked_rss: u64 = rss.shard_stats.iter().map(|s| s.ro_blocked).sum();
        let skipped: u64 = rss.shard_stats.iter().map(|s| s.ro_skipped_prepared).sum();
        println!(
            "    blocked ROs: Spanner={blocked}, Spanner-RSS={blocked_rss}; prepared txns skipped by RSS={skipped}"
        );
        println!(
            "    throughput: Spanner={:.0} txn/s, Spanner-RSS={:.0} txn/s",
            baseline.throughput, rss.throughput
        );
        print_cdf(&format!("Spanner RO skew {skew}"), &baseline.ro_latencies, &fractions);
        print_cdf(&format!("Spanner-RSS RO skew {skew}"), &rss.ro_latencies, &fractions);
        println!();
    }
}
