//! Figure 6: throughput vs median latency at high load, Spanner vs
//! Spanner-RSS, uniform workload, eight shards in one data center, TrueTime
//! error zero.
//!
//! Usage: `cargo run --release -p regular-bench --bin fig6 [--quick]`

use regular_bench::{fmt_ms, run_spanner_overhead};
use regular_spanner::prelude::Mode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let session_counts: &[usize] =
        if quick { &[8, 32, 128] } else { &[4, 8, 16, 32, 64, 128, 256, 512, 1024] };

    println!("== Figure 6: throughput vs p50 latency under load (single DC, 8 shards) ==\n");
    println!(
        "{:>9} | {:>12} {:>12} {:>10} | {:>12} {:>12} {:>10}",
        "sessions", "spanner", "spanner", "spanner", "rss", "rss", "rss"
    );
    println!(
        "{:>9} | {:>12} {:>12} {:>10} | {:>12} {:>12} {:>10}",
        "", "txn/s", "p50 ms", "p99 ms", "txn/s", "p50 ms", "p99 ms"
    );
    for &sessions in session_counts {
        let baseline = run_spanner_overhead(Mode::Spanner, sessions, 7);
        let rss = run_spanner_overhead(Mode::SpannerRss, sessions, 7);
        let all = |r: &regular_spanner::prelude::RunResult| {
            let mut merged = r.rw_latencies.clone();
            merged.merge(&r.ro_latencies);
            merged
        };
        let mut b = all(&baseline);
        let mut r = all(&rss);
        println!(
            "{:>9} | {:>12.0} {:>12} {:>10} | {:>12.0} {:>12} {:>10}",
            sessions,
            baseline.throughput,
            fmt_ms(b.percentile(50.0)),
            fmt_ms(b.percentile(99.0)),
            rss.throughput,
            fmt_ms(r.percentile(50.0)),
            fmt_ms(r.percentile(99.0)),
        );
    }
    println!(
        "\nExpectation (paper): the two curves coincide — Spanner-RSS does not reduce maximum"
    );
    println!("throughput and its latency stays within a few milliseconds of Spanner's.");
}
