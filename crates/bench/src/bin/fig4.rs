//! Figure 4: a read-only transaction that conflicts with an in-flight
//! read-write transaction returns immediately under Spanner-RSS but blocks
//! under Spanner.
//!
//! The figure is reproduced as a micro-experiment: one writer client keeps a
//! two-shard read-write transaction in its prepared window on a hot key while
//! a reader client issues read-only transactions on that key; the reader's
//! latency distribution shows the blocking (Spanner) vs immediate-return
//! (Spanner-RSS) behaviour.
//!
//! Usage: `cargo run --release -p regular-bench --bin fig4`

use regular_bench::print_tail_row;
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::prelude::*;

fn run(mode: Mode) -> RunResult {
    let config = SpannerConfig::wan(mode);
    let net = LatencyMatrix::spanner_wan();
    let clients = vec![
        // The writer (C_W): read-write transactions spanning shards 0 and 1.
        ClientSpec {
            region: 0,
            sessions: SessionConfig::closed_loop(1, SimDuration::ZERO),
            workload: Box::new(UniformWorkload { num_keys: 2, ro_fraction: 0.0, keys_per_txn: 2 }),
        },
        // The reader (C_R2): read-only transactions on the same two keys.
        ClientSpec {
            region: 1,
            sessions: SessionConfig::closed_loop(1, SimDuration::from_millis(20)),
            workload: Box::new(UniformWorkload { num_keys: 2, ro_fraction: 1.0, keys_per_txn: 1 }),
        },
        // A second reader (C_R1) close to the coordinator shard, which observes
        // the write early and (under strict serializability) forces others to.
        ClientSpec {
            region: 0,
            sessions: SessionConfig::closed_loop(1, SimDuration::from_millis(15)),
            workload: Box::new(UniformWorkload { num_keys: 2, ro_fraction: 1.0, keys_per_txn: 1 }),
        },
    ];
    run_cluster(ClusterSpec {
        config,
        net,
        seed: 2,
        clients,
        stop_issuing_at: SimTime::from_secs(60),
        drain: SimDuration::from_secs(10),
        measure_from: SimTime::from_secs(5),
    })
}

fn main() {
    println!("== Figure 4: RO latency while a conflicting RW transaction is prepared ==\n");
    for mode in [Mode::Spanner, Mode::SpannerRss] {
        let result = run(mode);
        let label = match mode {
            Mode::Spanner => "Spanner      RO",
            Mode::SpannerRss => "Spanner-RSS  RO",
        };
        print_tail_row(label, &result.ro_latencies);
        let blocked: u64 = result.shard_stats.iter().map(|s| s.ro_blocked).sum();
        let immediate: u64 = result.shard_stats.iter().map(|s| s.ro_immediate).sum();
        println!("    blocked={blocked} immediate={immediate}");
        verify_run(&result).expect("run must satisfy its consistency model");
    }
    println!("\nExpectation (paper): Spanner's reader frequently waits for the writer's two-phase");
    println!("commit to finish; Spanner-RSS's reader returns old values immediately and its tail");
    println!("latency stays near the single round-trip time.");
}
