//! Batched-session protocol baselines.
//!
//! Runs Spanner-RSS and Gryff-RSC with closed-loop sessions at pipelining
//! depths 1, 4, and 16 and reports throughput plus p50/p99 latency. These are
//! the numbers recorded in BENCHMARKS.md (batched sessions are what let the
//! protocol benches exercise realistic load; batch 1 reproduces the paper's
//! one-outstanding-operation sessions).
//!
//! Besides the human-readable tables, the run is emitted as
//! `BENCH_baseline.json` (`--out` overrides the path) for the CI regression
//! gate: `bench_gate` compares it against the checked-in reference in
//! `ci/bench_baseline_reference.json` and fails the build on >25% throughput
//! regression. Throughput here is *simulated* txn/s — deterministic for a
//! fixed seed — so the gate detects protocol-behaviour changes, not host
//! noise; the WAN configurations are still warn-only (their tails make small
//! workload shifts look dramatic).
//!
//! Usage: `cargo run --release -p regular-bench --bin session_baseline [-- --out PATH]`

use regular_bench::{fmt_ms, run_gryff_ycsb_batched, run_spanner_overhead_batched, GryffRunParams};
use regular_gryff::prelude as gryff;
use regular_spanner::prelude as spanner;
use regular_sweep::{write_json, Json};

struct ConfigResult {
    name: String,
    wan: bool,
    throughput: f64,
}

fn main() {
    let mut out = std::path::PathBuf::from("BENCH_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = std::path::PathBuf::from(args.next().expect("--out needs a value")),
            other => {
                eprintln!("unknown argument '{other}' (supported: --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let mut configs: Vec<ConfigResult> = Vec::new();
    const BATCHES: [usize; 3] = [1, 4, 16];
    println!("== Batched-session protocol baselines ==");
    println!(
        "\nSpanner-RSS, single-DC 8 shards, 32 closed-loop sessions, uniform 50% RO\n\
         (10 simulated seconds, seed 7; `run_spanner_overhead_batched`)\n"
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "batch", "txn/s", "ro_p50", "ro_p99", "rw_p50", "rw_p99"
    );
    for batch in BATCHES {
        let r = run_spanner_overhead_batched(spanner::Mode::SpannerRss, 32, batch, 7);
        spanner::verify_run(&r).expect("every baseline run must satisfy RSS");
        let mut ro = r.ro_latencies.clone();
        let mut rw = r.rw_latencies.clone();
        println!(
            "{:>6} {:>12.0} {:>10} {:>10} {:>10} {:>10}",
            batch,
            r.throughput,
            fmt_ms(ro.percentile(50.0)),
            fmt_ms(ro.percentile(99.0)),
            fmt_ms(rw.percentile(50.0)),
            fmt_ms(rw.percentile(99.0)),
        );
        configs.push(ConfigResult {
            name: format!("spanner-rss-single-dc-batch-{batch}"),
            wan: false,
            throughput: r.throughput,
        });
    }
    println!(
        "\nGryff-RSC, 5-region WAN, 16 closed-loop clients, YCSB 50% writes / 10% conflicts\n\
         (60 simulated seconds, seed 42; `run_gryff_ycsb_batched`)\n"
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "batch", "op/s", "rd_p50", "rd_p99", "wr_p50", "wr_p99"
    );
    for batch in BATCHES {
        let params = GryffRunParams { duration_secs: 60, ..GryffRunParams::default() };
        let r = run_gryff_ycsb_batched(gryff::Mode::GryffRsc, &params, batch);
        gryff::verify_run(&r).expect("every baseline run must satisfy RSC");
        let mut rd = r.read_latencies.clone();
        let mut wr = r.write_latencies.clone();
        println!(
            "{:>6} {:>12.0} {:>10} {:>10} {:>10} {:>10}",
            batch,
            r.throughput,
            fmt_ms(rd.percentile(50.0)),
            fmt_ms(rd.percentile(99.0)),
            fmt_ms(wr.percentile(50.0)),
            fmt_ms(wr.percentile(99.0)),
        );
        configs.push(ConfigResult {
            name: format!("gryff-rsc-wan-batch-{batch}"),
            wan: true,
            throughput: r.throughput,
        });
    }
    println!("\nAll runs passed their consistency certificates (RSS / RSC).");

    let json = Json::obj(vec![
        ("schema", Json::str("regular-seq/session-baseline/v1")),
        (
            "configs",
            Json::Arr(
                configs
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("name", Json::str(&c.name)),
                            ("wan", Json::Bool(c.wan)),
                            ("throughput", Json::f64((c.throughput * 100.0).round() / 100.0)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    match write_json(&out, &json) {
        Ok(()) => println!("baseline JSON written to {}", out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            std::process::exit(2);
        }
    }
}
