//! Ablation: how much of Spanner-RSS's tail-latency improvement comes from the
//! earliest-end-time (`t_ee`) fast path, and how the TrueTime uncertainty ε
//! affects both systems.
//!
//! * Part 1 disables the `t_ee` skip (read-only transactions then wait for
//!   every conflicting prepared transaction, like the baseline) while keeping
//!   the rest of the Spanner-RSS machinery.
//! * Part 2 sweeps ε ∈ {0, 5, 10, 25} ms: larger ε lengthens commit wait and
//!   therefore the window in which read-only transactions can block.
//!
//! Usage: `cargo run --release -p regular-bench --bin ablation_spanner [--quick]`

use regular_bench::{print_tail_row, run_spanner_retwis, RetwisRunParams};
use regular_sim::time::SimDuration;
use regular_spanner::prelude::Mode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { 30 } else { 120 };

    println!("== Ablation 1: Spanner-RSS with and without the t_ee fast path (skew 0.9) ==\n");
    let base = RetwisRunParams {
        skew: 0.9,
        arrival_rate: 3.0,
        duration_secs: duration,
        ..RetwisRunParams::default()
    };
    let baseline = run_spanner_retwis(Mode::Spanner, &base);
    let full = run_spanner_retwis(Mode::SpannerRss, &base);
    let no_tee = run_spanner_retwis(
        Mode::SpannerRss,
        &RetwisRunParams { disable_tee_skip: true, ..base.clone() },
    );
    print_tail_row("Spanner (baseline)      RO", &baseline.ro_latencies);
    print_tail_row("Spanner-RSS (full)      RO", &full.ro_latencies);
    print_tail_row("Spanner-RSS (no t_ee)   RO", &no_tee.ro_latencies);
    println!();

    println!("== Ablation 2: TrueTime uncertainty sweep (skew 0.7) ==\n");
    for eps_ms in [0u64, 5, 10, 25] {
        let params = RetwisRunParams {
            skew: 0.7,
            duration_secs: duration,
            truetime_epsilon: SimDuration::from_millis(eps_ms),
            ..RetwisRunParams::default()
        };
        let baseline = run_spanner_retwis(Mode::Spanner, &params);
        let rss = run_spanner_retwis(Mode::SpannerRss, &params);
        print_tail_row(&format!("eps={eps_ms:>2}ms Spanner     RO"), &baseline.ro_latencies);
        print_tail_row(&format!("eps={eps_ms:>2}ms Spanner-RSS RO"), &rss.ro_latencies);
    }
}
