//! Appendix A: the schedules of Figures 9–16 checked against RSS, RSC, and
//! their proximal consistency models.
//!
//! Usage: `cargo run -p regular-bench --bin appendix_a`

use regular_core::checker::models::{satisfies, Model};
use regular_core::checker::proximal::{check_proximal, ProximalModel};
use regular_core::history::{History, HistoryBuilder};

fn figure_9() -> History {
    let mut b = HistoryBuilder::new();
    b.rw_txn(2, &[], &[(1, 1)], 0, 10);
    b.rw_txn(3, &[], &[(2, 1)], 20, 30);
    b.ro_txn(1, &[(1, 0), (2, 1)], 5, 40);
    b.build()
}

fn figure_10() -> History {
    let mut b = HistoryBuilder::new();
    b.rw_txn(2, &[], &[(1, 1)], 0, 100);
    b.ro_txn(1, &[(1, 1)], 10, 20);
    b.ro_txn(3, &[(1, 0)], 30, 40);
    b.build()
}

fn figure_11() -> History {
    let mut b = HistoryBuilder::new();
    b.rw_txn(3, &[], &[(1, 1), (2, 1)], 0, 5);
    b.rw_txn(1, &[(1, 1), (2, 1)], &[(1, 2)], 10, 20);
    b.rw_txn(2, &[(1, 1), (2, 1)], &[(2, 2)], 10, 20);
    b.build()
}

fn figure_13() -> History {
    let mut b = HistoryBuilder::new();
    b.write(1, 1, 1, 0, 10);
    b.read(2, 1, 0, 20, 30);
    b.build()
}

fn figure_14() -> History {
    let mut b = HistoryBuilder::new();
    b.write(2, 1, 2, 5, 60);
    b.read(3, 1, 2, 8, 15);
    b.write(1, 1, 1, 20, 30);
    b.read(4, 1, 1, 35, 45);
    b.read(4, 1, 2, 46, 55);
    b.build()
}

fn figure_15() -> History {
    let mut b = HistoryBuilder::new();
    b.write(1, 1, 1, 0, 100);
    b.write(2, 2, 1, 0, 100);
    b.read(3, 1, 1, 20, 25);
    b.read(3, 2, 0, 26, 30);
    b.read(4, 2, 1, 20, 25);
    b.read(4, 1, 0, 26, 30);
    b.build()
}

fn figure_16() -> History {
    let mut b = HistoryBuilder::new();
    b.write(1, 1, 1, 0, 10);
    b.write(3, 1, 2, 0, 10);
    b.read(2, 1, 1, 20, 30);
    b.read(4, 1, 2, 20, 30);
    b.build()
}

fn main() {
    let figures: Vec<(&str, History)> = vec![
        ("Figure 9", figure_9()),
        ("Figure 10", figure_10()),
        ("Figure 11", figure_11()),
        ("Figure 13", figure_13()),
        ("Figure 14", figure_14()),
        ("Figure 15", figure_15()),
        ("Figure 16", figure_16()),
    ];
    let core_models = [
        Model::StrictSerializability,
        Model::RegularSequentialSerializability,
        Model::RegularSequentialConsistency,
        Model::ProcessOrderedSerializability,
        Model::SequentialConsistency,
    ];
    let proximal = [
        ProximalModel::Crdb,
        ProximalModel::StrongSnapshotIsolation,
        ProximalModel::OscU,
        ProximalModel::VvRegularity,
        ProximalModel::RealTimeCausal,
        ProximalModel::MwrWeak,
        ProximalModel::MwrWriteOrder,
        ProximalModel::MwrReadsFrom,
        ProximalModel::MwrNoInversion,
    ];

    println!("== Appendix A: allowed (+) / disallowed (-) schedules per consistency model ==\n");
    print!("{:<22}", "model");
    for (name, _) in &figures {
        print!("{name:>11}");
    }
    println!();
    println!("{}", "-".repeat(22 + figures.len() * 11));
    for model in core_models {
        print!("{:<22}", model.name());
        for (_, h) in &figures {
            print!("{:>11}", if satisfies(h, model) { "+" } else { "-" });
        }
        println!();
    }
    for model in proximal {
        print!("{:<22}", model.name());
        for (_, h) in &figures {
            let allowed = check_proximal(h, model).expect("appendix histories are small");
            print!("{:>11}", if allowed { "+" } else { "-" });
        }
        println!();
    }
    println!("\nKey verdicts from the paper:");
    println!("  Fig 9  : allowed by CRDB, disallowed by RSS");
    println!("  Fig 10 : allowed by RSS, disallowed by CRDB");
    println!("  Fig 11 : write skew — allowed by strong SI, disallowed by RSS");
    println!("  Fig 13 : allowed by OSC(U), disallowed by RSC");
    println!("  Fig 14 : allowed by RSC and VV regularity, disallowed by OSC(U) and MWR-RF");
    println!("  Fig 15 : allowed by MWR-WO and MWR-NI, disallowed by RSC");
    println!("  Fig 16 : allowed by MWR-RF and MWR-NI, disallowed by RSC");
}
