//! Figure 7: p99 read latency vs write ratio, Gryff vs Gryff-RSC, YCSB with
//! conflict rates 2 %, 10 %, and 25 %, five replicas across the Table 2
//! topology, 16 closed-loop clients.
//!
//! Also reports the deeper-tail (p99.9) comparison of §7.3.
//!
//! Usage: `cargo run --release -p regular-bench --bin fig7 [--quick]`

use regular_bench::{fmt_ms, reduction_pct, run_gryff_ycsb, GryffRunParams};
use regular_gryff::prelude::Mode;
use regular_sim::net::{regions, LatencyMatrix};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick { 30 } else { 120 };
    let write_ratios: &[f64] =
        if quick { &[0.1, 0.5, 0.9] } else { &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] };

    println!("== Table 2: emulated round-trip latencies (ms) ==");
    let net = LatencyMatrix::gryff_wan();
    let names = ["CA", "VA", "IR", "OR", "JP"];
    let all =
        [regions::CALIFORNIA, regions::VIRGINIA, regions::IRELAND, regions::OREGON, regions::JAPAN];
    print!("{:>4}", "");
    for n in names {
        print!("{n:>8}");
    }
    println!();
    for (i, a) in all.iter().enumerate() {
        print!("{:>4}", names[i]);
        for b in all.iter() {
            print!("{:>8.1}", net.rtt(*a, *b).as_millis_f64());
        }
        println!();
    }

    println!("\n== Figure 7: p99 read latency vs write ratio (YCSB, 16 closed-loop clients) ==");
    for &conflict in &[0.02, 0.10, 0.25] {
        println!("\n--- conflict rate {:.0}% ---", conflict * 100.0);
        println!(
            "{:>11} | {:>12} {:>12} {:>10} | {:>12} {:>12} | {:>10}",
            "write ratio",
            "gryff p99",
            "gryff p99.9",
            "slow reads",
            "rsc p99",
            "rsc p99.9",
            "p99 cut"
        );
        for &wr in write_ratios {
            let params = GryffRunParams {
                write_ratio: wr,
                conflict_rate: conflict,
                duration_secs: duration,
                ..GryffRunParams::default()
            };
            let baseline = run_gryff_ycsb(Mode::Gryff, &params);
            let rsc = run_gryff_ycsb(Mode::GryffRsc, &params);
            let mut b = baseline.read_latencies.clone();
            let mut r = rsc.read_latencies.clone();
            println!(
                "{:>11.1} | {:>12} {:>12} {:>10} | {:>12} {:>12} | {:>9.1}%",
                wr,
                fmt_ms(b.percentile(99.0)),
                fmt_ms(b.percentile(99.9)),
                baseline.client_stats.slow_reads,
                fmt_ms(r.percentile(99.0)),
                fmt_ms(r.percentile(99.9)),
                reduction_pct(b.percentile(99.0), r.percentile(99.0)),
            );
        }
    }
    println!(
        "\nExpectation (paper): with 2% conflicts both systems sit at the one-round-trip p99;"
    );
    println!("at 10% and 25% conflicts Gryff's p99 grows with the write ratio (slow-path reads)");
    println!("while Gryff-RSC stays at the one-round-trip latency — roughly a 40% p99 reduction,");
    println!("and about 50% at p99.9.");
}
