//! Parallel conformance sweep: certify fleets of seeded runs.
//!
//! Fans seeded simulator runs of every scenario (Spanner-RSS, Gryff-RSC,
//! and the composed two-store deployment) across a work-stealing thread
//! pool, certifies each history against its RSS/RSC witness model, and
//! writes the aggregate to `BENCH_sweep.json`. Seeds that fail certification
//! are dumped as replayable artifacts (see `--replay`).
//!
//! Usage:
//!
//! ```text
//! conformance_sweep [--seeds N] [--base-seed S] [--threads T]
//!                   [--check-threads C]
//!                   [--scenarios spanner,gryff,composed,spanner-faults,
//!                                gryff-faults,composed-faults,
//!                                spanner-faults-durable,gryff-faults-durable,
//!                                composed-faults-durable]
//!                   [--ops N] [--stream]
//!                   [--out BENCH_sweep.json] [--artifact-dir sweep-artifacts]
//!                   [--scaling 1,4]
//! conformance_sweep --replay <artifact.json>
//! ```
//!
//! `--scaling T1,T2,…` re-runs the whole sweep once per thread count and
//! records the wall-clock of each in the report's `scaling` section (the
//! `scaling_speedup` field is `wall(T1) / wall(Tlast)`). `--ops N` scales
//! each scenario's simulated duration toward roughly `N` operations per run;
//! `--stream` certifies through the windowed streaming checker instead of
//! the batch parallel checker. Exit status is non-zero when any seed fails
//! certification — the CI gate.
//!
//! `--scenarios live` sweeps the live execution plane instead
//! (`live-spanner-rss,live-gryff-rsc,live-composed,live-spanner-faults`):
//! every node an OS thread on scaled wall-clock time, certified online
//! through the streaming checker. The sweep scenarios run over the
//! in-process mpsc transport; the live plane itself also carries nodes
//! over Unix-domain sockets and TCP, up to fully separate OS processes —
//! `live_bench --net` exercises those backends (see `OPERATIONS.md`).
//! Live runs occupy real cores, so pair them with a small `--threads`.

use std::path::PathBuf;
use std::process::ExitCode;

use regular_sweep::{
    run_sweep, sweep_to_json, write_json, FailureArtifact, Scenario, SweepOptions,
};

struct Args {
    opts: SweepOptions,
    out: PathBuf,
    scaling: Vec<usize>,
    replay: Option<PathBuf>,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: conformance_sweep [--seeds N] [--base-seed S] [--threads T] \
         [--check-threads C] [--scenarios NAME,... (see --scenarios help)] [--ops N] \
         [--stream] [--out PATH] [--artifact-dir DIR] [--scaling T1,T2,...] | --replay FILE"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut opts = SweepOptions {
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..SweepOptions::default()
    };
    let mut out = PathBuf::from("BENCH_sweep.json");
    let mut scaling = Vec::new();
    let mut replay = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds").parse().unwrap_or_else(|_| usage("bad --seeds"))
            }
            "--base-seed" => {
                opts.base_seed =
                    value("--base-seed").parse().unwrap_or_else(|_| usage("bad --base-seed"))
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| usage("bad --threads"))
            }
            "--check-threads" => {
                opts.check_threads = value("--check-threads")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --check-threads"))
            }
            "--scenarios" => {
                let list = value("--scenarios");
                if list.trim().eq_ignore_ascii_case("all") {
                    opts.scenarios = Scenario::ALL.to_vec();
                } else if list.trim().eq_ignore_ascii_case("live") {
                    opts.scenarios = Scenario::LIVE.to_vec();
                } else {
                    opts.scenarios = list
                        .split(',')
                        .map(|s| {
                            Scenario::parse(s).unwrap_or_else(|| {
                                let valid: Vec<&str> = Scenario::ALL
                                    .iter()
                                    .chain(Scenario::LIVE.iter())
                                    .map(|v| v.name())
                                    .collect();
                                usage(&format!(
                                    "unknown scenario '{s}' (valid: {}, or 'all'/'live')",
                                    valid.join(", ")
                                ))
                            })
                        })
                        .collect();
                }
            }
            "--ops" => {
                let raw = value("--ops");
                match raw.trim().parse::<u64>() {
                    Ok(n) if (100..=1_000_000).contains(&n) => opts.ops = Some(n),
                    _ => usage(&format!(
                        "bad --ops '{raw}' (valid: a target operation count in 100..=1000000)"
                    )),
                }
            }
            "--stream" => opts.stream = true,
            "--out" => out = PathBuf::from(value("--out")),
            "--artifact-dir" => opts.artifact_dir = PathBuf::from(value("--artifact-dir")),
            "--scaling" => {
                scaling = value("--scaling")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad --scaling")))
                    .collect()
            }
            "--replay" => replay = Some(PathBuf::from(value("--replay"))),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if opts.scenarios.is_empty() {
        usage("no scenarios selected");
    }
    Args { opts, out, scaling, replay }
}

fn replay_artifact(path: &std::path::Path) -> ExitCode {
    let artifact = match FailureArtifact::load(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("failed to load artifact: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} seed {} ({} ops, model {:?})",
        artifact.scenario,
        artifact.seed,
        artifact.history.len(),
        artifact.model,
    );
    println!("recorded violation: {}", artifact.violation);
    println!("storage mode: {}", artifact.durability.as_deref().unwrap_or("in-memory"));
    if !artifact.deliveries.is_empty() {
        println!(
            "live delivery schedule: {} recorded deliveries (wall-clock run)",
            artifact.deliveries.len()
        );
    }
    if let Some(coverage) = &artifact.coverage {
        println!("coverage signature: {}", coverage.describe());
    }
    if artifact.schedule.is_some() {
        println!(
            "recorded hunt schedule: present (re-simulate the trigger with the \
             regular-hunt crate; this replay checks the evidence only)"
        );
    }
    // Large histories replay through the windowed streaming checker so the
    // checking state stays bounded by the reorder window; the verdict is
    // equivalent to the batch check.
    const STREAM_REPLAY_MIN_OPS: usize = 10_000;
    if artifact.history.len() >= STREAM_REPLAY_MIN_OPS {
        println!("replaying via the streaming checker ({} ops)", artifact.history.len());
        return match regular_sweep::certify_streaming(
            &artifact.history,
            &artifact.witness,
            artifact.model,
        ) {
            Ok(stats) => {
                println!(
                    "replay verdict: CERTIFIED — the recorded witness now passes \
                     (peak window {}, {} components)",
                    stats.peak_window, stats.components
                );
                ExitCode::SUCCESS
            }
            Err(v) => {
                println!("replay verdict: VIOLATION REPRODUCED — {v:?}");
                ExitCode::FAILURE
            }
        };
    }
    match artifact.replay() {
        Ok(()) => {
            println!("replay verdict: CERTIFIED — the recorded witness now passes");
            ExitCode::SUCCESS
        }
        Err(v) => {
            println!("replay verdict: VIOLATION REPRODUCED — {v:?}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let Args { mut opts, out, scaling, replay } = parse_args();
    if let Some(path) = replay {
        return replay_artifact(&path);
    }

    let scenario_names: Vec<&str> = opts.scenarios.iter().map(|s| s.name()).collect();
    println!(
        "== conformance sweep: {} seeds x [{}], {} worker thread(s), check sharded x{} ==",
        opts.seeds,
        scenario_names.join(", "),
        opts.threads,
        opts.check_threads,
    );
    if let Some(ops) = opts.ops {
        println!("   ops target: ~{ops} per run (scenario durations scaled)");
    }
    if opts.stream {
        println!("   certification: windowed streaming checker");
    }

    // Thread-scaling measurement: one full sweep per requested thread count
    // (identical seeds, so identical work), recording each wall clock. The
    // final (highest-parallelism) sweep provides the per-seed reports.
    let mut measured: Vec<(usize, f64)> = Vec::new();
    let thread_counts: Vec<usize> =
        if scaling.is_empty() { vec![opts.threads] } else { scaling.clone() };
    let mut last = None;
    for &threads in &thread_counts {
        opts.threads = threads;
        let result = run_sweep(&opts);
        println!(
            "   threads={threads}: {} runs in {:.0} ms ({} failures, {} steals)",
            result.reports.len(),
            result.wall_ms,
            result.failures(),
            result.pool.steals,
        );
        measured.push((threads, result.wall_ms));
        last = Some(result);
    }
    let result = last.expect("at least one sweep ran");
    let scaling_section = if measured.len() > 1 { measured.as_slice() } else { &[] };

    let report = sweep_to_json(&result, &opts, scaling_section);
    if let Err(e) = write_json(&out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }

    let certified = result.reports.len() - result.failures();
    println!("\n{}", report.to_pretty());
    println!(
        "certified {certified}/{} seeded runs; report written to {}",
        result.reports.len(),
        out.display()
    );
    if result.failures() > 0 {
        for path in &result.artifact_paths {
            eprintln!("violation artifact: {}", path.display());
        }
        eprintln!(
            "{} run(s) FAILED certification; replay with: conformance_sweep --replay <artifact>",
            result.failures()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
