//! Live-plane benchmark: wall-clock throughput and latency percentiles of
//! the protocol crates running on real OS threads, certified online.
//!
//! Two deployments run on the `regular-live` execution plane:
//!
//! * `live-spanner-rss`: a 3-shard Spanner-RSS cluster with 8 client nodes
//!   (12 OS threads including the router) driven long enough to complete
//!   well over 30k operations, streaming-certified RSS — the acceptance
//!   configuration of the live plane.
//! * `live-gryff-rsc`: the five-region Gryff-RSC deployment,
//!   streaming-certified RSC.
//!
//! Latency percentiles are reported in *simulated* milliseconds (they are
//! comparable across time scales and to the simulator's numbers); throughput
//! is reported both per simulated second and per wall-clock second. The
//! report is written to `BENCH_live.json`
//! (schema `regular-seq/live-bench/v1`); `bench_gate --live` compares it
//! warn-only against `ci/live_reference.json` — wall-clock numbers are
//! host-dependent — and fails only when a run stops certifying.
//!
//! # Network mode
//!
//! `--net` switches to the transport report (`BENCH_net.json`, schema
//! `regular-seq/live-net/v1`), which answers three questions about the
//! socket transports (see `OPERATIONS.md` for the operator's view):
//!
//! * **Serialization cost** — the same seeded Spanner-RSS run over mpsc,
//!   Unix-domain sockets, and TCP loopback, with wire-frame counters.
//! * **Saturation knee** (`--open-loop`) — an open-loop Poisson arrival
//!   ladder; the knee is the first arrival rate whose achieved throughput
//!   falls below 85% of the offered load.
//! * **Multi-process** (`--processes N`) — the cluster split across N
//!   worker OS processes plus the hub, over a Unix-domain socket, still
//!   streaming-certified online. Workers are re-executions of this binary
//!   (hidden `--worker-*` flags).
//!
//! Usage:
//!
//! ```text
//! live_bench [--out PATH] [--seed S] [--scale N] [--quick]
//!            [--transport mpsc|uds|tcp]
//!            [--net [--open-loop] [--processes N]]
//! ```
//!
//! `--scale` sets simulated microseconds per wall microsecond (default 60).
//! `--quick` shrinks the runs for smoke jobs (a few seconds total, no 30k-op
//! guarantee). `--transport` selects the wire for the standard entries (and
//! the open-loop ladder in `--net` mode).

use std::path::PathBuf;
use std::process::ExitCode;

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::WitnessModel;
use regular_gryff::prelude as gryff;
use regular_live::{
    build_spanner_nodes, run_cluster_live, run_gryff_live, run_hub_multiproc,
    run_worker_multiproc, GryffLiveSpec, ListenAddr, Listener, LiveConfig, SpannerLiveSpec,
    TransportKind, WireStats,
};
use regular_session::{CompletedRecord, SessionConfig, SessionWorkload};
use regular_sim::{LatencyMatrix, LatencyRecorder, SimDuration, SimTime};
use regular_spanner::prelude as spanner;
use regular_sweep::{certify_streaming, Json};

struct LiveEntry {
    name: &'static str,
    transport: TransportKind,
    threads: usize,
    history_ops: usize,
    certified: bool,
    violation: Option<String>,
    sim_ops_per_sec: f64,
    wall_ops_per_sec: f64,
    wall_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    peak_window: usize,
    wire: WireStats,
    arrivals: u64,
    shed: u64,
}

fn ms(d: Option<SimDuration>) -> f64 {
    d.map(|d| d.as_micros() as f64 / 1_000.0).unwrap_or(0.0)
}

/// How the bench drives the Spanner clients: the fixed closed-loop fleet of
/// the standard entries, or open-loop Poisson arrivals for the knee sweep.
#[derive(Clone, Copy)]
enum Drive {
    Closed { sessions_per_client: usize },
    Open { rate_per_client: f64, max_in_flight: usize },
}

const SPANNER_CLIENTS: usize = 8;

/// The closed-loop drive shared by the standard spanner entry and the
/// multi-process run (hub and workers must agree on it byte for byte).
const BENCH_DRIVE: Drive = Drive::Closed { sessions_per_client: 4 };

const OPEN_LOOP_CAP: usize = 16;

/// The bench's Spanner client fleet, deterministic in `(seed, drive)`.
/// Multi-process workers rebuild the identical fleet from the same
/// arguments so node ids line up across processes.
fn spanner_clients(seed: u64, drive: Drive) -> Vec<spanner::ClientSpec> {
    (0..SPANNER_CLIENTS)
        .map(|i| {
            let sessions = match drive {
                Drive::Closed { sessions_per_client } => {
                    SessionConfig::closed_loop(sessions_per_client, SimDuration::ZERO)
                }
                Drive::Open { rate_per_client, max_in_flight } => {
                    SessionConfig::open_loop(rate_per_client, max_in_flight)
                }
            };
            spanner::ClientSpec {
                region: i % 3,
                sessions: sessions
                    .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
                workload: Box::new(spanner::UniformWorkload {
                    num_keys: 500,
                    ro_fraction: 0.5,
                    keys_per_txn: 2,
                }) as Box<dyn SessionWorkload>,
            }
        })
        .collect()
}

fn spanner_entry(
    name: &'static str,
    seed: u64,
    scale: u64,
    stop_secs: u64,
    transport: TransportKind,
    drive: Drive,
) -> LiveEntry {
    let config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    let num_shards = config.num_shards;
    let result = run_cluster_live(SpannerLiveSpec {
        config,
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients: spanner_clients(seed, drive),
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: scale,
        record_deliveries: false,
        transport,
    });
    let (history, witness) = spanner::build_history_from(&result.completed);
    let (certified, violation, peak_window) =
        match certify_streaming(&history, &witness, WitnessModel::Regular) {
            Ok(stats) => (true, None, stats.peak_window),
            Err(v) => (false, Some(format!("RSS violation (streaming): {v:?}")), 0),
        };
    let mut all = LatencyRecorder::new();
    all.merge(&result.rw_latencies);
    all.merge(&result.ro_latencies);
    LiveEntry {
        name,
        transport,
        // Node threads plus the router (the main thread only collects).
        threads: num_shards + SPANNER_CLIENTS + 1,
        history_ops: history.len(),
        certified,
        violation,
        sim_ops_per_sec: result.throughput,
        wall_ops_per_sec: result.wall_throughput,
        wall_ms: result.wall.as_secs_f64() * 1_000.0,
        p50_ms: ms(all.percentile(50.0)),
        p99_ms: ms(all.percentile(99.0)),
        peak_window,
        wire: result.wire,
        arrivals: result.session_stats.arrivals,
        shed: result.session_stats.shed,
    }
}

fn gryff_entry(seed: u64, scale: u64, stop_secs: u64, transport: TransportKind) -> LiveEntry {
    let num_clients = 5;
    let clients = (0..num_clients)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                0.5,
                0.25,
                seed.wrapping_add(i as u64),
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    let config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc);
    let num_replicas = config.num_replicas;
    let result = run_gryff_live(GryffLiveSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: scale,
        record_deliveries: false,
        transport,
    });
    let (history, edges) = gryff::build_history_from(&result.completed);
    let (certified, violation, peak_window) =
        match assemble_witness(&history, &edges, WitnessModel::Regular) {
            Ok(witness) => match certify_streaming(&history, &witness, WitnessModel::Regular) {
                Ok(stats) => (true, None, stats.peak_window),
                Err(v) => (false, Some(format!("RSC violation (streaming): {v:?}")), 0),
            },
            Err(e) => (
                false,
                Some(format!(
                    "carstamp/process-order constraints are cyclic ({} ops unordered)",
                    e.unordered
                )),
                0,
            ),
        };
    let mut all = LatencyRecorder::new();
    all.merge(&result.read_latencies);
    all.merge(&result.write_latencies);
    all.merge(&result.rmw_latencies);
    LiveEntry {
        name: "live-gryff-rsc",
        transport,
        threads: num_replicas + num_clients + 1,
        history_ops: history.len(),
        certified,
        violation,
        sim_ops_per_sec: result.throughput,
        wall_ops_per_sec: result.wall_throughput,
        wall_ms: result.wall.as_secs_f64() * 1_000.0,
        p50_ms: ms(all.percentile(50.0)),
        p99_ms: ms(all.percentile(99.0)),
        peak_window,
        wire: result.wire,
        arrivals: result.session_stats.arrivals,
        shed: result.session_stats.shed,
    }
}

// ----- open-loop ladder and multi-process mode -----

/// One rung of the open-loop arrival ladder.
struct LadderRung {
    rate_per_client: f64,
    offered_ops_per_sec: f64,
    achieved_ops_per_sec: f64,
    arrivals: u64,
    shed: u64,
    certified: bool,
    p50_ms: f64,
    p99_ms: f64,
}

/// Outcome of the multi-process section.
struct MultiprocEntry {
    processes: usize,
    history_ops: usize,
    certified: bool,
    violation: Option<String>,
    sim_ops_per_sec: f64,
    wall_ops_per_sec: f64,
    wall_ms: f64,
    wire: WireStats,
}

/// Runs the standard spanner deployment split across `workers` worker
/// processes plus the hub (this process), over a Unix-domain socket. The
/// workload and drain mirror the standard entry, so the numbers are
/// directly comparable to the single-process transports.
fn multiproc_entry(seed: u64, scale: u64, stop_secs: u64, workers: usize) -> MultiprocEntry {
    let config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    let shard_count = config.num_shards;
    let net = LatencyMatrix::spanner_wan();
    // The hub hosts no nodes; it only needs the id-indexed region list,
    // which the shared builder pins for every process.
    let regions: Vec<usize> = build_spanner_nodes(
        &config,
        &net,
        spanner_clients(seed, BENCH_DRIVE),
        SimTime::from_secs(stop_secs),
    )
    .iter()
    .map(|&(_, r)| r)
    .collect();

    let sock = std::env::temp_dir().join(format!("live_bench_{}.sock", std::process::id()));
    let addr = ListenAddr::Uds(sock.clone());
    let listener = Listener::bind(&addr).expect("bind multiproc socket");

    let exe = std::env::current_exe().expect("locate own executable");
    let mut children = Vec::with_capacity(workers);
    for w in 0..workers {
        let child = std::process::Command::new(&exe)
            .arg("--worker-addr")
            .arg(addr.to_string())
            .arg("--worker-index")
            .arg(w.to_string())
            .arg("--worker-count")
            .arg(workers.to_string())
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--worker-stop-secs")
            .arg(stop_secs.to_string())
            .spawn()
            .expect("spawn worker process");
        children.push(child);
    }

    let live_cfg = LiveConfig {
        seed,
        faults: config.faults.clone(),
        truetime_epsilon: config.truetime_epsilon,
        time_scale: scale,
        stop_at: SimTime::from_secs(stop_secs) + SimDuration::from_secs(8),
        record_deliveries: false,
    };
    let outcome = run_hub_multiproc::<spanner::SpannerMsg>(
        &live_cfg,
        Box::new(net),
        regions,
        listener,
        workers,
    )
    .expect("multiproc hub failed");
    for mut child in children {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker process exited with {status}");
    }
    let _ = std::fs::remove_file(&sock);

    let per_client: Vec<(usize, Vec<CompletedRecord>)> = outcome
        .completed
        .iter()
        .enumerate()
        .skip(shard_count)
        .map(|(id, recs)| (id, recs.iter().map(|(_, r)| r.clone()).collect()))
        .collect();
    let (history, witness) = spanner::build_history_from(&per_client);
    let (certified, violation) = match certify_streaming(&history, &witness, WitnessModel::Regular)
    {
        Ok(_) => (true, None),
        Err(v) => (false, Some(format!("RSS violation (streaming): {v:?}"))),
    };
    let measure_from = SimTime::from_secs(1);
    let stop = SimTime::from_secs(stop_secs);
    let window = stop.since(measure_from).as_micros() as f64 / 1_000_000.0;
    let measured = per_client
        .iter()
        .flat_map(|(_, recs)| recs.iter())
        .filter(|r| r.finish >= measure_from && r.finish < stop && !r.orphan && !r.kind.is_fence())
        .count();
    MultiprocEntry {
        processes: workers + 1,
        history_ops: history.len(),
        certified,
        violation,
        sim_ops_per_sec: measured as f64 / window.max(1e-9),
        wall_ops_per_sec: history.len() as f64 / outcome.wall.as_secs_f64().max(1e-9),
        wall_ms: outcome.wall.as_secs_f64() * 1_000.0,
        wire: outcome.wire,
    }
}

/// Hidden worker mode: rebuild the shared node list and host one partition.
/// Spawned by `multiproc_entry` (and CI's socket-smoke job) — not part of
/// the public CLI surface.
fn run_worker(addr: &str, index: usize, count: usize, seed: u64, stop_secs: u64) -> ExitCode {
    let addr = match ListenAddr::parse(addr) {
        Some(a) => a,
        None => {
            eprintln!("bad --worker-addr '{addr}'");
            return ExitCode::from(2);
        }
    };
    let config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    let epsilon = config.truetime_epsilon;
    let net = LatencyMatrix::spanner_wan();
    let nodes = build_spanner_nodes(
        &config,
        &net,
        spanner_clients(seed, BENCH_DRIVE),
        SimTime::from_secs(stop_secs),
    );
    match run_worker_multiproc::<spanner::SpannerMsg, _>(&addr, index, count, nodes, seed, epsilon)
    {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker {index}/{count} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn wire_fields(w: &WireStats) -> Vec<(&'static str, Json)> {
    vec![
        ("frames_tx", Json::u64(w.frames_tx)),
        ("bytes_tx", Json::u64(w.bytes_tx)),
        ("frames_rx", Json::u64(w.frames_rx)),
        ("bytes_rx", Json::u64(w.bytes_rx)),
    ]
}

fn entry_json(e: &LiveEntry) -> Json {
    let mut fields = vec![
        ("name", Json::str(e.name)),
        ("transport", Json::str(e.transport.name())),
        ("threads", Json::u64(e.threads as u64)),
        ("history_ops", Json::u64(e.history_ops as u64)),
        ("certified", Json::Bool(e.certified)),
        ("violation", e.violation.as_deref().map(Json::str).unwrap_or(Json::Null)),
        ("sim_ops_per_sec", Json::f64(round2(e.sim_ops_per_sec))),
        ("wall_ops_per_sec", Json::f64(round2(e.wall_ops_per_sec))),
        ("wall_ms", Json::f64(round2(e.wall_ms))),
        ("latency_p50_ms", Json::f64(round2(e.p50_ms))),
        ("latency_p99_ms", Json::f64(round2(e.p99_ms))),
        ("peak_window", Json::u64(e.peak_window as u64)),
    ];
    fields.extend(wire_fields(&e.wire));
    Json::obj(fields)
}

fn print_entry(e: &LiveEntry) {
    println!(
        "{} [{}]  {} threads, {} ops in {:.0} ms wall: {:.0} op/s wall ({:.0} op/sim-s), \
         p50 {:.1} ms p99 {:.1} ms (simulated), peak window {} — {}",
        e.name,
        e.transport.name(),
        e.threads,
        e.history_ops,
        e.wall_ms,
        e.wall_ops_per_sec,
        e.sim_ops_per_sec,
        e.p50_ms,
        e.p99_ms,
        e.peak_window,
        if e.certified { "CERTIFIED" } else { "VIOLATION" },
    );
    if e.wire.frames_tx > 0 {
        println!(
            "   wire: {} frames / {} bytes hub->workers, {} frames / {} bytes back",
            e.wire.frames_tx, e.wire.bytes_tx, e.wire.frames_rx, e.wire.bytes_rx
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn net_mode(
    out: PathBuf,
    seed: u64,
    scale: u64,
    quick: bool,
    transport: TransportKind,
    open_loop: bool,
    processes: usize,
) -> ExitCode {
    let stop_secs = if quick { 20 } else { 90 };
    let mut failed = false;

    // Serialization cost: the same seeded run over every transport.
    println!("== net bench: transport comparison (stop {stop_secs}s sim, scale {scale}x) ==");
    let transports: Vec<LiveEntry> = [TransportKind::Mpsc, TransportKind::Uds, TransportKind::Tcp]
        .into_iter()
        .map(|t| {
            let e = spanner_entry("live-spanner-rss", seed, scale, stop_secs, t, BENCH_DRIVE);
            print_entry(&e);
            e
        })
        .collect();
    failed |= transports.iter().any(|e| !e.certified);

    // Saturation knee: open-loop Poisson arrivals, rate ladder per client.
    // Start well below the cluster's capacity so the ladder shows the flat
    // region before the knee (the WAN deployment saturates around a few
    // hundred sim-ops/s; see BENCHMARKS.md).
    let ladder_rates: &[f64] =
        if quick { &[25.0, 100.0] } else { &[10.0, 25.0, 50.0, 100.0, 200.0, 400.0] };
    let ladder_secs = if quick { 15 } else { 40 };
    let mut ladder: Vec<LadderRung> = Vec::new();
    let mut knee: Option<f64> = None;
    if open_loop {
        println!(
            "== net bench: open-loop ladder over {} ({}s sim per rung, cap {}/client) ==",
            transport.name(),
            ladder_secs,
            OPEN_LOOP_CAP
        );
        for &rate in ladder_rates {
            let e = spanner_entry(
                "live-spanner-rss-open",
                seed,
                scale,
                ladder_secs,
                transport,
                Drive::Open { rate_per_client: rate, max_in_flight: OPEN_LOOP_CAP },
            );
            failed |= !e.certified;
            let offered = rate * SPANNER_CLIENTS as f64;
            let achieved = e.sim_ops_per_sec;
            let saturated = achieved < 0.85 * offered;
            if saturated && knee.is_none() {
                knee = Some(rate);
            }
            println!(
                "rate {rate:>5}/client: offered {offered:.0} op/s, achieved {achieved:.0} op/s, \
                 {} arrivals ({} shed), p99 {:.1} ms — {}{}",
                e.arrivals,
                e.shed,
                e.p99_ms,
                if e.certified { "CERTIFIED" } else { "VIOLATION" },
                if saturated { " [past the knee]" } else { "" },
            );
            ladder.push(LadderRung {
                rate_per_client: rate,
                offered_ops_per_sec: offered,
                achieved_ops_per_sec: achieved,
                arrivals: e.arrivals,
                shed: e.shed,
                certified: e.certified,
                p50_ms: e.p50_ms,
                p99_ms: e.p99_ms,
            });
        }
        match knee {
            Some(k) => println!("saturation knee: {k} arrivals/s per client"),
            None => println!("no knee within the ladder (achieved ≥ 85% of offered throughout)"),
        }
    }

    // Multi-process: split the cluster across worker processes over UDS.
    let multiproc = if processes > 0 {
        println!("== net bench: {processes} worker process(es) + hub over UDS ==");
        let m = multiproc_entry(seed, scale, stop_secs, processes);
        println!(
            "multiproc [{} procs]  {} ops in {:.0} ms wall: {:.0} op/s wall ({:.0} op/sim-s), \
             {} frames / {} bytes hub->workers — {}",
            m.processes,
            m.history_ops,
            m.wall_ms,
            m.wall_ops_per_sec,
            m.sim_ops_per_sec,
            m.wire.frames_tx,
            m.wire.bytes_tx,
            if m.certified { "CERTIFIED" } else { "VIOLATION" },
        );
        if let Some(v) = &m.violation {
            eprintln!("   {v}");
        }
        failed |= !m.certified;
        Some(m)
    } else {
        None
    };

    let json = Json::obj(vec![
        ("schema", Json::str("regular-seq/live-net/v1")),
        ("seed", Json::u64(seed)),
        ("time_scale", Json::u64(scale)),
        ("quick", Json::Bool(quick)),
        ("transports", Json::Arr(transports.iter().map(entry_json).collect())),
        (
            "open_loop",
            if open_loop {
                Json::obj(vec![
                    ("transport", Json::str(transport.name())),
                    ("max_in_flight_per_client", Json::u64(OPEN_LOOP_CAP as u64)),
                    ("rung_secs", Json::u64(ladder_secs)),
                    (
                        "ladder",
                        Json::Arr(
                            ladder
                                .iter()
                                .map(|r| {
                                    Json::obj(vec![
                                        ("rate_per_client", Json::f64(r.rate_per_client)),
                                        (
                                            "offered_ops_per_sec",
                                            Json::f64(round2(r.offered_ops_per_sec)),
                                        ),
                                        (
                                            "achieved_ops_per_sec",
                                            Json::f64(round2(r.achieved_ops_per_sec)),
                                        ),
                                        ("arrivals", Json::u64(r.arrivals)),
                                        ("shed", Json::u64(r.shed)),
                                        ("certified", Json::Bool(r.certified)),
                                        ("latency_p50_ms", Json::f64(round2(r.p50_ms))),
                                        ("latency_p99_ms", Json::f64(round2(r.p99_ms))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("knee_rate_per_client", knee.map(Json::f64).unwrap_or(Json::Null)),
                ])
            } else {
                Json::Null
            },
        ),
        (
            "multiproc",
            match &multiproc {
                Some(m) => {
                    let mut fields = vec![
                        ("processes", Json::u64(m.processes as u64)),
                        ("transport", Json::str("uds")),
                        ("history_ops", Json::u64(m.history_ops as u64)),
                        ("certified", Json::Bool(m.certified)),
                        (
                            "violation",
                            m.violation.as_deref().map(Json::str).unwrap_or(Json::Null),
                        ),
                        ("sim_ops_per_sec", Json::f64(round2(m.sim_ops_per_sec))),
                        ("wall_ops_per_sec", Json::f64(round2(m.wall_ops_per_sec))),
                        ("wall_ms", Json::f64(round2(m.wall_ms))),
                    ];
                    fields.extend(wire_fields(&m.wire));
                    Json::obj(fields)
                }
                None => Json::Null,
            },
        ),
    ]);
    if let Err(e) = regular_sweep::write_json(&out, &json) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", out.display());
    if failed {
        eprintln!("net bench FAILED: a live run did not certify");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut seed = 1u64;
    let mut scale = 60u64;
    let mut quick = false;
    let mut transport = TransportKind::Mpsc;
    let mut net = false;
    let mut open_loop = false;
    let mut processes = 0usize;
    let mut worker_addr: Option<String> = None;
    let mut worker_index = 0usize;
    let mut worker_count = 1usize;
    let mut worker_stop_secs = 60u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value())),
            "--seed" => seed = value().parse().expect("bad --seed"),
            "--scale" => scale = value().parse().expect("bad --scale"),
            "--quick" => quick = true,
            "--transport" => {
                let v = value();
                transport = TransportKind::parse(&v).unwrap_or_else(|| {
                    panic!("bad --transport '{v}' (expected mpsc, uds, or tcp)")
                });
            }
            "--net" => net = true,
            "--open-loop" => open_loop = true,
            "--processes" => processes = value().parse().expect("bad --processes"),
            "--worker-addr" => worker_addr = Some(value()),
            "--worker-index" => worker_index = value().parse().expect("bad --worker-index"),
            "--worker-count" => worker_count = value().parse().expect("bad --worker-count"),
            "--worker-stop-secs" => {
                worker_stop_secs = value().parse().expect("bad --worker-stop-secs")
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (usage: live_bench [--out PATH] [--seed S] \
                     [--scale N] [--quick] [--transport mpsc|uds|tcp] \
                     [--net [--open-loop] [--processes N]])"
                );
                return ExitCode::from(2);
            }
        }
    }

    if let Some(addr) = worker_addr {
        return run_worker(&addr, worker_index, worker_count, seed, worker_stop_secs);
    }
    if net {
        let out = out.unwrap_or_else(|| PathBuf::from("BENCH_net.json"));
        return net_mode(out, seed, scale, quick, transport, open_loop, processes);
    }
    let out = out.unwrap_or_else(|| PathBuf::from("BENCH_live.json"));
    let (spanner_secs, gryff_secs) = if quick { (25, 25) } else { (240, 120) };

    println!(
        "== live bench: scale {scale}x, seed {seed}, transport {}{} ==",
        transport.name(),
        if quick { ", quick" } else { "" }
    );
    let entries = vec![
        spanner_entry("live-spanner-rss", seed, scale, spanner_secs, transport, BENCH_DRIVE),
        gryff_entry(seed, scale, gryff_secs, transport),
    ];
    let mut failed = false;
    for e in &entries {
        print_entry(e);
        if let Some(v) = &e.violation {
            eprintln!("   {v}");
            failed = true;
        }
    }

    let json = Json::obj(vec![
        ("schema", Json::str("regular-seq/live-bench/v1")),
        ("seed", Json::u64(seed)),
        ("time_scale", Json::u64(scale)),
        ("quick", Json::Bool(quick)),
        ("transport", Json::str(transport.name())),
        ("entries", Json::Arr(entries.iter().map(entry_json).collect())),
    ]);
    if let Err(e) = regular_sweep::write_json(&out, &json) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", out.display());
    if failed {
        eprintln!("live bench FAILED: a live run did not certify");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
