//! Live-plane benchmark: wall-clock throughput and latency percentiles of
//! the protocol crates running on real OS threads, certified online.
//!
//! Two deployments run on the `regular-live` execution plane:
//!
//! * `live-spanner-rss`: a 3-shard Spanner-RSS cluster with 8 client nodes
//!   (12 OS threads including the router) driven long enough to complete
//!   well over 30k operations, streaming-certified RSS — the acceptance
//!   configuration of the live plane.
//! * `live-gryff-rsc`: the five-region Gryff-RSC deployment,
//!   streaming-certified RSC.
//!
//! Latency percentiles are reported in *simulated* milliseconds (they are
//! comparable across time scales and to the simulator's numbers); throughput
//! is reported both per simulated second and per wall-clock second. The
//! report is written to `BENCH_live.json`
//! (schema `regular-seq/live-bench/v1`); `bench_gate --live` compares it
//! warn-only against `ci/live_reference.json` — wall-clock numbers are
//! host-dependent — and fails only when a run stops certifying.
//!
//! Usage:
//!
//! ```text
//! live_bench [--out BENCH_live.json] [--seed S] [--scale N] [--quick]
//! ```
//!
//! `--scale` sets simulated microseconds per wall microsecond (default 60).
//! `--quick` shrinks the runs for smoke jobs (a few seconds total, no 30k-op
//! guarantee).

use std::path::PathBuf;
use std::process::ExitCode;

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::WitnessModel;
use regular_gryff::prelude as gryff;
use regular_live::{run_cluster_live, run_gryff_live, GryffLiveSpec, SpannerLiveSpec};
use regular_session::{SessionConfig, SessionWorkload};
use regular_sim::{LatencyMatrix, LatencyRecorder, SimDuration, SimTime};
use regular_spanner::prelude as spanner;
use regular_sweep::{certify_streaming, Json};

struct LiveEntry {
    name: &'static str,
    threads: usize,
    history_ops: usize,
    certified: bool,
    violation: Option<String>,
    sim_ops_per_sec: f64,
    wall_ops_per_sec: f64,
    wall_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    peak_window: usize,
}

fn ms(d: Option<SimDuration>) -> f64 {
    d.map(|d| d.as_micros() as f64 / 1_000.0).unwrap_or(0.0)
}

fn spanner_entry(seed: u64, scale: u64, stop_secs: u64) -> LiveEntry {
    let num_clients = 8;
    let clients = (0..num_clients)
        .map(|i| spanner::ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 500,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    let config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    let num_shards = config.num_shards;
    let result = run_cluster_live(SpannerLiveSpec {
        config,
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: scale,
        record_deliveries: false,
    });
    let (history, witness) = spanner::build_history_from(&result.completed);
    let (certified, violation, peak_window) =
        match certify_streaming(&history, &witness, WitnessModel::Regular) {
            Ok(stats) => (true, None, stats.peak_window),
            Err(v) => (false, Some(format!("RSS violation (streaming): {v:?}")), 0),
        };
    let mut all = LatencyRecorder::new();
    all.merge(&result.rw_latencies);
    all.merge(&result.ro_latencies);
    LiveEntry {
        name: "live-spanner-rss",
        // Node threads plus the router (the main thread only collects).
        threads: num_shards + num_clients + 1,
        history_ops: history.len(),
        certified,
        violation,
        sim_ops_per_sec: result.throughput,
        wall_ops_per_sec: result.wall_throughput,
        wall_ms: result.wall.as_secs_f64() * 1_000.0,
        p50_ms: ms(all.percentile(50.0)),
        p99_ms: ms(all.percentile(99.0)),
        peak_window,
    }
}

fn gryff_entry(seed: u64, scale: u64, stop_secs: u64) -> LiveEntry {
    let num_clients = 5;
    let clients = (0..num_clients)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                0.5,
                0.25,
                seed.wrapping_add(i as u64),
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    let config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc);
    let num_replicas = config.num_replicas;
    let result = run_gryff_live(GryffLiveSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(stop_secs),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: scale,
        record_deliveries: false,
    });
    let (history, edges) = gryff::build_history_from(&result.completed);
    let (certified, violation, peak_window) =
        match assemble_witness(&history, &edges, WitnessModel::Regular) {
            Ok(witness) => match certify_streaming(&history, &witness, WitnessModel::Regular) {
                Ok(stats) => (true, None, stats.peak_window),
                Err(v) => (false, Some(format!("RSC violation (streaming): {v:?}")), 0),
            },
            Err(e) => (
                false,
                Some(format!(
                    "carstamp/process-order constraints are cyclic ({} ops unordered)",
                    e.unordered
                )),
                0,
            ),
        };
    let mut all = LatencyRecorder::new();
    all.merge(&result.read_latencies);
    all.merge(&result.write_latencies);
    all.merge(&result.rmw_latencies);
    LiveEntry {
        name: "live-gryff-rsc",
        threads: num_replicas + num_clients + 1,
        history_ops: history.len(),
        certified,
        violation,
        sim_ops_per_sec: result.throughput,
        wall_ops_per_sec: result.wall_throughput,
        wall_ms: result.wall.as_secs_f64() * 1_000.0,
        p50_ms: ms(all.percentile(50.0)),
        p99_ms: ms(all.percentile(99.0)),
        peak_window,
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_live.json");
    let mut seed = 1u64;
    let mut scale = 60u64;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--out" => out = PathBuf::from(value()),
            "--seed" => seed = value().parse().expect("bad --seed"),
            "--scale" => scale = value().parse().expect("bad --scale"),
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument '{other}' (usage: live_bench [--out PATH] [--seed S] [--scale N] [--quick])");
                return ExitCode::from(2);
            }
        }
    }
    let (spanner_secs, gryff_secs) = if quick { (25, 25) } else { (240, 120) };

    println!("== live bench: scale {scale}x, seed {seed}{} ==", if quick { ", quick" } else { "" });
    let entries =
        vec![spanner_entry(seed, scale, spanner_secs), gryff_entry(seed, scale, gryff_secs)];
    let mut failed = false;
    for e in &entries {
        println!(
            "{}  {} threads, {} ops in {:.0} ms wall: {:.0} op/s wall ({:.0} op/sim-s), \
             p50 {:.1} ms p99 {:.1} ms (simulated), peak window {} — {}",
            e.name,
            e.threads,
            e.history_ops,
            e.wall_ms,
            e.wall_ops_per_sec,
            e.sim_ops_per_sec,
            e.p50_ms,
            e.p99_ms,
            e.peak_window,
            if e.certified { "CERTIFIED" } else { "VIOLATION" },
        );
        if let Some(v) = &e.violation {
            eprintln!("   {v}");
            failed = true;
        }
    }

    let json = Json::obj(vec![
        ("schema", Json::str("regular-seq/live-bench/v1")),
        ("seed", Json::u64(seed)),
        ("time_scale", Json::u64(scale)),
        ("quick", Json::Bool(quick)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("name", Json::str(e.name)),
                            ("threads", Json::u64(e.threads as u64)),
                            ("history_ops", Json::u64(e.history_ops as u64)),
                            ("certified", Json::Bool(e.certified)),
                            (
                                "violation",
                                e.violation.as_deref().map(Json::str).unwrap_or(Json::Null),
                            ),
                            ("sim_ops_per_sec", Json::f64(round2(e.sim_ops_per_sec))),
                            ("wall_ops_per_sec", Json::f64(round2(e.wall_ops_per_sec))),
                            ("wall_ms", Json::f64(round2(e.wall_ms))),
                            ("latency_p50_ms", Json::f64(round2(e.p50_ms))),
                            ("latency_p99_ms", Json::f64(round2(e.p99_ms))),
                            ("peak_window", Json::u64(e.peak_window as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Err(e) = regular_sweep::write_json(&out, &json) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", out.display());
    if failed {
        eprintln!("live bench FAILED: a live run did not certify");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
