//! Table 1: which photo-sharing invariants hold and which anomalies are
//! possible under strict serializability, RSS, and PO serializability.
//!
//! Methodology: for every invariant (I1, I2) and anomaly (A1–A3) the harness
//! constructs the canonical execution that exhibits the violation/anomaly and
//! asks each consistency model's checker whether it *admits* that execution.
//! "never" means the model rejects it; "possible" means the model admits it.
//! (A4 — a request that never receives a response — is outside any
//! consistency model's scope and is listed as "always possible" for all
//! models, as in the paper.)
//!
//! Usage: `cargo run -p regular-bench --bin table1`

use regular_core::checker::models::{satisfies, satisfies_composed, Model};
use regular_core::history::History;
use regular_core::invariants::{
    check_i1, check_i2, detect_a1, detect_a2_a3, scenarios, PhotoAppKeys,
};

fn verdict(admitted: bool) -> &'static str {
    if admitted {
        "possible"
    } else {
        "never"
    }
}

fn admitted(history: &History, model: Model) -> bool {
    match model {
        // Non-composable models only guarantee each service independently.
        Model::ProcessOrderedSerializability | Model::SequentialConsistency => {
            satisfies_composed(history, model)
        }
        _ => satisfies(history, model),
    }
}

fn main() {
    let keys = PhotoAppKeys::default();
    let models = [
        Model::StrictSerializability,
        Model::RegularSequentialSerializability,
        Model::ProcessOrderedSerializability,
    ];

    println!("== Table 1: invariants and anomalies of the photo-sharing application ==\n");

    let rows: Vec<(&str, History)> = vec![
        ("I1 violation (album references missing photo)", scenarios::i1_violation(&keys)),
        ("I2 violation (worker reads null after dequeue)", scenarios::i2_violation(&keys)),
        ("A1 (lost photo)", scenarios::a1_anomaly(&keys)),
        ("A2 (Alice adds, calls Bob, Bob misses it)", scenarios::a2_anomaly(&keys)),
        ("A3 (Alice sees Charlie's in-flight photo, Bob misses it)", scenarios::a3_anomaly(&keys)),
    ];

    // Sanity: every scenario really violates what it claims to violate.
    assert!(check_i1(&rows[0].1, &keys).is_err());
    assert!(check_i2(&rows[1].1, &keys).is_err());
    assert!(detect_a1(&rows[2].1, &keys).is_some());
    assert!(detect_a2_a3(&rows[3].1, &keys).is_some());
    assert!(detect_a2_a3(&rows[4].1, &keys).is_some());
    let correct = scenarios::correct_execution(&keys);
    assert!(check_i1(&correct, &keys).is_ok() && check_i2(&correct, &keys).is_ok());

    println!(
        "{:<58} | {:>14} | {:>14} | {:>18}",
        "scenario", "strict ser.", "RSS", "PO serializability"
    );
    println!("{}", "-".repeat(115));
    for (name, history) in &rows {
        print!("{name:<58} |");
        for model in models {
            print!(" {:>14} |", verdict(admitted(history, model)));
        }
        println!();
    }
    println!(
        "{:<58} | {:>14} | {:>14} | {:>18}",
        "A4 (request never answered: outside consistency model)",
        "possible",
        "possible",
        "possible"
    );

    println!("\nPaper's Table 1 for comparison:");
    println!("  I1: holds under all three models              (violations: never/never/never)");
    println!("  I2: holds under strict serializability and RSS (violation possible under PO ser.)");
    println!("  A1: never under any of the three");
    println!("  A2: never under strict serializability and RSS; always possible under PO ser.");
    println!(
        "  A3: never under strict ser.; temporarily possible under RSS; possible under PO ser."
    );
}
