//! CI regression gates over the session baselines and the engine hot path.
//!
//! **Session baselines.** Compares a freshly generated `BENCH_baseline.json`
//! (from `session_baseline`) against the checked-in reference
//! `ci/bench_baseline_reference.json` and fails (exit 1) when any non-WAN
//! configuration's throughput regressed by more than the threshold
//! (default 25%). WAN configurations are warn-only — their tail-latency
//! coupling makes small workload shifts look dramatic — and so are
//! *improvements* beyond the threshold, which print a reminder to refresh
//! the reference. Throughput here is simulated txn/s, deterministic for a
//! fixed seed, so a trip of this gate means the protocol's behaviour
//! changed, not that the runner was slow.
//!
//! **Engine hot path.** With `--engine` (a `BENCH_engine.json` from
//! `sim_profile`) and `--engine-reference`
//! (`ci/engine_hotpath_reference.json`), additionally gates the indexed
//! queue's speedup over the reference heap: a profile whose speedup fell
//! more than the threshold below the reference speedup fails. The *ratio*
//! is gated rather than raw wall-clock because both sides of the ratio run
//! on the same host in the same process — it transfers across machines the
//! way absolute milliseconds do not. Simulated observables (message count,
//! ops) are compared exactly and warn on drift, which means the committed
//! reference needs refreshing after an intentional behaviour change.
//!
//! **Checker scale.** With `--checker` (a `BENCH_checker_scale.json` from
//! `checker_scale`) and `--checker-reference`
//! (`ci/checker_scale_reference.json`), additionally gates the decomposed
//! and streaming certification speedups over the full batch check — again a
//! same-host ratio, so it transfers across machines. Entries without a
//! speedup (the baselines) are compared on observables only; `ops` and
//! `components` drift warns that the reference needs refreshing.
//!
//! **Durable storage.** With `--storage` (a `BENCH_storage.json` from
//! `storage_profile`) and `--storage-reference`
//! (`ci/storage_reference.json`), additionally gates the IO axis of the
//! write-ahead log. The group-commit sync schedule runs on a simulated
//! clock, so `records`/`syncs` (and hence the mean batch per fsync) are
//! deterministic on both backends and gated as ratios; a failed recovery
//! verification always fails the gate; wall-clock append throughput is
//! warn-only.
//!
//! **Live plane.** With `--live` (a `BENCH_live.json` from `live_bench`)
//! and `--live-reference` (`ci/live_reference.json`), additionally checks
//! the live execution plane. Wall-clock throughput is genuinely
//! host-dependent (real threads, real sleeps), so all performance drift is
//! **warn-only**; the only failing condition is a live run that stopped
//! *certifying* — that is a correctness regression, not a slow host.
//!
//! Usage:
//!
//! ```text
//! bench_gate [--current BENCH_baseline.json] \
//!            [--reference ci/bench_baseline_reference.json] \
//!            [--engine BENCH_engine.json] \
//!            [--engine-reference ci/engine_hotpath_reference.json] \
//!            [--engine-only] \
//!            [--checker BENCH_checker_scale.json] \
//!            [--checker-reference ci/checker_scale_reference.json] \
//!            [--checker-only] \
//!            [--live BENCH_live.json] \
//!            [--live-reference ci/live_reference.json] \
//!            [--live-only] \
//!            [--storage BENCH_storage.json] \
//!            [--storage-reference ci/storage_reference.json] \
//!            [--storage-only] \
//!            [--threshold 0.25]
//! ```
//!
//! `--engine-only` (for jobs that only profiled the engine) skips the
//! session-baseline comparison; `--engine` is then required. `--checker-only`,
//! `--live-only`, and `--storage-only` do the same for jobs that only
//! profiled the checker, the live plane, or the storage layer.

use std::path::PathBuf;
use std::process::ExitCode;

use regular_sweep::Json;

struct Entry {
    name: String,
    wan: bool,
    throughput: f64,
}

fn load_entries(path: &PathBuf) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "regular-seq/session-baseline/v1" {
        return Err(format!("{}: unexpected schema '{schema}'", path.display()));
    }
    json.get("configs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing configs", path.display()))?
        .iter()
        .map(|c| {
            Ok(Entry {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("config missing name")?
                    .to_string(),
                wan: c.get("wan").and_then(Json::as_bool).unwrap_or(false),
                throughput: c
                    .get("throughput")
                    .and_then(Json::as_f64)
                    .ok_or("config missing throughput")?,
            })
        })
        .collect()
}

struct EngineProfile {
    name: String,
    messages: u64,
    sim_ops: u64,
    speedup: f64,
}

fn load_engine_profiles(path: &PathBuf) -> Result<Vec<EngineProfile>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "regular-seq/engine-hotpath/v1" {
        return Err(format!("{}: unexpected schema '{schema}'", path.display()));
    }
    json.get("profiles")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing profiles", path.display()))?
        .iter()
        .map(|p| {
            Ok(EngineProfile {
                name: p
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("profile missing name")?
                    .to_string(),
                messages: p.get("messages").and_then(Json::as_u64).ok_or("missing messages")?,
                sim_ops: p.get("sim_ops").and_then(Json::as_u64).ok_or("missing sim_ops")?,
                speedup: p.get("speedup").and_then(Json::as_f64).ok_or("missing speedup")?,
            })
        })
        .collect()
}

struct CheckerEntry {
    name: String,
    ops: u64,
    components: u64,
    speedup: Option<f64>,
}

fn load_checker_entries(path: &PathBuf) -> Result<Vec<CheckerEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "regular-seq/checker-scale/v1" {
        return Err(format!("{}: unexpected schema '{schema}'", path.display()));
    }
    json.get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing entries", path.display()))?
        .iter()
        .map(|e| {
            Ok(CheckerEntry {
                name: e.get("name").and_then(Json::as_str).ok_or("entry missing name")?.to_string(),
                ops: e.get("ops").and_then(Json::as_u64).ok_or("entry missing ops")?,
                components: e
                    .get("components")
                    .and_then(Json::as_u64)
                    .ok_or("entry missing components")?,
                speedup: e.get("speedup").and_then(Json::as_f64),
            })
        })
        .collect()
}

struct LiveEntry {
    name: String,
    certified: bool,
    wall_ops_per_sec: f64,
}

fn load_live_entries(path: &PathBuf) -> Result<Vec<LiveEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "regular-seq/live-bench/v1" {
        return Err(format!("{}: unexpected schema '{schema}'", path.display()));
    }
    json.get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing entries", path.display()))?
        .iter()
        .map(|e| {
            Ok(LiveEntry {
                name: e.get("name").and_then(Json::as_str).ok_or("entry missing name")?.to_string(),
                certified: e
                    .get("certified")
                    .and_then(Json::as_bool)
                    .ok_or("entry missing certified")?,
                wall_ops_per_sec: e
                    .get("wall_ops_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or("entry missing wall_ops_per_sec")?,
            })
        })
        .collect()
}

struct StorageEntry {
    name: String,
    records: u64,
    syncs: u64,
    batch_mean: f64,
    append_ops_per_sec: f64,
    recovery_verified: bool,
}

fn load_storage_entries(path: &PathBuf) -> Result<Vec<StorageEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "regular-seq/storage-profile/v1" {
        return Err(format!("{}: unexpected schema '{schema}'", path.display()));
    }
    json.get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing entries", path.display()))?
        .iter()
        .map(|e| {
            Ok(StorageEntry {
                name: e.get("name").and_then(Json::as_str).ok_or("entry missing name")?.to_string(),
                records: e.get("records").and_then(Json::as_u64).ok_or("entry missing records")?,
                syncs: e.get("syncs").and_then(Json::as_u64).ok_or("entry missing syncs")?,
                batch_mean: e
                    .get("batch_mean")
                    .and_then(Json::as_f64)
                    .ok_or("entry missing batch_mean")?,
                append_ops_per_sec: e
                    .get("append_ops_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or("entry missing append_ops_per_sec")?,
                recovery_verified: e
                    .get("recovery_verified")
                    .and_then(Json::as_bool)
                    .ok_or("entry missing recovery_verified")?,
            })
        })
        .collect()
}

/// Gates the storage IO profile; returns true when something failed. The
/// group-commit batch ratio is deterministic (simulated-clock sync schedule)
/// and gated; recovery verification always gates; append wall throughput is
/// warn-only.
fn gate_storage(current: &PathBuf, reference: &PathBuf, threshold: f64) -> Result<bool, String> {
    let current_entries = load_storage_entries(current)?;
    let reference_entries = load_storage_entries(reference)?;
    println!(
        "== storage IO gate: {} vs {} (threshold {:.0}%) ==",
        current.display(),
        reference.display(),
        threshold * 100.0
    );
    let mut failed = false;
    for c in &current_entries {
        if !c.recovery_verified {
            eprintln!("FAIL  {}: WAL recovery verification failed", c.name);
            failed = true;
        }
    }
    for r in &reference_entries {
        let Some(c) = current_entries.iter().find(|c| c.name == r.name) else {
            eprintln!("FAIL  {}: missing from current storage profile", r.name);
            failed = true;
            continue;
        };
        let floor = r.batch_mean * (1.0 - threshold);
        let label = format!(
            "{:<12} ref batch {:>6.1}  now {:>6.1}  (floor {:>6.1})",
            r.name, r.batch_mean, c.batch_mean, floor
        );
        if c.batch_mean < floor {
            eprintln!("FAIL  {label}  (group commit stopped batching)");
            failed = true;
        } else {
            println!("ok    {label}");
        }
        if (c.records, c.syncs) != (r.records, r.syncs) {
            println!(
                "WARN  {}: deterministic observables drifted (records {} -> {}, \
                 syncs {} -> {}): refresh ci/storage_reference.json",
                r.name, r.records, c.records, r.syncs, c.syncs
            );
        }
        let delta = if r.append_ops_per_sec > 0.0 {
            (c.append_ops_per_sec - r.append_ops_per_sec) / r.append_ops_per_sec
        } else {
            0.0
        };
        if delta.abs() > threshold {
            println!(
                "WARN  {}: append throughput {:.0}/s vs ref {:.0}/s ({:+.1}%) \
                 (wall-clock, host-dependent)",
                r.name,
                c.append_ops_per_sec,
                r.append_ops_per_sec,
                delta * 100.0
            );
        }
    }
    for c in &current_entries {
        if !reference_entries.iter().any(|r| r.name == c.name) {
            println!(
                "WARN  {}: not in the reference (add it to ci/storage_reference.json \
                 or it is never gated)",
                c.name
            );
        }
    }
    Ok(failed)
}

/// Checks the live-plane profile; returns true when something failed. Only
/// a certification regression fails — wall-clock drift is warn-only because
/// live throughput depends on the host's cores and scheduler.
fn gate_live(current: &PathBuf, reference: &PathBuf, threshold: f64) -> Result<bool, String> {
    let current_entries = load_live_entries(current)?;
    let reference_entries = load_live_entries(reference)?;
    println!(
        "== live plane gate: {} vs {} (throughput warn-only, threshold {:.0}%) ==",
        current.display(),
        reference.display(),
        threshold * 100.0
    );
    let mut failed = false;
    for c in &current_entries {
        if !c.certified {
            eprintln!("FAIL  {}: live run no longer certifies", c.name);
            failed = true;
        }
    }
    for r in &reference_entries {
        let Some(c) = current_entries.iter().find(|c| c.name == r.name) else {
            println!("WARN  {}: missing from current live profile", r.name);
            continue;
        };
        let delta = if r.wall_ops_per_sec > 0.0 {
            (c.wall_ops_per_sec - r.wall_ops_per_sec) / r.wall_ops_per_sec
        } else {
            0.0
        };
        let label = format!(
            "{:<20} ref {:>8.0} op/s wall  now {:>8.0} op/s wall  {:>+7.1}%",
            r.name,
            r.wall_ops_per_sec,
            c.wall_ops_per_sec,
            delta * 100.0
        );
        if delta.abs() > threshold {
            println!("WARN  {label}  (wall-clock numbers are host-dependent)");
        } else {
            println!("ok    {label}");
        }
    }
    Ok(failed)
}

/// Gates the checker-scale certification speedups; returns true when
/// something failed.
fn gate_checker(current: &PathBuf, reference: &PathBuf, threshold: f64) -> Result<bool, String> {
    let current_entries = load_checker_entries(current)?;
    let reference_entries = load_checker_entries(reference)?;
    println!(
        "== checker scale gate: {} vs {} (threshold {:.0}%) ==",
        current.display(),
        reference.display(),
        threshold * 100.0
    );
    let mut failed = false;
    for r in &reference_entries {
        let Some(c) = current_entries.iter().find(|c| c.name == r.name) else {
            eprintln!("FAIL  {}: missing from current checker profile", r.name);
            failed = true;
            continue;
        };
        match (r.speedup, c.speedup) {
            (Some(ref_speedup), Some(cur_speedup)) => {
                let floor = ref_speedup * (1.0 - threshold);
                let label = format!(
                    "{:<26} ref {:>5.2}x  now {:>5.2}x  (floor {:>5.2}x)",
                    r.name, ref_speedup, cur_speedup, floor
                );
                if cur_speedup < floor {
                    eprintln!("FAIL  {label}");
                    failed = true;
                } else {
                    println!("ok    {label}");
                }
            }
            (Some(_), None) => {
                eprintln!("FAIL  {}: reference gates a speedup the current profile lacks", r.name);
                failed = true;
            }
            (None, _) => println!("ok    {:<26} (baseline row, not gated)", r.name),
        }
        if (c.ops, c.components) != (r.ops, r.components) {
            println!(
                "WARN  {}: observables drifted from the reference (ops {} -> {}, \
                 components {} -> {}): refresh ci/checker_scale_reference.json",
                r.name, r.ops, c.ops, r.components, c.components
            );
        }
    }
    for c in &current_entries {
        if !reference_entries.iter().any(|r| r.name == c.name) {
            println!(
                "WARN  {}: not in the reference (add it to ci/checker_scale_reference.json \
                 or its speedup is never gated)",
                c.name
            );
        }
    }
    Ok(failed)
}

/// Gates the engine-hotpath speedups; returns true when something failed.
fn gate_engine(current: &PathBuf, reference: &PathBuf, threshold: f64) -> Result<bool, String> {
    let current_profiles = load_engine_profiles(current)?;
    let reference_profiles = load_engine_profiles(reference)?;
    println!(
        "== engine hot-path gate: {} vs {} (threshold {:.0}%) ==",
        current.display(),
        reference.display(),
        threshold * 100.0
    );
    let mut failed = false;
    for r in &reference_profiles {
        let Some(c) = current_profiles.iter().find(|c| c.name == r.name) else {
            eprintln!("FAIL  {}: missing from current engine profile", r.name);
            failed = true;
            continue;
        };
        let floor = r.speedup * (1.0 - threshold);
        let label = format!(
            "{:<24} ref {:>5.2}x  now {:>5.2}x  (floor {:>5.2}x)",
            r.name, r.speedup, c.speedup, floor
        );
        if c.speedup < floor {
            eprintln!("FAIL  {label}");
            failed = true;
        } else {
            println!("ok    {label}");
        }
        if (c.messages, c.sim_ops) != (r.messages, r.sim_ops) {
            println!(
                "WARN  {}: simulated observables drifted from the reference \
                 (messages {} -> {}, ops {} -> {}): behaviour changed, refresh \
                 ci/engine_hotpath_reference.json",
                r.name, r.messages, c.messages, r.sim_ops, c.sim_ops
            );
        }
    }
    for c in &current_profiles {
        if !reference_profiles.iter().any(|r| r.name == c.name) {
            println!(
                "WARN  {}: not in the reference (add it to ci/engine_hotpath_reference.json \
                 or its speedup is never gated)",
                c.name
            );
        }
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let mut current = PathBuf::from("BENCH_baseline.json");
    let mut reference = PathBuf::from("ci/bench_baseline_reference.json");
    let mut engine: Option<PathBuf> = None;
    let mut engine_reference = PathBuf::from("ci/engine_hotpath_reference.json");
    let mut engine_only = false;
    let mut checker: Option<PathBuf> = None;
    let mut checker_reference = PathBuf::from("ci/checker_scale_reference.json");
    let mut checker_only = false;
    let mut live: Option<PathBuf> = None;
    let mut live_reference = PathBuf::from("ci/live_reference.json");
    let mut live_only = false;
    let mut storage: Option<PathBuf> = None;
    let mut storage_reference = PathBuf::from("ci/storage_reference.json");
    let mut storage_only = false;
    let mut threshold = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--current" => current = PathBuf::from(value()),
            "--reference" => reference = PathBuf::from(value()),
            "--engine" => engine = Some(PathBuf::from(value())),
            "--engine-reference" => engine_reference = PathBuf::from(value()),
            "--engine-only" => engine_only = true,
            "--checker" => checker = Some(PathBuf::from(value())),
            "--checker-reference" => checker_reference = PathBuf::from(value()),
            "--checker-only" => checker_only = true,
            "--live" => live = Some(PathBuf::from(value())),
            "--live-reference" => live_reference = PathBuf::from(value()),
            "--live-only" => live_only = true,
            "--storage" => storage = Some(PathBuf::from(value())),
            "--storage-reference" => storage_reference = PathBuf::from(value()),
            "--storage-only" => storage_only = true,
            "--threshold" => threshold = value().parse().expect("bad --threshold"),
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    if engine_only && engine.is_none() {
        eprintln!("bench_gate: --engine-only requires --engine");
        return ExitCode::from(2);
    }
    if checker_only && checker.is_none() {
        eprintln!("bench_gate: --checker-only requires --checker");
        return ExitCode::from(2);
    }
    if live_only && live.is_none() {
        eprintln!("bench_gate: --live-only requires --live");
        return ExitCode::from(2);
    }
    if storage_only && storage.is_none() {
        eprintln!("bench_gate: --storage-only requires --storage");
        return ExitCode::from(2);
    }

    let mut engine_failed = false;
    if let Some(engine) = &engine {
        match gate_engine(engine, &engine_reference, threshold) {
            Ok(failed) => engine_failed = failed,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut checker_failed = false;
    if let Some(checker) = &checker {
        match gate_checker(checker, &checker_reference, threshold) {
            Ok(failed) => checker_failed = failed,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut live_failed = false;
    if let Some(live) = &live {
        match gate_live(live, &live_reference, threshold) {
            Ok(failed) => live_failed = failed,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut storage_failed = false;
    if let Some(storage) = &storage {
        match gate_storage(storage, &storage_reference, threshold) {
            Ok(failed) => storage_failed = failed,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if engine_only || checker_only || live_only || storage_only {
        if engine_failed {
            eprintln!("bench gate FAILED: engine hot-path speedup regressed beyond the threshold");
        }
        if checker_failed {
            eprintln!(
                "bench gate FAILED: checker-scale certification speedup regressed beyond \
                 the threshold"
            );
        }
        if live_failed {
            eprintln!("bench gate FAILED: a live-plane run no longer certifies");
        }
        if storage_failed {
            eprintln!("bench gate FAILED: the storage IO profile regressed");
        }
        if engine_failed || checker_failed || live_failed || storage_failed {
            return ExitCode::FAILURE;
        }
        println!("bench gate passed (profile gates only)");
        return ExitCode::SUCCESS;
    }

    let (current_entries, reference_entries) =
        match (load_entries(&current), load_entries(&reference)) {
            (Ok(c), Ok(r)) => (c, r),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        };

    println!(
        "== bench gate: {} vs {} (threshold {:.0}%) ==",
        current.display(),
        reference.display(),
        threshold * 100.0
    );
    let mut failed = false;
    for reference_entry in &reference_entries {
        let Some(current_entry) = current_entries.iter().find(|c| c.name == reference_entry.name)
        else {
            eprintln!("FAIL  {}: missing from current baseline", reference_entry.name);
            failed = true;
            continue;
        };
        let delta = if reference_entry.throughput > 0.0 {
            (current_entry.throughput - reference_entry.throughput) / reference_entry.throughput
        } else {
            0.0
        };
        let label = format!(
            "{:<34} ref {:>10.0}/s  now {:>10.0}/s  {:>+7.1}%",
            reference_entry.name,
            reference_entry.throughput,
            current_entry.throughput,
            delta * 100.0
        );
        if delta < -threshold {
            if reference_entry.wan {
                println!("WARN  {label}  (WAN config: warn-only)");
            } else {
                eprintln!("FAIL  {label}");
                failed = true;
            }
        } else if delta > threshold {
            println!("WARN  {label}  (large improvement: refresh the reference)");
        } else {
            println!("ok    {label}");
        }
    }
    for current_entry in &current_entries {
        if !reference_entries.iter().any(|r| r.name == current_entry.name) {
            println!(
                "WARN  {}: not in the reference (add it to ci/bench_baseline_reference.json)",
                current_entry.name
            );
        }
    }
    if failed || engine_failed || checker_failed || live_failed || storage_failed {
        if failed {
            eprintln!("bench gate FAILED: throughput regressed beyond the threshold");
        }
        if engine_failed {
            eprintln!("bench gate FAILED: engine hot-path speedup regressed beyond the threshold");
        }
        if checker_failed {
            eprintln!(
                "bench gate FAILED: checker-scale certification speedup regressed beyond \
                 the threshold"
            );
        }
        if live_failed {
            eprintln!("bench gate FAILED: a live-plane run no longer certifies");
        }
        if storage_failed {
            eprintln!("bench gate FAILED: the storage IO profile regressed");
        }
        return ExitCode::FAILURE;
    }
    println!("bench gate passed");
    ExitCode::SUCCESS
}
