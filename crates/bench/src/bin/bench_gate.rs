//! CI throughput-regression gate over the session baselines.
//!
//! Compares a freshly generated `BENCH_baseline.json` (from
//! `session_baseline`) against the checked-in reference
//! `ci/bench_baseline_reference.json` and fails (exit 1) when any non-WAN
//! configuration's throughput regressed by more than the threshold
//! (default 25%). WAN configurations are warn-only — their tail-latency
//! coupling makes small workload shifts look dramatic — and so are
//! *improvements* beyond the threshold, which print a reminder to refresh
//! the reference.
//!
//! Throughput here is simulated txn/s, deterministic for a fixed seed, so a
//! trip of this gate means the protocol's behaviour changed, not that the
//! runner was slow.
//!
//! Usage:
//!
//! ```text
//! bench_gate [--current BENCH_baseline.json] \
//!            [--reference ci/bench_baseline_reference.json] \
//!            [--threshold 0.25]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use regular_sweep::Json;

struct Entry {
    name: String,
    wan: bool,
    throughput: f64,
}

fn load_entries(path: &PathBuf) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "regular-seq/session-baseline/v1" {
        return Err(format!("{}: unexpected schema '{schema}'", path.display()));
    }
    json.get("configs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing configs", path.display()))?
        .iter()
        .map(|c| {
            Ok(Entry {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("config missing name")?
                    .to_string(),
                wan: c.get("wan").and_then(Json::as_bool).unwrap_or(false),
                throughput: c
                    .get("throughput")
                    .and_then(Json::as_f64)
                    .ok_or("config missing throughput")?,
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let mut current = PathBuf::from("BENCH_baseline.json");
    let mut reference = PathBuf::from("ci/bench_baseline_reference.json");
    let mut threshold = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match arg.as_str() {
            "--current" => current = PathBuf::from(value()),
            "--reference" => reference = PathBuf::from(value()),
            "--threshold" => threshold = value().parse().expect("bad --threshold"),
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let (current_entries, reference_entries) =
        match (load_entries(&current), load_entries(&reference)) {
            (Ok(c), Ok(r)) => (c, r),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        };

    println!(
        "== bench gate: {} vs {} (threshold {:.0}%) ==",
        current.display(),
        reference.display(),
        threshold * 100.0
    );
    let mut failed = false;
    for reference_entry in &reference_entries {
        let Some(current_entry) = current_entries.iter().find(|c| c.name == reference_entry.name)
        else {
            eprintln!("FAIL  {}: missing from current baseline", reference_entry.name);
            failed = true;
            continue;
        };
        let delta = if reference_entry.throughput > 0.0 {
            (current_entry.throughput - reference_entry.throughput) / reference_entry.throughput
        } else {
            0.0
        };
        let label = format!(
            "{:<34} ref {:>10.0}/s  now {:>10.0}/s  {:>+7.1}%",
            reference_entry.name,
            reference_entry.throughput,
            current_entry.throughput,
            delta * 100.0
        );
        if delta < -threshold {
            if reference_entry.wan {
                println!("WARN  {label}  (WAN config: warn-only)");
            } else {
                eprintln!("FAIL  {label}");
                failed = true;
            }
        } else if delta > threshold {
            println!("WARN  {label}  (large improvement: refresh the reference)");
        } else {
            println!("ok    {label}");
        }
    }
    for current_entry in &current_entries {
        if !reference_entries.iter().any(|r| r.name == current_entry.name) {
            println!(
                "WARN  {}: not in the reference (add it to ci/bench_baseline_reference.json)",
                current_entry.name
            );
        }
    }
    if failed {
        eprintln!("bench gate FAILED: throughput regressed beyond the threshold");
        return ExitCode::FAILURE;
    }
    println!("bench gate passed");
    ExitCode::SUCCESS
}
