//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! The binaries in `src/bin/` each reproduce one experiment (see the
//! experiment index in `DESIGN.md` and the recorded results in
//! `EXPERIMENTS.md`); the Criterion benches in `benches/` measure the
//! protocol-level and checker-level costs.

pub mod runs;

pub use runs::*;
