//! The Gryff replica: shared-register storage plus read-modify-write
//! coordination.
//!
//! Replicas store, per key, the current value and its carstamp, and apply
//! updates only when the incoming carstamp is larger (the register
//! "write-if-newer" rule). Read-modify-writes are serialized per key at a
//! deterministic coordinator replica (`key mod num_replicas`), which runs a
//! read phase and a write phase against a quorum — a simplification of
//! Gryff's EPaxos-based consensus path that preserves per-key atomicity of
//! rmws (see DESIGN.md).

use std::collections::VecDeque;

use regular_core::densemap::DenseKeyMap;
use regular_core::hashing::{FxHashMap, FxHashSet};

use regular_core::types::{Key, Value};
use regular_sim::engine::{Context, NodeId};
use regular_sim::time::SimDuration;
use regular_storage::wal::{RecoveredLog, Wal, WalStats};
use regular_storage::Durability;

use crate::carstamp::Carstamp;
use crate::config::GryffConfig;
use crate::durable::{GryffRecord, GryffSnapshot, SnapRmw};
use crate::messages::{Dep, GryffMsg, OpRef};

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaStats {
    /// Read-phase requests served.
    pub reads_served: u64,
    /// Write-phase (second round) applications.
    pub writes_applied: u64,
    /// Piggybacked dependencies applied before processing a request.
    pub deps_applied: u64,
    /// Read-modify-writes coordinated by this replica.
    pub rmws_coordinated: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RmwPhase {
    Read,
    Write,
}

#[derive(Debug)]
struct RmwCoordination {
    client: NodeId,
    client_op: OpRef,
    key: Key,
    new_value: Value,
    phase: RmwPhase,
    /// Replicas that answered the current round — a set, because rounds may
    /// be re-sent after a crash and messages may be duplicated, and a quorum
    /// must mean distinct replicas.
    replied: FxHashSet<NodeId>,
    max: (Carstamp, Value),
    chosen: Carstamp,
}

/// A Gryff replica node.
pub struct GryffReplica {
    index: usize,
    quorum: usize,
    num_replicas: usize,
    /// Engine node id of replica 0. The replica group occupies the node-id
    /// range `first_node .. first_node + num_replicas`; standalone
    /// deployments add replicas first (`first_node = 0`), composed
    /// deployments place them after other stores' nodes.
    first_node: NodeId,
    store: DenseKeyMap<(Value, Carstamp)>,
    /// In-flight rmw coordinations, keyed by internal sequence number. Like
    /// real Gryff's EPaxos-based rmw path, coordination state is
    /// consensus-replicated and therefore survives leader crashes; recovery
    /// re-drives the current round (see `Node::on_recover`).
    rmws: FxHashMap<u64, RmwCoordination>,
    next_internal: u64,
    /// Per-key queue of rmws waiting their turn (the head is active).
    rmw_queue: DenseKeyMap<VecDeque<u64>>,
    /// The at-most-once table: decided rmws by client operation id, so a
    /// retried `Rmw` request is answered from the log instead of being
    /// applied twice.
    finished_rmws: FxHashMap<OpRef, (Value, Carstamp)>,
    /// Statistics for the harness.
    pub stats: ReplicaStats,
    /// The write-ahead log under `Durability::Wal`; `None` keeps the
    /// pre-existing in-memory behaviour on every path.
    wal: Option<Wal>,
    /// Outbound messages held back until the records they depend on are
    /// synced (group commit): an ack must never reveal state the log could
    /// still lose.
    wal_pending: Vec<(NodeId, GryffMsg)>,
    /// Armed group-commit flush timer, if any.
    flush_timer: Option<u64>,
    /// Timer-tag allocator. Replicas only use timers for the group-commit
    /// flush, but tags must stay monotone across crashes (deferred engine
    /// timers fire post-recovery with their old tags).
    next_timer: u64,
    /// Bug-zoo mutant knobs (see `crate::config::BugZoo`); only compiled-in
    /// builds read them.
    #[cfg(any(test, feature = "bug-zoo"))]
    bug_zoo: crate::config::BugZoo,
}

impl GryffReplica {
    /// Creates a replica with the given index.
    pub fn new(cfg: &GryffConfig, index: usize) -> Self {
        let (wal, recovered) = match &cfg.durability {
            Durability::InMemory => (None, None),
            Durability::Wal(opts) => {
                let (wal, log) = Wal::open(opts, &format!("gryff-replica-{index}"));
                (Some(wal), Some(log))
            }
        };
        let mut replica = GryffReplica {
            index,
            quorum: cfg.quorum(),
            num_replicas: cfg.num_replicas,
            first_node: 0,
            store: DenseKeyMap::new(),
            rmws: FxHashMap::default(),
            next_internal: 0,
            rmw_queue: DenseKeyMap::new(),
            finished_rmws: FxHashMap::default(),
            stats: ReplicaStats::default(),
            wal,
            wal_pending: Vec::new(),
            flush_timer: None,
            next_timer: 0,
            #[cfg(any(test, feature = "bug-zoo"))]
            bug_zoo: cfg.bug_zoo,
        };
        // A pre-existing log (a live-plane process restart) replays into the
        // initial state; fresh simulation runs start from an empty device.
        if let Some(log) = recovered {
            replica.apply_replay(log);
        }
        replica
    }

    /// WAL counters for this replica (zeroes under `Durability::InMemory`).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// Whether this replica runs on a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Every register this replica holds, sorted by key — the differential
    /// anchor for durability tests.
    pub fn registers(&self) -> Vec<(Key, Value, Carstamp)> {
        let mut regs: Vec<(Key, Value, Carstamp)> =
            self.store.iter().map(|(k, &(v, cs))| (k, v, cs)).collect();
        regs.sort_unstable_by_key(|(k, _, _)| k.0);
        regs
    }

    /// The replica's behaviour-coverage phase tag (see
    /// `regular_sim::engine::Node::phase_tag`): bit 0 — rmw coordinations in
    /// flight; bit 1 — an rmw already in its write phase; bit 2 — outbound
    /// messages gated on a WAL sync; bit 3 — a group-commit flush timer
    /// armed. A message delivered while a bit is set is a different
    /// behaviour than the same message on an idle replica — exactly the
    /// distinctions the carstamp and recovery races live in.
    pub fn phase_tag(&self) -> u16 {
        let mut tag = 0;
        if !self.rmws.is_empty() {
            tag |= 1;
        }
        if self.rmws.values().any(|c| c.phase == RmwPhase::Write) {
            tag |= 1 << 1;
        }
        if !self.wal_pending.is_empty() {
            tag |= 1 << 2;
        }
        if self.flush_timer.is_some() {
            tag |= 1 << 3;
        }
        tag
    }

    /// Appends a durable state transition to the WAL (no-op when in-memory).
    fn log(&mut self, ctx: &Context<GryffMsg>, rec: &GryffRecord) {
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&rec.encode(), ctx.now().as_micros());
        }
    }

    /// Sends `msg` to `to`, holding it back while the WAL has unsynced
    /// records. FIFO order with earlier held messages is preserved.
    fn send_d(&mut self, ctx: &mut Context<GryffMsg>, to: NodeId, msg: GryffMsg) {
        let gated =
            self.wal.as_ref().is_some_and(|w| w.wants_sync()) || !self.wal_pending.is_empty();
        if gated {
            self.wal_pending.push((to, msg));
        } else {
            ctx.send(to, msg);
        }
    }

    fn release_pending(&mut self, ctx: &mut Context<GryffMsg>) {
        for (to, msg) in std::mem::take(&mut self.wal_pending) {
            ctx.send(to, msg);
        }
    }

    /// Group-commit bookkeeping at the end of every handler turn: write a
    /// due checkpoint, sync immediately (window 0 or expired) or arm the
    /// flush timer, and release held messages once nothing is unsynced.
    fn turn_end(&mut self, ctx: &mut Context<GryffMsg>) {
        if self.wal.is_none() {
            debug_assert!(self.wal_pending.is_empty());
            return;
        }
        if self.wal.as_ref().unwrap().checkpoint_due() {
            let snapshot = self.encode_snapshot();
            self.wal.as_mut().unwrap().checkpoint(&snapshot);
        }
        let now = ctx.now().as_micros();
        let wal = self.wal.as_mut().unwrap();
        if wal.wants_sync() {
            let deadline = wal.deadline_us().expect("dirty log has a deadline");
            if wal.group_commit_us() == 0 || deadline <= now {
                wal.sync();
            } else if self.flush_timer.is_none() {
                let tag = self.next_timer;
                self.next_timer += 1;
                self.flush_timer = Some(tag);
                ctx.set_timer(SimDuration::from_micros(deadline - now), tag);
            }
        }
        if !self.wal.as_ref().unwrap().wants_sync() {
            self.release_pending(ctx);
        }
    }

    /// Serializes the durable state for a checkpoint, deterministically.
    fn encode_snapshot(&self) -> Vec<u8> {
        let store = self.registers();
        let mut rmws: Vec<SnapRmw> = self
            .rmws
            .iter()
            .map(|(&internal, c)| SnapRmw {
                internal,
                client: c.client,
                client_op: c.client_op,
                key: c.key,
                new_value: c.new_value,
                phase: match c.phase {
                    RmwPhase::Read => 0,
                    RmwPhase::Write => 1,
                },
                max_value: c.max.1,
                max_cs: c.max.0,
                chosen: c.chosen,
            })
            .collect();
        rmws.sort_unstable_by_key(|r| r.internal);
        let mut finished: Vec<(OpRef, Value, Carstamp)> =
            self.finished_rmws.iter().map(|(&op, &(v, cs))| (op, v, cs)).collect();
        finished.sort_unstable_by_key(|(op, _, _)| (op.node, op.seq));
        GryffSnapshot { store, rmws, next_internal: self.next_internal, finished }.encode()
    }

    /// Rebuilds durable state from a recovered snapshot + log tail. The
    /// `replied` sets stay empty; the recovery hook re-drives head-of-queue
    /// rounds to re-collect their quorums.
    fn apply_replay(&mut self, log: RecoveredLog) {
        if let Some(snap) = log.snapshot.as_deref().and_then(GryffSnapshot::decode) {
            for (key, value, cs) in snap.store {
                self.apply_raw(key, value, cs);
            }
            self.next_internal = self.next_internal.max(snap.next_internal);
            let mut rmws = snap.rmws;
            rmws.sort_unstable_by_key(|r| r.internal);
            for r in rmws {
                self.rmws.insert(
                    r.internal,
                    RmwCoordination {
                        client: r.client,
                        client_op: r.client_op,
                        key: r.key,
                        new_value: r.new_value,
                        phase: if r.phase == 0 { RmwPhase::Read } else { RmwPhase::Write },
                        replied: FxHashSet::default(),
                        max: (r.max_cs, r.max_value),
                        chosen: r.chosen,
                    },
                );
                // Queue order is arrival order, which is internal-id order.
                self.rmw_queue.get_or_insert_with(r.key, VecDeque::new).push_back(r.internal);
            }
            for (op, value, cs) in snap.finished {
                self.finished_rmws.insert(op, (value, cs));
            }
        }
        for bytes in &log.records {
            let Some(rec) = GryffRecord::decode(bytes) else {
                debug_assert!(false, "crc-valid record failed to decode");
                continue;
            };
            self.replay_record(rec);
        }
    }

    fn replay_record(&mut self, rec: GryffRecord) {
        match rec {
            GryffRecord::Apply { key, value, cs } => {
                self.apply_raw(key, value, cs);
            }
            GryffRecord::RmwBegin { internal, client, client_op, key, new_value } => {
                self.next_internal = self.next_internal.max(internal + 1);
                self.rmws.insert(
                    internal,
                    RmwCoordination {
                        client,
                        client_op,
                        key,
                        new_value,
                        phase: RmwPhase::Read,
                        replied: FxHashSet::default(),
                        max: (Carstamp::ZERO, Value::NULL),
                        chosen: Carstamp::ZERO,
                    },
                );
                self.rmw_queue.get_or_insert_with(key, VecDeque::new).push_back(internal);
            }
            GryffRecord::RmwChosen { internal, old_value, cs } => {
                if let Some(coord) = self.rmws.get_mut(&internal) {
                    coord.phase = RmwPhase::Write;
                    coord.replied.clear();
                    coord.max.1 = old_value;
                    coord.chosen = cs;
                }
            }
            GryffRecord::RmwFinish { internal, client_op, key, old_value, cs } => {
                self.rmws.remove(&internal);
                self.finished_rmws.insert(client_op, (old_value, cs));
                if let Some(queue) = self.rmw_queue.get_mut(key) {
                    queue.retain(|&i| i != internal);
                    if queue.is_empty() {
                        self.rmw_queue.remove(key);
                    }
                }
            }
        }
    }

    /// This replica's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Places the replica group at engine node ids
    /// `first .. first + num_replicas` (composed deployments add other
    /// stores' nodes before the replicas, so replica `i` is *not* node `i`).
    pub fn with_first_node(mut self, first: NodeId) -> Self {
        self.first_node = first;
        self
    }

    /// The engine node ids of the whole replica group, coordination rounds'
    /// destinations (self included, via loopback).
    fn peer_nodes(&self) -> std::ops::Range<NodeId> {
        self.first_node..self.first_node + self.num_replicas
    }

    /// Current value and carstamp for a key.
    pub fn get(&self, key: Key) -> (Value, Carstamp) {
        self.store.get(key).copied().unwrap_or((Value::NULL, Carstamp::ZERO))
    }

    /// Installs `(value, cs)` under the write-if-newer rule, without logging
    /// (replay path — the record already exists).
    fn apply_raw(&mut self, key: Key, value: Value, cs: Carstamp) {
        let current = self.get(key).1;
        if cs > current {
            self.store.insert(key, (value, cs));
        }
    }

    /// Installs `(value, cs)` under the write-if-newer rule, logging the
    /// register transition when it actually advances.
    fn apply(&mut self, ctx: &Context<GryffMsg>, key: Key, value: Value, cs: Carstamp) {
        let current = self.get(key).1;
        if cs > current {
            self.store.insert(key, (value, cs));
            self.log(ctx, &GryffRecord::Apply { key, value, cs });
        }
    }

    fn apply_dep(&mut self, ctx: &Context<GryffMsg>, dep: Option<Dep>) {
        if let Some(d) = dep {
            self.apply(ctx, d.key, d.value, d.cs);
            self.stats.deps_applied += 1;
        }
    }

    fn start_next_rmw(&mut self, ctx: &mut Context<GryffMsg>, key: Key) {
        let Some(queue) = self.rmw_queue.get(key) else { return };
        let Some(&internal) = queue.front() else { return };
        let op = OpRef { node: ctx.node_id(), seq: internal };
        let key = self.rmws[&internal].key;
        // Read phase against all replicas (including ourselves via loopback).
        for p in self.peer_nodes() {
            self.send_d(ctx, p, GryffMsg::Read1 { op, key, dep: None });
        }
    }

    /// Re-sends the current round of coordination `internal` if it is the
    /// head of its key queue (a queued coordination starts when the head
    /// finishes, so only the head has a round in flight). Rounds are
    /// idempotent and reply-counting dedups by replica, so replicas that
    /// already answered simply answer again.
    ///
    /// Called when a client retries an in-flight `Rmw` — without this, a
    /// round whose replies were lost (a partition or drop window) stalls
    /// forever: nothing on the coordinator re-drives it, and the retried
    /// request used to be swallowed by the at-most-once dedup. The client's
    /// operation timeout is the retry clock.
    fn redrive_rmw(&mut self, ctx: &mut Context<GryffMsg>, internal: u64) {
        let Some(coord) = self.rmws.get(&internal) else { return };
        let key = coord.key;
        if self.rmw_queue.get(key).and_then(|q| q.front()) != Some(&internal) {
            return;
        }
        let op = OpRef { node: ctx.node_id(), seq: internal };
        match coord.phase {
            RmwPhase::Read => {
                for p in self.peer_nodes() {
                    self.send_d(ctx, p, GryffMsg::Read1 { op, key, dep: None });
                }
            }
            RmwPhase::Write => {
                // The decision (value, carstamp) is durable: re-sending the
                // same Write2 is a no-op at replicas that already applied it.
                let (value, cs) = (coord.new_value, coord.chosen);
                for p in self.peer_nodes() {
                    self.send_d(ctx, p, GryffMsg::Write2 { op, key, value, cs });
                }
            }
        }
    }

    fn handle_rmw_reply_read(
        &mut self,
        ctx: &mut Context<GryffMsg>,
        from: NodeId,
        internal: u64,
        value: Value,
        cs: Carstamp,
    ) {
        let ready = {
            let Some(coord) = self.rmws.get_mut(&internal) else { return };
            if coord.phase != RmwPhase::Read || !coord.replied.insert(from) {
                return;
            }
            if (cs, value) > coord.max {
                coord.max = (cs, value);
            }
            coord.replied.len() >= self.quorum
        };
        if !ready {
            return;
        }
        // Move to the write phase: install the new value at max + 1.
        let (op, key, new_value, chosen, old_value) = {
            let coord = self.rmws.get_mut(&internal).expect("coordination exists");
            coord.phase = RmwPhase::Write;
            coord.replied.clear();
            // The rmw extends the base value it observed: only `rmwc`
            // advances, so a racing base write (count + 1) still orders
            // above this rmw — see `Carstamp::next_rmw`.
            coord.chosen = coord.max.0.next_rmw();
            // Bug-zoo mutant: the PR 5 regression chose a fresh two-component
            // carstamp instead, at count+1 with the maximal writer id — so
            // the rmw always wins the tie-break against a racing base write
            // at the same count, and that write becomes unobservable.
            #[cfg(any(test, feature = "bug-zoo"))]
            if self.bug_zoo.two_component_carstamps {
                coord.chosen = coord.max.0.next(u64::MAX);
            }
            (
                OpRef { node: ctx.node_id(), seq: internal },
                coord.key,
                coord.new_value,
                coord.chosen,
                coord.max.1,
            )
        };
        // The chosen carstamp must be durable before any Write2 leaves:
        // recovery must resume this exact decision, not re-run the read
        // phase and install the rmw a second time at a new position.
        self.log(ctx, &GryffRecord::RmwChosen { internal, old_value, cs: chosen });
        for p in self.peer_nodes() {
            self.send_d(ctx, p, GryffMsg::Write2 { op, key, value: new_value, cs: chosen });
        }
    }

    fn handle_rmw_reply_write(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, internal: u64) {
        let done = {
            let Some(coord) = self.rmws.get_mut(&internal) else { return };
            if coord.phase != RmwPhase::Write || !coord.replied.insert(from) {
                return;
            }
            coord.replied.len() >= self.quorum
        };
        if !done {
            return;
        }
        let coord = self.rmws.remove(&internal).expect("coordination exists");
        self.stats.rmws_coordinated += 1;
        self.finished_rmws.insert(coord.client_op, (coord.max.1, coord.chosen));
        self.log(
            ctx,
            &GryffRecord::RmwFinish {
                internal,
                client_op: coord.client_op,
                key: coord.key,
                old_value: coord.max.1,
                cs: coord.chosen,
            },
        );
        self.send_d(
            ctx,
            coord.client,
            GryffMsg::RmwReply { op: coord.client_op, old_value: coord.max.1, cs: coord.chosen },
        );
        // Start the next queued rmw for this key, if any.
        if let Some(queue) = self.rmw_queue.get_mut(coord.key) {
            queue.pop_front();
            if queue.is_empty() {
                self.rmw_queue.remove(coord.key);
            } else {
                self.start_next_rmw(ctx, coord.key);
            }
        }
    }
}

impl GryffReplica {
    fn dispatch_message(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, msg: GryffMsg) {
        match msg {
            GryffMsg::Read1 { op, key, dep } => {
                self.apply_dep(ctx, dep);
                self.stats.reads_served += 1;
                let (value, cs) = self.get(key);
                self.send_d(ctx, from, GryffMsg::Read1Reply { op, value, cs });
            }
            GryffMsg::Write1 { op, key, dep } => {
                self.apply_dep(ctx, dep);
                let (_, cs) = self.get(key);
                self.send_d(ctx, from, GryffMsg::Write1Reply { op, cs });
            }
            GryffMsg::Write2 { op, key, value, cs } => {
                self.apply(ctx, key, value, cs);
                self.stats.writes_applied += 1;
                self.send_d(ctx, from, GryffMsg::Write2Reply { op });
            }
            GryffMsg::Rmw { op, key, new_value, dep } => {
                self.apply_dep(ctx, dep);
                // At-most-once: a retried (or duplicated) request for a
                // decided rmw is answered from the log; one already in
                // flight keeps coordinating.
                if let Some(&(old_value, cs)) = self.finished_rmws.get(&op) {
                    self.send_d(ctx, from, GryffMsg::RmwReply { op, old_value, cs });
                    return;
                }
                if let Some(internal) =
                    self.rmws.iter().find(|(_, c)| c.client_op == op).map(|(&i, _)| i)
                {
                    // Already coordinating: the retry means the client timed
                    // out, so the round's replies were probably lost —
                    // re-drive it instead of dropping the request.
                    self.redrive_rmw(ctx, internal);
                    return;
                }
                let internal = self.next_internal;
                self.next_internal += 1;
                self.rmws.insert(
                    internal,
                    RmwCoordination {
                        client: from,
                        client_op: op,
                        key,
                        new_value,
                        phase: RmwPhase::Read,
                        replied: FxHashSet::default(),
                        max: (Carstamp::ZERO, Value::NULL),
                        chosen: Carstamp::ZERO,
                    },
                );
                self.log(
                    ctx,
                    &GryffRecord::RmwBegin {
                        internal,
                        client: from,
                        client_op: op,
                        key,
                        new_value,
                    },
                );
                let queue = self.rmw_queue.get_or_insert_with(key, VecDeque::new);
                queue.push_back(internal);
                if queue.len() == 1 {
                    self.start_next_rmw(ctx, key);
                }
            }
            // Replies to this replica acting as an rmw coordinator.
            GryffMsg::Read1Reply { op, value, cs } => {
                if op.node == ctx.node_id() {
                    self.handle_rmw_reply_read(ctx, from, op.seq, value, cs);
                }
            }
            GryffMsg::Write2Reply { op } => {
                if op.node == ctx.node_id() {
                    self.handle_rmw_reply_write(ctx, from, op.seq);
                }
            }
            GryffMsg::Write1Reply { .. } | GryffMsg::RmwReply { .. } => {
                // Client-bound messages; replicas ignore them.
            }
        }
    }
}

impl regular_sim::engine::Node<GryffMsg> for GryffReplica {
    fn on_message(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, msg: GryffMsg) {
        self.dispatch_message(ctx, from, msg);
        self.turn_end(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<GryffMsg>, tag: u64) {
        if self.flush_timer == Some(tag) {
            // Group-commit window expired: sync the log and release every
            // message the gate held back.
            self.flush_timer = None;
            if let Some(wal) = self.wal.as_mut() {
                if wal.wants_sync() {
                    wal.sync();
                }
            }
            self.release_pending(ctx);
        }
        // Any other tag is a stale flush timer deferred across a crash.
    }

    fn on_crash(&mut self, _ctx: &mut Context<GryffMsg>) {
        let Some(wal) = self.wal.as_mut() else {
            // In-memory mode models the paper's assumptions directly: the
            // register store is disk-backed and rmw coordination state is
            // consensus-replicated (as in Gryff's EPaxos rmw path), so a
            // crash loses nothing.
            return;
        };
        // Machine-wipe semantics: the crash destroys everything volatile,
        // and the device applies its own crash semantics to unsynced bytes.
        // Recovery rebuilds exclusively from what the log can prove.
        wal.on_crash();
        self.wal_pending.clear();
        self.flush_timer = None;
        self.store = DenseKeyMap::new();
        self.rmws.clear();
        self.next_internal = 0;
        self.rmw_queue = DenseKeyMap::new();
        self.finished_rmws.clear();
        // `next_timer` is deliberately NOT reset (deferred engine timers
        // keep their old tags); stats are harness counters and stay.
    }

    fn on_recover(&mut self, ctx: &mut Context<GryffMsg>) {
        if self.wal.is_some() {
            // Rebuild durable state from the device: last checkpoint
            // snapshot plus the log tail that survived the crash.
            let log = self.wal.as_mut().unwrap().recover();
            self.apply_replay(log);
        }
        // Replies that arrived while this coordinator was down expired.
        // Re-drive the current round of every active (head-of-queue)
        // coordination; rounds are idempotent and reply-counting dedups by
        // replica, so replicas that already answered simply answer again.
        let mut heads: Vec<(Key, u64)> = self
            .rmw_queue
            .iter()
            .filter_map(|(k, q)| q.front().map(|&internal| (k, internal)))
            .collect();
        heads.sort_unstable();
        for (_, internal) in heads {
            self.redrive_rmw(ctx, internal);
        }
        self.turn_end(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    #[test]
    fn apply_respects_carstamp_order() {
        let cfg = GryffConfig::wan(Mode::Gryff);
        let mut r = GryffReplica::new(&cfg, 0);
        assert_eq!(r.get(Key(1)), (Value::NULL, Carstamp::ZERO));
        r.apply_raw(Key(1), Value(10), Carstamp { count: 2, writer: 1, rmwc: 0 });
        r.apply_raw(Key(1), Value(20), Carstamp { count: 1, writer: 9, rmwc: 0 });
        assert_eq!(r.get(Key(1)).0, Value(10), "older carstamp must not overwrite newer");
        r.apply_raw(Key(1), Value(30), Carstamp { count: 3, writer: 0, rmwc: 0 });
        assert_eq!(r.get(Key(1)).0, Value(30));
    }

    #[test]
    fn replica_metadata() {
        let cfg = GryffConfig::wan(Mode::Gryff);
        let r = GryffReplica::new(&cfg, 2);
        assert_eq!(r.num_replicas, 5);
        assert_eq!(r.quorum, 3);
        assert_eq!(r.index(), 2);
    }
}
