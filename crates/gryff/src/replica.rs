//! The Gryff replica: shared-register storage plus read-modify-write
//! coordination.
//!
//! Replicas store, per key, the current value and its carstamp, and apply
//! updates only when the incoming carstamp is larger (the register
//! "write-if-newer" rule). Read-modify-writes are serialized per key at a
//! deterministic coordinator replica (`key mod num_replicas`), which runs a
//! read phase and a write phase against a quorum — a simplification of
//! Gryff's EPaxos-based consensus path that preserves per-key atomicity of
//! rmws (see DESIGN.md).

use std::collections::VecDeque;

use regular_core::densemap::DenseKeyMap;
use regular_core::hashing::{FxHashMap, FxHashSet};

use regular_core::types::{Key, Value};
use regular_sim::engine::{Context, NodeId};

use crate::carstamp::Carstamp;
use crate::config::GryffConfig;
use crate::messages::{Dep, GryffMsg, OpRef};

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaStats {
    /// Read-phase requests served.
    pub reads_served: u64,
    /// Write-phase (second round) applications.
    pub writes_applied: u64,
    /// Piggybacked dependencies applied before processing a request.
    pub deps_applied: u64,
    /// Read-modify-writes coordinated by this replica.
    pub rmws_coordinated: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RmwPhase {
    Read,
    Write,
}

#[derive(Debug)]
struct RmwCoordination {
    client: NodeId,
    client_op: OpRef,
    key: Key,
    new_value: Value,
    phase: RmwPhase,
    /// Replicas that answered the current round — a set, because rounds may
    /// be re-sent after a crash and messages may be duplicated, and a quorum
    /// must mean distinct replicas.
    replied: FxHashSet<NodeId>,
    max: (Carstamp, Value),
    chosen: Carstamp,
}

/// A Gryff replica node.
pub struct GryffReplica {
    index: usize,
    quorum: usize,
    num_replicas: usize,
    /// Engine node id of replica 0. The replica group occupies the node-id
    /// range `first_node .. first_node + num_replicas`; standalone
    /// deployments add replicas first (`first_node = 0`), composed
    /// deployments place them after other stores' nodes.
    first_node: NodeId,
    store: DenseKeyMap<(Value, Carstamp)>,
    /// In-flight rmw coordinations, keyed by internal sequence number. Like
    /// real Gryff's EPaxos-based rmw path, coordination state is
    /// consensus-replicated and therefore survives leader crashes; recovery
    /// re-drives the current round (see `Node::on_recover`).
    rmws: FxHashMap<u64, RmwCoordination>,
    next_internal: u64,
    /// Per-key queue of rmws waiting their turn (the head is active).
    rmw_queue: DenseKeyMap<VecDeque<u64>>,
    /// The at-most-once table: decided rmws by client operation id, so a
    /// retried `Rmw` request is answered from the log instead of being
    /// applied twice.
    finished_rmws: FxHashMap<OpRef, (Value, Carstamp)>,
    /// Statistics for the harness.
    pub stats: ReplicaStats,
}

impl GryffReplica {
    /// Creates a replica with the given index.
    pub fn new(cfg: &GryffConfig, index: usize) -> Self {
        GryffReplica {
            index,
            quorum: cfg.quorum(),
            num_replicas: cfg.num_replicas,
            first_node: 0,
            store: DenseKeyMap::new(),
            rmws: FxHashMap::default(),
            next_internal: 0,
            rmw_queue: DenseKeyMap::new(),
            finished_rmws: FxHashMap::default(),
            stats: ReplicaStats::default(),
        }
    }

    /// This replica's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Places the replica group at engine node ids
    /// `first .. first + num_replicas` (composed deployments add other
    /// stores' nodes before the replicas, so replica `i` is *not* node `i`).
    pub fn with_first_node(mut self, first: NodeId) -> Self {
        self.first_node = first;
        self
    }

    /// The engine node ids of the whole replica group, coordination rounds'
    /// destinations (self included, via loopback).
    fn peer_nodes(&self) -> std::ops::Range<NodeId> {
        self.first_node..self.first_node + self.num_replicas
    }

    /// Current value and carstamp for a key.
    pub fn get(&self, key: Key) -> (Value, Carstamp) {
        self.store.get(key).copied().unwrap_or((Value::NULL, Carstamp::ZERO))
    }

    fn apply(&mut self, key: Key, value: Value, cs: Carstamp) {
        let current = self.get(key).1;
        if cs > current {
            self.store.insert(key, (value, cs));
        }
    }

    fn apply_dep(&mut self, dep: Option<Dep>) {
        if let Some(d) = dep {
            self.apply(d.key, d.value, d.cs);
            self.stats.deps_applied += 1;
        }
    }

    fn start_next_rmw(&mut self, ctx: &mut Context<GryffMsg>, key: Key) {
        let Some(queue) = self.rmw_queue.get(key) else { return };
        let Some(&internal) = queue.front() else { return };
        let op = OpRef { node: ctx.node_id(), seq: internal };
        let key = self.rmws[&internal].key;
        // Read phase against all replicas (including ourselves via loopback).
        for p in self.peer_nodes() {
            ctx.send(p, GryffMsg::Read1 { op, key, dep: None });
        }
    }

    /// Re-sends the current round of coordination `internal` if it is the
    /// head of its key queue (a queued coordination starts when the head
    /// finishes, so only the head has a round in flight). Rounds are
    /// idempotent and reply-counting dedups by replica, so replicas that
    /// already answered simply answer again.
    ///
    /// Called when a client retries an in-flight `Rmw` — without this, a
    /// round whose replies were lost (a partition or drop window) stalls
    /// forever: nothing on the coordinator re-drives it, and the retried
    /// request used to be swallowed by the at-most-once dedup. The client's
    /// operation timeout is the retry clock.
    fn redrive_rmw(&mut self, ctx: &mut Context<GryffMsg>, internal: u64) {
        let Some(coord) = self.rmws.get(&internal) else { return };
        let key = coord.key;
        if self.rmw_queue.get(key).and_then(|q| q.front()) != Some(&internal) {
            return;
        }
        let op = OpRef { node: ctx.node_id(), seq: internal };
        match coord.phase {
            RmwPhase::Read => {
                for p in self.peer_nodes() {
                    ctx.send(p, GryffMsg::Read1 { op, key, dep: None });
                }
            }
            RmwPhase::Write => {
                // The decision (value, carstamp) is durable: re-sending the
                // same Write2 is a no-op at replicas that already applied it.
                let (value, cs) = (coord.new_value, coord.chosen);
                for p in self.peer_nodes() {
                    ctx.send(p, GryffMsg::Write2 { op, key, value, cs });
                }
            }
        }
    }

    fn handle_rmw_reply_read(
        &mut self,
        ctx: &mut Context<GryffMsg>,
        from: NodeId,
        internal: u64,
        value: Value,
        cs: Carstamp,
    ) {
        let ready = {
            let Some(coord) = self.rmws.get_mut(&internal) else { return };
            if coord.phase != RmwPhase::Read || !coord.replied.insert(from) {
                return;
            }
            if (cs, value) > coord.max {
                coord.max = (cs, value);
            }
            coord.replied.len() >= self.quorum
        };
        if !ready {
            return;
        }
        // Move to the write phase: install the new value at max + 1.
        let (op, key, new_value, chosen) = {
            let coord = self.rmws.get_mut(&internal).expect("coordination exists");
            coord.phase = RmwPhase::Write;
            coord.replied.clear();
            // The rmw extends the base value it observed: only `rmwc`
            // advances, so a racing base write (count + 1) still orders
            // above this rmw — see `Carstamp::next_rmw`.
            coord.chosen = coord.max.0.next_rmw();
            (OpRef { node: ctx.node_id(), seq: internal }, coord.key, coord.new_value, coord.chosen)
        };
        for p in self.peer_nodes() {
            ctx.send(p, GryffMsg::Write2 { op, key, value: new_value, cs: chosen });
        }
    }

    fn handle_rmw_reply_write(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, internal: u64) {
        let done = {
            let Some(coord) = self.rmws.get_mut(&internal) else { return };
            if coord.phase != RmwPhase::Write || !coord.replied.insert(from) {
                return;
            }
            coord.replied.len() >= self.quorum
        };
        if !done {
            return;
        }
        let coord = self.rmws.remove(&internal).expect("coordination exists");
        self.stats.rmws_coordinated += 1;
        self.finished_rmws.insert(coord.client_op, (coord.max.1, coord.chosen));
        ctx.send(
            coord.client,
            GryffMsg::RmwReply { op: coord.client_op, old_value: coord.max.1, cs: coord.chosen },
        );
        // Start the next queued rmw for this key, if any.
        if let Some(queue) = self.rmw_queue.get_mut(coord.key) {
            queue.pop_front();
            if queue.is_empty() {
                self.rmw_queue.remove(coord.key);
            } else {
                self.start_next_rmw(ctx, coord.key);
            }
        }
    }
}

impl regular_sim::engine::Node<GryffMsg> for GryffReplica {
    fn on_message(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, msg: GryffMsg) {
        match msg {
            GryffMsg::Read1 { op, key, dep } => {
                self.apply_dep(dep);
                self.stats.reads_served += 1;
                let (value, cs) = self.get(key);
                ctx.send(from, GryffMsg::Read1Reply { op, value, cs });
            }
            GryffMsg::Write1 { op, key, dep } => {
                self.apply_dep(dep);
                let (_, cs) = self.get(key);
                ctx.send(from, GryffMsg::Write1Reply { op, cs });
            }
            GryffMsg::Write2 { op, key, value, cs } => {
                self.apply(key, value, cs);
                self.stats.writes_applied += 1;
                ctx.send(from, GryffMsg::Write2Reply { op });
            }
            GryffMsg::Rmw { op, key, new_value, dep } => {
                self.apply_dep(dep);
                // At-most-once: a retried (or duplicated) request for a
                // decided rmw is answered from the log; one already in
                // flight keeps coordinating.
                if let Some(&(old_value, cs)) = self.finished_rmws.get(&op) {
                    ctx.send(from, GryffMsg::RmwReply { op, old_value, cs });
                    return;
                }
                if let Some(internal) =
                    self.rmws.iter().find(|(_, c)| c.client_op == op).map(|(&i, _)| i)
                {
                    // Already coordinating: the retry means the client timed
                    // out, so the round's replies were probably lost —
                    // re-drive it instead of dropping the request.
                    self.redrive_rmw(ctx, internal);
                    return;
                }
                let internal = self.next_internal;
                self.next_internal += 1;
                self.rmws.insert(
                    internal,
                    RmwCoordination {
                        client: from,
                        client_op: op,
                        key,
                        new_value,
                        phase: RmwPhase::Read,
                        replied: FxHashSet::default(),
                        max: (Carstamp::ZERO, Value::NULL),
                        chosen: Carstamp::ZERO,
                    },
                );
                let queue = self.rmw_queue.get_or_insert_with(key, VecDeque::new);
                queue.push_back(internal);
                if queue.len() == 1 {
                    self.start_next_rmw(ctx, key);
                }
            }
            // Replies to this replica acting as an rmw coordinator.
            GryffMsg::Read1Reply { op, value, cs } => {
                if op.node == ctx.node_id() {
                    self.handle_rmw_reply_read(ctx, from, op.seq, value, cs);
                }
            }
            GryffMsg::Write2Reply { op } => {
                if op.node == ctx.node_id() {
                    self.handle_rmw_reply_write(ctx, from, op.seq);
                }
            }
            GryffMsg::Write1Reply { .. } | GryffMsg::RmwReply { .. } => {
                // Client-bound messages; replicas ignore them.
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<GryffMsg>) {
        // The register store is disk-backed and rmw coordination state is
        // consensus-replicated (as in Gryff's EPaxos rmw path), so nothing
        // is lost — but replies that arrived while this coordinator was down
        // expired. Re-drive the current round of every active (head-of-queue)
        // coordination; rounds are idempotent and reply-counting dedups by
        // replica, so replicas that already answered simply answer again.
        let mut heads: Vec<(Key, u64)> = self
            .rmw_queue
            .iter()
            .filter_map(|(k, q)| q.front().map(|&internal| (k, internal)))
            .collect();
        heads.sort_unstable();
        for (_, internal) in heads {
            self.redrive_rmw(ctx, internal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    #[test]
    fn apply_respects_carstamp_order() {
        let cfg = GryffConfig::wan(Mode::Gryff);
        let mut r = GryffReplica::new(&cfg, 0);
        assert_eq!(r.get(Key(1)), (Value::NULL, Carstamp::ZERO));
        r.apply(Key(1), Value(10), Carstamp { count: 2, writer: 1, rmwc: 0 });
        r.apply(Key(1), Value(20), Carstamp { count: 1, writer: 9, rmwc: 0 });
        assert_eq!(r.get(Key(1)).0, Value(10), "older carstamp must not overwrite newer");
        r.apply(Key(1), Value(30), Carstamp { count: 3, writer: 0, rmwc: 0 });
        assert_eq!(r.get(Key(1)).0, Value(30));
    }

    #[test]
    fn replica_metadata() {
        let cfg = GryffConfig::wan(Mode::Gryff);
        let r = GryffReplica::new(&cfg, 2);
        assert_eq!(r.num_replicas, 5);
        assert_eq!(r.quorum, 3);
        assert_eq!(r.index(), 2);
    }
}
