//! The Gryff / Gryff-RSC client: reads, writes, read-modify-writes, and
//! real-time fences.
//!
//! * **Reads** (baseline): a read phase against a quorum; if the quorum
//!   disagrees, a write-back phase propagates the newest value before the read
//!   returns (two round trips).
//! * **Reads** (Gryff-RSC): always one round trip; when the quorum disagrees
//!   the observed value becomes a *dependency* piggybacked on the client's
//!   next operation (Algorithm 3).
//! * **Writes**: carstamp collection then propagation (two round trips).
//! * **Read-modify-writes**: forwarded to the key's coordinator replica.
//! * **Fences** (Gryff-RSC): write back the pending dependency to a quorum so
//!   all future reads — by any client — observe it (Section 7.1).

use std::collections::HashMap;

use rand::Rng;
use regular_core::types::Value;
use regular_sim::engine::{Context, NodeId};
use regular_sim::time::{SimDuration, SimTime};

use crate::carstamp::Carstamp;
use crate::config::Mode;
use crate::messages::{Dep, GryffMsg, OpRef};
use crate::workload::{GryffWorkload, OpRequest};

/// Client configuration shared by all client nodes of a deployment.
#[derive(Debug, Clone)]
pub struct GryffClientConfig {
    /// Protocol variant.
    pub mode: Mode,
    /// Node ids of the replicas (0..num_replicas by construction).
    pub replicas: Vec<NodeId>,
    /// Majority quorum size.
    pub quorum: usize,
    /// Number of concurrent closed-loop sessions driven by this node.
    pub sessions: usize,
    /// Think time between a session's operations.
    pub think_time: SimDuration,
    /// Stop issuing new operations after this instant.
    pub stop_issuing_at: SimTime,
}

/// One completed operation, as recorded for metrics and conformance checking.
#[derive(Debug, Clone)]
pub struct CompletedOp {
    /// What kind of operation this was.
    pub kind: OpRequest,
    /// Value returned (read result, or prior value for rmw; null for writes).
    pub read_value: Value,
    /// Value written (writes and rmws).
    pub written_value: Value,
    /// Carstamp associated with the operation (read: carstamp of the returned
    /// value; write/rmw: carstamp of the installed value).
    pub carstamp: Carstamp,
    /// Invocation instant.
    pub invoke: SimTime,
    /// Completion instant.
    pub finish: SimTime,
    /// Number of wide-area round trips the operation needed.
    pub rounds: u8,
    /// Issuing session.
    pub session: u64,
}

/// Aggregate client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GryffClientStats {
    /// Completed reads.
    pub reads: u64,
    /// Reads that needed the write-back (second) round.
    pub slow_reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Completed read-modify-writes.
    pub rmws: u64,
    /// Completed fences.
    pub fences: u64,
    /// Dependencies piggybacked onto later operations (Gryff-RSC).
    pub deps_piggybacked: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpPhase {
    ReadRound,
    ReadWriteBack,
    WriteRound1,
    WriteRound2,
    RmwWait,
    FenceRound,
}

#[derive(Debug)]
struct ActiveOp {
    session: u64,
    request: OpRequest,
    invoke: SimTime,
    phase: OpPhase,
    replies: usize,
    /// Maximum (carstamp, value) observed in the current round.
    max: (Carstamp, Value),
    /// Whether the first-round quorum disagreed.
    disagreement: bool,
    /// Value to write (writes and rmws).
    write_value: Value,
    /// Carstamp chosen for the write.
    chosen: Carstamp,
    /// Whether a dependency was attached to this operation's first round.
    carried_dep: bool,
    rounds: u8,
}

enum TimerAction {
    StartOp { session: u64 },
}

/// The Gryff client node.
pub struct GryffClient {
    cfg: GryffClientConfig,
    workload: Box<dyn GryffWorkload>,
    ops: HashMap<u64, ActiveOp>,
    next_seq: u64,
    value_counter: u64,
    /// The pending dependency (Gryff-RSC): the last read observation not yet
    /// known to be at a quorum.
    dep: Option<Dep>,
    timers: HashMap<u64, TimerAction>,
    next_timer: u64,
    /// All completed operations.
    pub completed: Vec<CompletedOp>,
    /// Aggregate statistics.
    pub stats: GryffClientStats,
}

impl GryffClient {
    /// Creates a client with the given configuration and workload.
    pub fn new(cfg: GryffClientConfig, workload: Box<dyn GryffWorkload>) -> Self {
        GryffClient {
            cfg,
            workload,
            ops: HashMap::new(),
            next_seq: 0,
            value_counter: 0,
            dep: None,
            timers: HashMap::new(),
            next_timer: 0,
            completed: Vec::new(),
            stats: GryffClientStats::default(),
        }
    }

    fn set_timer(&mut self, ctx: &mut Context<GryffMsg>, delay: SimDuration, action: TimerAction) {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(tag, action);
        ctx.set_timer(delay, tag);
    }

    fn fresh_value(&mut self, ctx: &Context<GryffMsg>) -> Value {
        self.value_counter += 1;
        Value(((ctx.node_id() as u64 + 1) << 40) | self.value_counter)
    }

    /// Takes the pending dependency for piggybacking (Gryff-RSC only).
    fn take_dep_for_piggyback(&mut self) -> Option<Dep> {
        if self.cfg.mode == Mode::GryffRsc {
            if self.dep.is_some() {
                self.stats.deps_piggybacked += 1;
            }
            self.dep
        } else {
            None
        }
    }

    fn start_op(&mut self, ctx: &mut Context<GryffMsg>, session: u64) {
        if ctx.now() >= self.cfg.stop_issuing_at {
            return;
        }
        let request = self.workload.next_op(ctx.rng());
        let seq = self.next_seq;
        self.next_seq += 1;
        let op_ref = OpRef { node: ctx.node_id(), seq };
        let mut op = ActiveOp {
            session,
            request: request.clone(),
            invoke: ctx.now(),
            phase: OpPhase::ReadRound,
            replies: 0,
            max: (Carstamp::ZERO, Value::NULL),
            disagreement: false,
            write_value: Value::NULL,
            chosen: Carstamp::ZERO,
            carried_dep: false,
            rounds: 1,
        };
        match request {
            OpRequest::Read { key } => {
                let dep = self.take_dep_for_piggyback();
                op.carried_dep = dep.is_some();
                op.phase = OpPhase::ReadRound;
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Read1 { op: op_ref, key, dep });
                }
            }
            OpRequest::Write { key } => {
                let dep = self.take_dep_for_piggyback();
                op.carried_dep = dep.is_some();
                op.write_value = self.fresh_value(ctx);
                op.phase = OpPhase::WriteRound1;
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write1 { op: op_ref, key, dep });
                }
            }
            OpRequest::Rmw { key } => {
                let dep = self.take_dep_for_piggyback();
                op.carried_dep = dep.is_some();
                op.write_value = self.fresh_value(ctx);
                op.phase = OpPhase::RmwWait;
                let coordinator =
                    self.cfg.replicas[(key.0 % self.cfg.replicas.len() as u64) as usize];
                ctx.send(
                    coordinator,
                    GryffMsg::Rmw { op: op_ref, key, new_value: op.write_value, dep },
                );
            }
            OpRequest::Fence => {
                match (self.cfg.mode, self.dep) {
                    (Mode::GryffRsc, Some(d)) => {
                        // Write the pending observation back to a quorum so
                        // every future read observes it.
                        op.phase = OpPhase::FenceRound;
                        op.max = (d.cs, d.value);
                        for &r in &self.cfg.replicas {
                            ctx.send(
                                r,
                                GryffMsg::Write2 {
                                    op: op_ref,
                                    key: d.key,
                                    value: d.value,
                                    cs: d.cs,
                                },
                            );
                        }
                    }
                    _ => {
                        // Nothing to propagate (or already linearizable):
                        // complete immediately.
                        self.stats.fences += 1;
                        self.completed.push(CompletedOp {
                            kind: OpRequest::Fence,
                            read_value: Value::NULL,
                            written_value: Value::NULL,
                            carstamp: Carstamp::ZERO,
                            invoke: ctx.now(),
                            finish: ctx.now(),
                            rounds: 0,
                            session,
                        });
                        self.schedule_next(ctx, session);
                        return;
                    }
                }
            }
        }
        self.ops.insert(seq, op);
    }

    fn schedule_next(&mut self, ctx: &mut Context<GryffMsg>, session: u64) {
        let think = self.cfg.think_time;
        self.set_timer(ctx, think, TimerAction::StartOp { session });
    }

    fn finish_op(
        &mut self,
        ctx: &mut Context<GryffMsg>,
        seq: u64,
        read_value: Value,
        carstamp: Carstamp,
    ) {
        let op = self.ops.remove(&seq).expect("operation exists");
        match op.request {
            OpRequest::Read { .. } => {
                self.stats.reads += 1;
                if op.rounds > 1 {
                    self.stats.slow_reads += 1;
                }
            }
            OpRequest::Write { .. } => self.stats.writes += 1,
            OpRequest::Rmw { .. } => self.stats.rmws += 1,
            OpRequest::Fence => self.stats.fences += 1,
        }
        self.completed.push(CompletedOp {
            kind: op.request.clone(),
            read_value,
            written_value: op.write_value,
            carstamp,
            invoke: op.invoke,
            finish: ctx.now(),
            rounds: op.rounds,
            session: op.session,
        });
        self.schedule_next(ctx, op.session);
    }
}

impl regular_sim::engine::Node<GryffMsg> for GryffClient {
    fn on_start(&mut self, ctx: &mut Context<GryffMsg>) {
        for session in 0..self.cfg.sessions as u64 {
            let jitter = SimDuration::from_micros(ctx.rng().gen_range(0..1_000));
            self.set_timer(ctx, jitter, TimerAction::StartOp { session });
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<GryffMsg>, tag: u64) {
        let Some(TimerAction::StartOp { session }) = self.timers.remove(&tag) else { return };
        self.start_op(ctx, session);
    }

    fn on_message(&mut self, ctx: &mut Context<GryffMsg>, _from: NodeId, msg: GryffMsg) {
        match msg {
            GryffMsg::Read1Reply { op, value, cs } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                if active.phase != OpPhase::ReadRound {
                    return;
                }
                active.replies += 1;
                if active.replies == 1 {
                    active.max = (cs, value);
                } else {
                    if cs != active.max.0 {
                        active.disagreement = true;
                    }
                    if (cs, value) > active.max {
                        active.max = (cs, value);
                    }
                }
                if active.replies < self.cfg.quorum {
                    return;
                }
                // Quorum reached: the piggybacked dependency (if any) is now at
                // a quorum and can be cleared.
                let key = match active.request {
                    OpRequest::Read { key } => key,
                    _ => return,
                };
                let (cs, value) = active.max;
                let disagreement = active.disagreement;
                if active.carried_dep {
                    self.dep = None;
                }
                match self.cfg.mode {
                    Mode::Gryff => {
                        if disagreement {
                            // Write-back phase: propagate the newest value
                            // before returning (linearizability).
                            let active = self.ops.get_mut(&seq).expect("operation exists");
                            active.phase = OpPhase::ReadWriteBack;
                            active.replies = 0;
                            active.rounds = 2;
                            let op_ref = OpRef { node: ctx.node_id(), seq };
                            for &r in &self.cfg.replicas {
                                ctx.send(r, GryffMsg::Write2 { op: op_ref, key, value, cs });
                            }
                        } else {
                            self.finish_op(ctx, seq, value, cs);
                        }
                    }
                    Mode::GryffRsc => {
                        if disagreement {
                            // Remember the observation as a dependency for the
                            // next operation instead of writing it back now.
                            self.dep = Some(Dep { key, value, cs });
                        }
                        self.finish_op(ctx, seq, value, cs);
                    }
                }
            }
            GryffMsg::Write2Reply { op } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                match active.phase {
                    OpPhase::ReadWriteBack => {
                        active.replies += 1;
                        if active.replies >= self.cfg.quorum {
                            let (cs, value) = active.max;
                            self.finish_op(ctx, seq, value, cs);
                        }
                    }
                    OpPhase::WriteRound2 => {
                        active.replies += 1;
                        if active.replies >= self.cfg.quorum {
                            let cs = active.chosen;
                            self.finish_op(ctx, seq, Value::NULL, cs);
                        }
                    }
                    OpPhase::FenceRound => {
                        active.replies += 1;
                        if active.replies >= self.cfg.quorum {
                            // The dependency is now at a quorum.
                            self.dep = None;
                            let cs = active.max.0;
                            self.finish_op(ctx, seq, Value::NULL, cs);
                        }
                    }
                    _ => {}
                }
            }
            GryffMsg::Write1Reply { op, cs } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                if active.phase != OpPhase::WriteRound1 {
                    return;
                }
                active.replies += 1;
                if cs > active.max.0 {
                    active.max.0 = cs;
                }
                if active.replies < self.cfg.quorum {
                    return;
                }
                // The piggybacked dependency (if any) is now at a quorum.
                if active.carried_dep {
                    self.dep = None;
                }
                let key = match active.request {
                    OpRequest::Write { key } => key,
                    _ => return,
                };
                let active = self.ops.get_mut(&seq).expect("operation exists");
                // The carstamp writer id must be unique per session (sessions
                // on one client node issue writes concurrently and could
                // otherwise collide on the same count).
                let writer = ctx.node_id() as u64 * 1_000 + active.session;
                active.chosen = active.max.0.next(writer);
                active.phase = OpPhase::WriteRound2;
                active.replies = 0;
                active.rounds = 2;
                let op_ref = OpRef { node: ctx.node_id(), seq };
                let (value, cs) = (active.write_value, active.chosen);
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write2 { op: op_ref, key, value, cs });
                }
            }
            GryffMsg::RmwReply { op, old_value, cs } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                if active.phase != OpPhase::RmwWait {
                    return;
                }
                // The dependency travelled with the rmw and is now at a quorum
                // (the coordinator's read phase carried it).
                if active.carried_dep {
                    self.dep = None;
                }
                self.stats.deps_piggybacked += 0;
                self.finish_op(ctx, seq, old_value, cs);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regular_core::types::Key;

    #[test]
    fn fresh_values_are_unique_and_non_null() {
        // The value encoding must never collide with NULL and must be unique
        // per client.
        let v1 = Value(((7u64 + 1) << 40) | 1);
        let v2 = Value(((7u64 + 1) << 40) | 2);
        assert_ne!(v1, Value::NULL);
        assert_ne!(v1, v2);
    }

    #[test]
    fn completed_op_records_rounds() {
        let op = CompletedOp {
            kind: OpRequest::Read { key: Key(1) },
            read_value: Value(3),
            written_value: Value::NULL,
            carstamp: Carstamp { count: 1, writer: 2 },
            invoke: SimTime::from_millis(0),
            finish: SimTime::from_millis(72),
            rounds: 1,
            session: 0,
        };
        assert_eq!(op.rounds, 1);
        assert_eq!(op.finish.since(op.invoke), SimDuration::from_millis(72));
    }
}
