//! The Gryff / Gryff-RSC client protocol core: reads, writes,
//! read-modify-writes, and real-time fences.
//!
//! * **Reads** (baseline): a read phase against a quorum; if the quorum
//!   disagrees, a write-back phase propagates the newest value before the read
//!   returns (two round trips).
//! * **Reads** (Gryff-RSC): always one round trip; when the quorum disagrees
//!   the observed value becomes a *dependency* piggybacked on the client's
//!   next operation (Algorithm 3).
//! * **Writes**: carstamp collection then propagation (two round trips).
//! * **Read-modify-writes**: forwarded to the key's coordinator replica.
//! * **Fences** (Gryff-RSC): write back the pending dependency to a quorum so
//!   all future reads — by any client — observe it (Section 7.1).
//!
//! The core implements [`regular_session::Service`]: session arrival, pacing,
//! and batching live in the protocol-agnostic
//! [`regular_session::SessionRunner`]. Gryff is a non-transactional store, so
//! single-key transactions are served as plain operations and multi-key
//! transactions are rejected.

use std::collections::{HashMap, HashSet};

use regular_core::op::{OpKind, OpResult};
use regular_core::types::{ServiceId, Value};
use regular_session::{service_tag, CompletedRecord, LaneId, Service, SessionOp, WitnessHint};
use regular_sim::engine::{Context, NodeId};
use regular_sim::time::{SimDuration, SimTime};

use crate::carstamp::Carstamp;
use crate::config::Mode;
use crate::messages::{Dep, GryffMsg, OpRef};
use crate::workload::OpRequest;

/// Client configuration shared by all client nodes of a deployment.
#[derive(Debug, Clone)]
pub struct GryffClientConfig {
    /// Protocol variant.
    pub mode: Mode,
    /// Node ids of the replicas (0..num_replicas by construction).
    pub replicas: Vec<NodeId>,
    /// Majority quorum size.
    pub quorum: usize,
    /// Timeout after which a stalled operation's current round is re-sent
    /// (see [`crate::config::GryffConfig::op_timeout`]). `None` disables the
    /// retry path.
    pub op_timeout: Option<SimDuration>,
}

/// Aggregate client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GryffClientStats {
    /// Completed reads.
    pub reads: u64,
    /// Reads that needed the write-back (second) round.
    pub slow_reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Completed read-modify-writes.
    pub rmws: u64,
    /// Completed fences.
    pub fences: u64,
    /// Dependencies piggybacked onto later operations (Gryff-RSC).
    pub deps_piggybacked: u64,
    /// Rounds re-sent after an operation timeout (a crashed replica or a
    /// lost message; fault runs only).
    pub timeout_retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpPhase {
    ReadRound,
    ReadWriteBack,
    WriteRound1,
    WriteRound2,
    RmwWait,
    FenceRound,
}

#[derive(Debug)]
struct ActiveOp {
    lane: LaneId,
    request: OpRequest,
    invoke: SimTime,
    phase: OpPhase,
    /// Replicas that answered the current round. A set, not a counter:
    /// rounds may be re-sent after a timeout and messages may be duplicated
    /// by the fault plane, and a quorum must mean *distinct* replicas.
    replied: HashSet<NodeId>,
    /// Maximum (carstamp, value) observed in the current round.
    max: (Carstamp, Value),
    /// Whether the first-round quorum disagreed.
    disagreement: bool,
    /// Value to write (writes and rmws).
    write_value: Value,
    /// Carstamp chosen for the write.
    chosen: Carstamp,
    /// The dependency attached to *every* send of this operation's first
    /// round, if any. Tracking the value (not just a flag) keeps the
    /// quorum-time clearing of the node's pending dependency sound under
    /// round re-sends: the dependency is only cleared if it is still the
    /// pending one, i.e. a quorum of replicas demonstrably received it.
    carried: Option<Dep>,
    /// The write-back payload of a fence (the pending dependency), kept so a
    /// timed-out fence round can be re-sent.
    fence_write: Option<Dep>,
    rounds: u8,
}

/// The Gryff client protocol core (a [`regular_session::Service`]).
pub struct GryffService {
    cfg: GryffClientConfig,
    service: ServiceId,
    ops: HashMap<u64, ActiveOp>,
    next_seq: u64,
    value_counter: u64,
    /// Operation-timeout timers: tag -> watched sequence number.
    timers: HashMap<u64, u64>,
    next_timer: u64,
    /// The pending dependency (Gryff-RSC): the last read observation not yet
    /// known to be at a quorum. Shared by all of this node's sessions, as in
    /// the paper's per-process dependency.
    dep: Option<Dep>,
    completed: Vec<CompletedRecord>,
    /// Aggregate statistics.
    pub stats: GryffClientStats,
}

impl GryffService {
    /// Creates a client protocol core with the given configuration.
    pub fn new(cfg: GryffClientConfig) -> Self {
        GryffService {
            cfg,
            service: ServiceId::KV,
            ops: HashMap::new(),
            next_seq: 0,
            value_counter: 0,
            timers: HashMap::new(),
            next_timer: 0,
            dep: None,
            completed: Vec::new(),
            stats: GryffClientStats::default(),
        }
    }

    /// Sets the service id recorded on this core's operations (defaults to
    /// [`ServiceId::KV`]); composed deployments give each store its own id.
    pub fn with_service_id(mut self, service: ServiceId) -> Self {
        self.service = service;
        self
    }

    fn fresh_value(&mut self, ctx: &Context<GryffMsg>) -> Value {
        self.value_counter += 1;
        Value(((ctx.node_id() as u64 + 1) << 40) | self.value_counter)
    }

    /// The client core's behaviour-coverage phase tag (see
    /// `regular_sim::engine::Node::phase_tag`). Bit 7 marks the tag as a
    /// client's, keeping it disjoint from replica tags; bit 0 — operations
    /// in flight; bit 1 — an operation past its first round; bit 2 — an
    /// operation whose round was re-sent after a timeout; bit 3 — a pending
    /// dependency waiting to be piggybacked.
    pub fn phase_tag(&self) -> u16 {
        let mut tag = 1 << 7;
        if !self.ops.is_empty() {
            tag |= 1;
        }
        if self.ops.values().any(|o| o.phase != OpPhase::ReadRound) {
            tag |= 1 << 1;
        }
        if self.ops.values().any(|o| o.rounds > 1) {
            tag |= 1 << 2;
        }
        if self.dep.is_some() {
            tag |= 1 << 3;
        }
        tag
    }

    /// Takes the pending dependency for piggybacking (Gryff-RSC only).
    fn take_dep_for_piggyback(&mut self) -> Option<Dep> {
        if self.cfg.mode == Mode::GryffRsc {
            if self.dep.is_some() {
                self.stats.deps_piggybacked += 1;
            }
            self.dep
        } else {
            None
        }
    }

    /// Arms the operation timeout for `seq`, if configured.
    fn arm_op_timer(&mut self, ctx: &mut Context<GryffMsg>, seq: u64) {
        if let Some(timeout) = self.cfg.op_timeout {
            let tag = service_tag(&mut self.next_timer);
            self.timers.insert(tag, seq);
            ctx.set_timer(timeout, tag);
        }
    }

    /// Re-sends the current round of a stalled operation. Safe because every
    /// round is idempotent at the replicas under the same operation id
    /// (reads are point reads, `Write2` applies write-if-newer, rmw
    /// coordination dedups by client op) and quorum counting dedups by
    /// replica.
    fn resend_round(&mut self, ctx: &mut Context<GryffMsg>, seq: u64) {
        let dep = if self.cfg.mode == Mode::GryffRsc { self.dep } else { None };
        let Some(active) = self.ops.get_mut(&seq) else { return };
        // If the pending dependency changed since the original send, the
        // round's replies no longer all come from replicas that saw one
        // single dependency — stop claiming the quorum propagated it.
        if active.carried != dep {
            active.carried = None;
        }
        let active = &*active;
        self.stats.timeout_retries += 1;
        let op_ref = OpRef { node: ctx.node_id(), seq };
        match (active.phase, &active.request) {
            (OpPhase::ReadRound, OpRequest::Read { key }) => {
                let key = *key;
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Read1 { op: op_ref, key, dep });
                }
            }
            (OpPhase::WriteRound1, OpRequest::Write { key }) => {
                let key = *key;
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write1 { op: op_ref, key, dep });
                }
            }
            (OpPhase::WriteRound2, OpRequest::Write { key }) => {
                let (key, value, cs) = (*key, active.write_value, active.chosen);
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write2 { op: op_ref, key, value, cs });
                }
            }
            (OpPhase::ReadWriteBack, OpRequest::Read { key }) => {
                let (key, (cs, value)) = (*key, active.max);
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write2 { op: op_ref, key, value, cs });
                }
            }
            (OpPhase::RmwWait, OpRequest::Rmw { key }) => {
                let (key, new_value) = (*key, active.write_value);
                let coordinator =
                    self.cfg.replicas[(key.0 % self.cfg.replicas.len() as u64) as usize];
                ctx.send(coordinator, GryffMsg::Rmw { op: op_ref, key, new_value, dep });
            }
            (OpPhase::FenceRound, OpRequest::Fence) => {
                if let Some(d) = active.fence_write {
                    for &r in &self.cfg.replicas {
                        ctx.send(
                            r,
                            GryffMsg::Write2 { op: op_ref, key: d.key, value: d.value, cs: d.cs },
                        );
                    }
                }
            }
            _ => {}
        }
        self.arm_op_timer(ctx, seq);
    }

    /// The carstamp writer id: unique per concurrently writing lane.
    fn writer_id(&self, ctx: &Context<GryffMsg>, lane: LaneId) -> u64 {
        // Lanes of one node issue writes concurrently and must not collide on
        // the same carstamp count, so the id packs (node, session, slot) into
        // disjoint bit ranges. The asserts make an out-of-range configuration
        // fail loudly instead of silently corrupting the per-key write order.
        debug_assert!((lane.slot as u64) < (1 << 12), "pipeline slots fit in 12 bits");
        debug_assert!(lane.session < (1 << 28), "session ids fit in 28 bits");
        debug_assert!((ctx.node_id() as u64) < (1 << 24), "node ids fit in 24 bits");
        ((ctx.node_id() as u64) << 40) | (lane.session << 12) | lane.slot as u64
    }

    fn finish_op(
        &mut self,
        ctx: &mut Context<GryffMsg>,
        seq: u64,
        read_value: Value,
        carstamp: Carstamp,
    ) {
        let op = self.ops.remove(&seq).expect("operation exists");
        let (kind, result) = match op.request {
            OpRequest::Read { key } => {
                self.stats.reads += 1;
                if op.rounds > 1 {
                    self.stats.slow_reads += 1;
                }
                (OpKind::Read { key }, OpResult::Value(read_value))
            }
            OpRequest::Write { key } => {
                self.stats.writes += 1;
                (OpKind::Write { key, value: op.write_value }, OpResult::Ack)
            }
            OpRequest::Rmw { key } => {
                self.stats.rmws += 1;
                (OpKind::Rmw { key, value: op.write_value }, OpResult::Value(read_value))
            }
            OpRequest::Fence => {
                self.stats.fences += 1;
                (OpKind::Fence, OpResult::Ack)
            }
        };
        let witness = match kind {
            // Fences carry no per-key ordering metadata.
            OpKind::Fence => WitnessHint::None,
            _ => WitnessHint::Carstamp {
                count: carstamp.count,
                writer: carstamp.writer,
                rmwc: carstamp.rmwc,
            },
        };
        self.completed.push(CompletedRecord {
            service: self.service,
            kind,
            result,
            invoke: op.invoke,
            finish: ctx.now(),
            session: op.lane.session,
            slot: op.lane.slot,
            attempts: 1,
            rounds: op.rounds,
            orphan: false,
            witness,
        });
    }
}

impl Service for GryffService {
    type Msg = GryffMsg;

    fn service_id(&self) -> ServiceId {
        self.service
    }

    fn debug_inflight(&self) -> String {
        let mut ops: Vec<String> = self
            .ops
            .iter()
            .map(|(seq, op)| {
                format!(
                    "seq {} lane {}/{} phase {:?} rounds {} replied {} invoke {:?}",
                    seq,
                    op.lane.session,
                    op.lane.slot,
                    op.phase,
                    op.rounds,
                    op.replied.len(),
                    op.invoke
                )
            })
            .collect();
        ops.sort();
        format!("gryff active=[{}] timers={} dep={:?}", ops.join("; "), self.timers.len(), self.dep)
    }

    fn name(&self) -> &str {
        match self.cfg.mode {
            Mode::Gryff => "gryff",
            Mode::GryffRsc => "gryff-rsc",
        }
    }

    fn submit(&mut self, ctx: &mut Context<GryffMsg>, lane: LaneId, op: SessionOp) {
        let request = match op {
            SessionOp::Read { key } => OpRequest::Read { key },
            SessionOp::Write { key } => OpRequest::Write { key },
            SessionOp::Rmw { key } => OpRequest::Rmw { key },
            SessionOp::Fence => OpRequest::Fence,
            // A non-transactional store serves single-key transactions as
            // plain operations.
            SessionOp::RoTxn { keys } if keys.len() == 1 => OpRequest::Read { key: keys[0] },
            SessionOp::RwTxn { keys } if keys.len() == 1 => OpRequest::Write { key: keys[0] },
            SessionOp::RoTxn { .. } | SessionOp::RwTxn { .. } => {
                panic!("Gryff is non-transactional: multi-key transactions are unsupported")
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let op_ref = OpRef { node: ctx.node_id(), seq };
        let mut active = ActiveOp {
            lane,
            request: request.clone(),
            invoke: ctx.now(),
            phase: OpPhase::ReadRound,
            replied: HashSet::new(),
            max: (Carstamp::ZERO, Value::NULL),
            disagreement: false,
            write_value: Value::NULL,
            chosen: Carstamp::ZERO,
            carried: None,
            fence_write: None,
            rounds: 1,
        };
        match request {
            OpRequest::Read { key } => {
                let dep = self.take_dep_for_piggyback();
                active.carried = dep;
                active.phase = OpPhase::ReadRound;
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Read1 { op: op_ref, key, dep });
                }
            }
            OpRequest::Write { key } => {
                let dep = self.take_dep_for_piggyback();
                active.carried = dep;
                active.write_value = self.fresh_value(ctx);
                active.phase = OpPhase::WriteRound1;
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write1 { op: op_ref, key, dep });
                }
            }
            OpRequest::Rmw { key } => {
                let dep = self.take_dep_for_piggyback();
                active.carried = dep;
                active.write_value = self.fresh_value(ctx);
                active.phase = OpPhase::RmwWait;
                let coordinator =
                    self.cfg.replicas[(key.0 % self.cfg.replicas.len() as u64) as usize];
                ctx.send(
                    coordinator,
                    GryffMsg::Rmw { op: op_ref, key, new_value: active.write_value, dep },
                );
            }
            OpRequest::Fence => {
                match (self.cfg.mode, self.dep) {
                    (Mode::GryffRsc, Some(d)) => {
                        // Write the pending observation back to a quorum so
                        // every future read observes it.
                        active.phase = OpPhase::FenceRound;
                        active.max = (d.cs, d.value);
                        active.fence_write = Some(d);
                        for &r in &self.cfg.replicas {
                            ctx.send(
                                r,
                                GryffMsg::Write2 {
                                    op: op_ref,
                                    key: d.key,
                                    value: d.value,
                                    cs: d.cs,
                                },
                            );
                        }
                    }
                    _ => {
                        // Nothing to propagate (or already linearizable):
                        // complete immediately.
                        self.stats.fences += 1;
                        self.completed.push(CompletedRecord {
                            service: self.service,
                            kind: OpKind::Fence,
                            result: OpResult::Ack,
                            invoke: ctx.now(),
                            finish: ctx.now(),
                            session: lane.session,
                            slot: lane.slot,
                            attempts: 1,
                            rounds: 0,
                            orphan: false,
                            witness: WitnessHint::None,
                        });
                        return;
                    }
                }
            }
        }
        self.ops.insert(seq, active);
        self.arm_op_timer(ctx, seq);
    }

    fn on_timer(&mut self, ctx: &mut Context<GryffMsg>, tag: u64) {
        let Some(seq) = self.timers.remove(&tag) else { return };
        if self.ops.contains_key(&seq) {
            self.resend_round(ctx, seq);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, msg: GryffMsg) {
        match msg {
            GryffMsg::Read1Reply { op, value, cs } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                if active.phase != OpPhase::ReadRound || !active.replied.insert(from) {
                    return;
                }
                if active.replied.len() == 1 {
                    active.max = (cs, value);
                } else {
                    if cs != active.max.0 {
                        active.disagreement = true;
                    }
                    if (cs, value) > active.max {
                        active.max = (cs, value);
                    }
                }
                if active.replied.len() < self.cfg.quorum {
                    return;
                }
                // Quorum reached: the piggybacked dependency (if it is still
                // the pending one) is now at a quorum and can be cleared.
                let key = match active.request {
                    OpRequest::Read { key } => key,
                    _ => return,
                };
                let (cs, value) = active.max;
                let disagreement = active.disagreement;
                if active.carried.is_some() && self.dep == active.carried {
                    self.dep = None;
                }
                match self.cfg.mode {
                    Mode::Gryff => {
                        if disagreement {
                            // Write-back phase: propagate the newest value
                            // before returning (linearizability).
                            let active = self.ops.get_mut(&seq).expect("operation exists");
                            active.phase = OpPhase::ReadWriteBack;
                            active.replied.clear();
                            active.rounds = 2;
                            let op_ref = OpRef { node: ctx.node_id(), seq };
                            for &r in &self.cfg.replicas {
                                ctx.send(r, GryffMsg::Write2 { op: op_ref, key, value, cs });
                            }
                        } else {
                            self.finish_op(ctx, seq, value, cs);
                        }
                    }
                    Mode::GryffRsc => {
                        if disagreement {
                            // Remember the observation as a dependency for the
                            // next operation instead of writing it back now.
                            self.dep = Some(Dep { key, value, cs });
                        }
                        self.finish_op(ctx, seq, value, cs);
                    }
                }
            }
            GryffMsg::Write2Reply { op } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                let in_write2_round = matches!(
                    active.phase,
                    OpPhase::ReadWriteBack | OpPhase::WriteRound2 | OpPhase::FenceRound
                );
                if !in_write2_round
                    || !active.replied.insert(from)
                    || active.replied.len() < self.cfg.quorum
                {
                    return;
                }
                match active.phase {
                    OpPhase::ReadWriteBack => {
                        let (cs, value) = active.max;
                        self.finish_op(ctx, seq, value, cs);
                    }
                    OpPhase::WriteRound2 => {
                        let cs = active.chosen;
                        self.finish_op(ctx, seq, Value::NULL, cs);
                    }
                    OpPhase::FenceRound => {
                        // The written-back dependency is now at a quorum.
                        if self.dep == active.fence_write {
                            self.dep = None;
                        }
                        let cs = active.max.0;
                        self.finish_op(ctx, seq, Value::NULL, cs);
                    }
                    _ => unreachable!("filtered above"),
                }
            }
            GryffMsg::Write1Reply { op, cs } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                if active.phase != OpPhase::WriteRound1 || !active.replied.insert(from) {
                    return;
                }
                if cs > active.max.0 {
                    active.max.0 = cs;
                }
                if active.replied.len() < self.cfg.quorum {
                    return;
                }
                // The piggybacked dependency (if still pending) is now at a
                // quorum.
                if active.carried.is_some() && self.dep == active.carried {
                    self.dep = None;
                }
                let key = match active.request {
                    OpRequest::Write { key } => key,
                    _ => return,
                };
                let lane = self.ops[&seq].lane;
                let writer = self.writer_id(ctx, lane);
                let active = self.ops.get_mut(&seq).expect("operation exists");
                active.chosen = active.max.0.next(writer);
                active.phase = OpPhase::WriteRound2;
                active.replied.clear();
                active.rounds = 2;
                let op_ref = OpRef { node: ctx.node_id(), seq };
                let (value, cs) = (active.write_value, active.chosen);
                for &r in &self.cfg.replicas {
                    ctx.send(r, GryffMsg::Write2 { op: op_ref, key, value, cs });
                }
            }
            GryffMsg::RmwReply { op, old_value, cs } => {
                let seq = op.seq;
                let Some(active) = self.ops.get_mut(&seq) else { return };
                if active.phase != OpPhase::RmwWait {
                    return;
                }
                // The dependency travelled with the rmw and reached a quorum
                // through the coordinator's read phase.
                if active.carried.is_some() && self.dep == active.carried {
                    self.dep = None;
                }
                self.finish_op(ctx, seq, old_value, cs);
            }
            _ => {}
        }
    }

    fn drain_completed(&mut self) -> Vec<CompletedRecord> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regular_core::types::Key;
    use regular_sim::time::SimDuration;

    #[test]
    fn fresh_values_are_unique_and_non_null() {
        // The value encoding must never collide with NULL and must be unique
        // per client.
        let v1 = Value(((7u64 + 1) << 40) | 1);
        let v2 = Value(((7u64 + 1) << 40) | 2);
        assert_ne!(v1, Value::NULL);
        assert_ne!(v1, v2);
    }

    #[test]
    fn completed_record_keeps_rounds_and_carstamps() {
        let rec = CompletedRecord {
            service: ServiceId::KV,
            kind: OpKind::Read { key: Key(1) },
            result: OpResult::Value(Value(3)),
            invoke: SimTime::from_millis(0),
            finish: SimTime::from_millis(72),
            session: 0,
            slot: 0,
            attempts: 1,
            rounds: 1,
            orphan: false,
            witness: WitnessHint::Carstamp { count: 1, writer: 2, rmwc: 0 },
        };
        assert_eq!(rec.rounds, 1);
        assert_eq!(rec.latency(), SimDuration::from_millis(72));
        assert!(matches!(rec.witness, WitnessHint::Carstamp { count: 1, writer: 2, rmwc: 0 }));
    }
}
