//! Carstamps: Gryff's consensus-after-register timestamps.
//!
//! Every write and read-modify-write is tagged with a carstamp denoting its
//! position in the per-key total order; reads adopt the carstamp of the value
//! they return. Carstamps are totally ordered, and a writer picks one strictly
//! larger than every carstamp reported by its first-phase quorum, which is the
//! property the correctness argument (Appendix D.2, Lemma D.6 onward) builds
//! on.

use serde::{Deserialize, Serialize};

/// A carstamp: a logical count plus the writer's identifier for tie-breaking.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Carstamp {
    /// Logical counter (dominant component).
    pub count: u64,
    /// Identifier of the writer (client node or rmw coordinator).
    pub writer: u64,
}

impl Carstamp {
    /// The carstamp of the initial (absent) value.
    pub const ZERO: Carstamp = Carstamp { count: 0, writer: 0 };

    /// A carstamp strictly larger than `self`, owned by `writer`.
    pub fn next(self, writer: u64) -> Carstamp {
        Carstamp { count: self.count + 1, writer }
    }

    /// True for the initial carstamp.
    pub fn is_zero(self) -> bool {
        self == Carstamp::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_count_then_writer() {
        let a = Carstamp { count: 1, writer: 5 };
        let b = Carstamp { count: 2, writer: 1 };
        let c = Carstamp { count: 2, writer: 3 };
        assert!(a < b);
        assert!(b < c);
        assert!(Carstamp::ZERO < a);
    }

    #[test]
    fn next_is_strictly_larger() {
        let a = Carstamp { count: 7, writer: 2 };
        let n = a.next(9);
        assert!(n > a);
        assert_eq!(n.count, 8);
        assert_eq!(n.writer, 9);
        assert!(!n.is_zero());
        assert!(Carstamp::ZERO.is_zero());
    }
}
