//! Carstamps: Gryff's consensus-after-register timestamps.
//!
//! Every write and read-modify-write is tagged with a carstamp denoting its
//! position in the per-key total order; reads adopt the carstamp of the value
//! they return. Carstamps are totally ordered, and a writer picks one strictly
//! larger than every carstamp reported by its first-phase quorum, which is the
//! property the correctness argument (Appendix D.2, Lemma D.6 onward) builds
//! on.
//!
//! Like Gryff's, a carstamp has **three** components `(count, writer, rmwc)`:
//! base writes advance `count` (resetting `rmwc`), while read-modify-writes
//! extend the base value they observed by advancing only `rmwc`. The third
//! component is load-bearing, not cosmetic: if rmws advanced `count` instead,
//! a base write racing an rmw could pick the same `count` and lose the
//! writer tie-break, leaving an update that no later operation observes even
//! after it completed — an execution with *no* legal serialization. (A
//! 256-seed conformance sweep of the composed fault scenario caught exactly
//! that anomaly against a two-component simplification; see
//! `spec_violation` artifacts from `conformance_sweep` for what it looks
//! like.) With `rmwc`, a concurrent base write always orders above the rmw
//! chain it raced, exactly as in Gryff.

use serde::{Deserialize, Serialize};

/// A carstamp: a logical count, the writer's identifier for tie-breaking,
/// and the read-modify-write counter extending a base value.
///
/// Ordering is lexicographic over `(count, writer, rmwc)` — the field order
/// of the struct.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Carstamp {
    /// Logical counter (dominant component), advanced by base writes.
    pub count: u64,
    /// Identifier of the writer of the base value, breaking counter ties.
    pub writer: u64,
    /// Number of read-modify-writes applied on top of the base value.
    pub rmwc: u64,
}

impl Carstamp {
    /// The carstamp of the initial (absent) value.
    pub const ZERO: Carstamp = Carstamp { count: 0, writer: 0, rmwc: 0 };

    /// The carstamp of a base write over `self`: strictly larger than `self`
    /// (and than every rmw applied to it), owned by `writer`.
    pub fn next(self, writer: u64) -> Carstamp {
        Carstamp { count: self.count + 1, writer, rmwc: 0 }
    }

    /// The carstamp of a read-modify-write applied to the value at `self`:
    /// strictly larger than `self` but still below any later base write.
    pub fn next_rmw(self) -> Carstamp {
        Carstamp { rmwc: self.rmwc + 1, ..self }
    }

    /// True for the initial carstamp.
    pub fn is_zero(self) -> bool {
        self == Carstamp::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_count_then_writer_then_rmwc() {
        let a = Carstamp { count: 1, writer: 5, rmwc: 0 };
        let b = Carstamp { count: 2, writer: 1, rmwc: 0 };
        let c = Carstamp { count: 2, writer: 3, rmwc: 0 };
        let d = Carstamp { count: 2, writer: 3, rmwc: 4 };
        assert!(a < b);
        assert!(b < c);
        assert!(c < d);
        assert!(Carstamp::ZERO < a);
    }

    #[test]
    fn next_is_strictly_larger() {
        let a = Carstamp { count: 7, writer: 2, rmwc: 3 };
        let n = a.next(9);
        assert!(n > a);
        assert_eq!(n.count, 8);
        assert_eq!(n.writer, 9);
        assert_eq!(n.rmwc, 0, "a base write resets the rmw counter");
        assert!(!n.is_zero());
        assert!(Carstamp::ZERO.is_zero());
    }

    #[test]
    fn rmws_extend_the_base_below_the_next_write() {
        let base = Carstamp { count: 3, writer: 7, rmwc: 0 };
        let r1 = base.next_rmw();
        let r2 = r1.next_rmw();
        assert!(base < r1 && r1 < r2);
        assert_eq!((r2.count, r2.writer, r2.rmwc), (3, 7, 2));
        // The property that makes racing writes safe: ANY later base write —
        // even one whose writer id loses the tie-break to the base — orders
        // above the whole rmw chain, so a completed write can never be
        // serialized underneath an rmw that did not observe it.
        let racing_write = base.next(1);
        assert!(racing_write > r2);
    }
}
