//! WAL records and snapshot codec for a durable Gryff replica.
//!
//! Under `Durability::Wal` a replica logs every durable state transition —
//! register applies, rmw coordination steps — and checkpoints serialize the
//! full durable state through the same helpers. Crash recovery replays
//! snapshot + records; nothing else survives. Encodings are hand-rolled
//! little-endian (the vendored `serde` is derive-only) via
//! [`regular_storage::codec`].

use regular_core::types::{Key, Value};
use regular_sim::engine::NodeId;
use regular_storage::codec::{Dec, Enc};
use regular_storage::device::NodeDisk;
use regular_storage::wal::Wal;
use regular_storage::MemDisk;

use crate::carstamp::Carstamp;
use crate::messages::OpRef;

/// One durable state transition at a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GryffRecord {
    /// A register advanced to `(value, cs)` (write-if-newer already held).
    Apply { key: Key, value: Value, cs: Carstamp },
    /// This replica started coordinating a read-modify-write.
    RmwBegin { internal: u64, client: NodeId, client_op: OpRef, key: Key, new_value: Value },
    /// The read phase completed: the base value and the chosen carstamp are
    /// fixed. Recovery must resume in the write phase with the same
    /// carstamp — re-running the read phase after some replicas already
    /// applied `Write2` could install the rmw twice at different positions.
    RmwChosen { internal: u64, old_value: Value, cs: Carstamp },
    /// The write quorum completed: the rmw is decided and enters the
    /// at-most-once table.
    RmwFinish { internal: u64, client_op: OpRef, key: Key, old_value: Value, cs: Carstamp },
}

const T_APPLY: u8 = 1;
const T_RMW_BEGIN: u8 = 2;
const T_RMW_CHOSEN: u8 = 3;
const T_RMW_FINISH: u8 = 4;

fn enc_cs(e: &mut Enc, cs: Carstamp) {
    e.u64(cs.count).u64(cs.writer).u64(cs.rmwc);
}

fn dec_cs(d: &mut Dec) -> Option<Carstamp> {
    Some(Carstamp { count: d.u64()?, writer: d.u64()?, rmwc: d.u64()? })
}

fn enc_op(e: &mut Enc, op: OpRef) {
    e.u64(op.node as u64).u64(op.seq);
}

fn dec_op(d: &mut Dec) -> Option<OpRef> {
    Some(OpRef { node: d.u64()? as NodeId, seq: d.u64()? })
}

impl GryffRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            GryffRecord::Apply { key, value, cs } => {
                e.u8(T_APPLY);
                e.u64(key.0).u64(value.0);
                enc_cs(&mut e, *cs);
            }
            GryffRecord::RmwBegin { internal, client, client_op, key, new_value } => {
                e.u8(T_RMW_BEGIN);
                e.u64(*internal).u64(*client as u64);
                enc_op(&mut e, *client_op);
                e.u64(key.0).u64(new_value.0);
            }
            GryffRecord::RmwChosen { internal, old_value, cs } => {
                e.u8(T_RMW_CHOSEN);
                e.u64(*internal).u64(old_value.0);
                enc_cs(&mut e, *cs);
            }
            GryffRecord::RmwFinish { internal, client_op, key, old_value, cs } => {
                e.u8(T_RMW_FINISH);
                e.u64(*internal);
                enc_op(&mut e, *client_op);
                e.u64(key.0).u64(old_value.0);
                enc_cs(&mut e, *cs);
            }
        }
        e.finish()
    }

    pub fn decode(bytes: &[u8]) -> Option<GryffRecord> {
        let mut d = Dec::new(bytes);
        let rec = match d.u8()? {
            T_APPLY => GryffRecord::Apply {
                key: Key(d.u64()?),
                value: Value(d.u64()?),
                cs: dec_cs(&mut d)?,
            },
            T_RMW_BEGIN => GryffRecord::RmwBegin {
                internal: d.u64()?,
                client: d.u64()? as NodeId,
                client_op: dec_op(&mut d)?,
                key: Key(d.u64()?),
                new_value: Value(d.u64()?),
            },
            T_RMW_CHOSEN => GryffRecord::RmwChosen {
                internal: d.u64()?,
                old_value: Value(d.u64()?),
                cs: dec_cs(&mut d)?,
            },
            T_RMW_FINISH => GryffRecord::RmwFinish {
                internal: d.u64()?,
                client_op: dec_op(&mut d)?,
                key: Key(d.u64()?),
                old_value: Value(d.u64()?),
                cs: dec_cs(&mut d)?,
            },
            _ => return None,
        };
        if !d.is_empty() {
            return None;
        }
        Some(rec)
    }
}

/// Offline reconstruction of a replica's registers from its device — the
/// differential anchor durability tests pin against the live replica's final
/// state. Replays the checkpoint snapshot, then every surviving `Apply`
/// record under the write-if-newer rule.
pub fn replay_registers(disk: MemDisk) -> Vec<(Key, Value, Carstamp)> {
    let mut node_disk = NodeDisk::Mem(disk);
    let log = Wal::read_log(&mut node_disk);
    let mut registers: Vec<(Key, Value, Carstamp)> = Vec::new();
    let mut apply = |key: Key, value: Value, cs: Carstamp| match registers
        .iter_mut()
        .find(|(k, _, _)| *k == key)
    {
        Some(slot) => {
            if cs > slot.2 {
                slot.1 = value;
                slot.2 = cs;
            }
        }
        None => registers.push((key, value, cs)),
    };
    if let Some(snapshot) = &log.snapshot {
        if let Some(snap) = GryffSnapshot::decode(snapshot) {
            for (key, value, cs) in snap.store {
                apply(key, value, cs);
            }
        }
    }
    for bytes in &log.records {
        if let Some(GryffRecord::Apply { key, value, cs }) = GryffRecord::decode(bytes) {
            apply(key, value, cs);
        }
    }
    registers.sort_unstable_by_key(|(k, _, _)| k.0);
    registers
}

/// An in-flight rmw coordination as serialized into a checkpoint snapshot.
/// The `replied` set is volatile (recovery re-collects a quorum by
/// re-driving the round) and is not stored.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct SnapRmw {
    pub internal: u64,
    pub client: NodeId,
    pub client_op: OpRef,
    pub key: Key,
    pub new_value: Value,
    /// 0 = read phase, 1 = write phase.
    pub phase: u8,
    pub max_value: Value,
    pub max_cs: Carstamp,
    pub chosen: Carstamp,
}

/// The full durable state of a replica at checkpoint time.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct GryffSnapshot {
    pub store: Vec<(Key, Value, Carstamp)>,
    pub rmws: Vec<SnapRmw>,
    pub next_internal: u64,
    pub finished: Vec<(OpRef, Value, Carstamp)>,
}

const SNAPSHOT_VERSION: u32 = 1;

impl GryffSnapshot {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(SNAPSHOT_VERSION);
        e.u32(self.store.len() as u32);
        for (key, value, cs) in &self.store {
            e.u64(key.0).u64(value.0);
            enc_cs(&mut e, *cs);
        }
        e.u32(self.rmws.len() as u32);
        for r in &self.rmws {
            e.u64(r.internal).u64(r.client as u64);
            enc_op(&mut e, r.client_op);
            e.u64(r.key.0).u64(r.new_value.0).u8(r.phase).u64(r.max_value.0);
            enc_cs(&mut e, r.max_cs);
            enc_cs(&mut e, r.chosen);
        }
        e.u64(self.next_internal);
        e.u32(self.finished.len() as u32);
        for (op, value, cs) in &self.finished {
            enc_op(&mut e, *op);
            e.u64(value.0);
            enc_cs(&mut e, *cs);
        }
        e.finish()
    }

    pub fn decode(bytes: &[u8]) -> Option<GryffSnapshot> {
        let mut d = Dec::new(bytes);
        if d.u32()? != SNAPSHOT_VERSION {
            return None;
        }
        let n = d.u32()? as usize;
        let mut store = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            store.push((Key(d.u64()?), Value(d.u64()?), dec_cs(&mut d)?));
        }
        let n = d.u32()? as usize;
        let mut rmws = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            rmws.push(SnapRmw {
                internal: d.u64()?,
                client: d.u64()? as NodeId,
                client_op: dec_op(&mut d)?,
                key: Key(d.u64()?),
                new_value: Value(d.u64()?),
                phase: d.u8()?,
                max_value: Value(d.u64()?),
                max_cs: dec_cs(&mut d)?,
                chosen: dec_cs(&mut d)?,
            });
        }
        let next_internal = d.u64()?;
        let n = d.u32()? as usize;
        let mut finished = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            finished.push((dec_op(&mut d)?, Value(d.u64()?), dec_cs(&mut d)?));
        }
        Some(GryffSnapshot { store, rmws, next_internal, finished })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(count: u64, writer: u64, rmwc: u64) -> Carstamp {
        Carstamp { count, writer, rmwc }
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            GryffRecord::Apply { key: Key(3), value: Value(30), cs: cs(2, 1, 0) },
            GryffRecord::RmwBegin {
                internal: 7,
                client: 9,
                client_op: OpRef { node: 9, seq: 4 },
                key: Key(3),
                new_value: Value(31),
            },
            GryffRecord::RmwChosen { internal: 7, old_value: Value(30), cs: cs(2, 1, 1) },
            GryffRecord::RmwFinish {
                internal: 7,
                client_op: OpRef { node: 9, seq: 4 },
                key: Key(3),
                old_value: Value(30),
                cs: cs(2, 1, 1),
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(GryffRecord::decode(&bytes), Some(rec.clone()), "round trip {rec:?}");
            for cut in 0..bytes.len() {
                assert_eq!(GryffRecord::decode(&bytes[..cut]), None, "truncated {rec:?} at {cut}");
            }
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = GryffSnapshot {
            store: vec![(Key(1), Value(10), cs(3, 2, 0)), (Key(2), Value(20), cs(1, 0, 4))],
            rmws: vec![SnapRmw {
                internal: 5,
                client: 8,
                client_op: OpRef { node: 8, seq: 2 },
                key: Key(1),
                new_value: Value(11),
                phase: 1,
                max_value: Value(10),
                max_cs: cs(3, 2, 0),
                chosen: cs(3, 2, 1),
            }],
            next_internal: 6,
            finished: vec![(OpRef { node: 8, seq: 1 }, Value(9), cs(3, 2, 0))],
        };
        let bytes = snap.encode();
        let back = GryffSnapshot::decode(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(GryffSnapshot::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn offline_replay_applies_write_if_newer() {
        use regular_storage::{StorageRegistry, WalOptions};
        let registry = StorageRegistry::new();
        let (mut wal, _) = Wal::open(&WalOptions::mem(registry.clone()), "replica-x");
        wal.append(
            &GryffRecord::Apply { key: Key(1), value: Value(10), cs: cs(2, 0, 0) }.encode(),
            0,
        );
        // An older carstamp arriving later must not win.
        wal.append(
            &GryffRecord::Apply { key: Key(1), value: Value(5), cs: cs(1, 9, 0) }.encode(),
            0,
        );
        wal.append(
            &GryffRecord::Apply { key: Key(2), value: Value(20), cs: cs(1, 1, 0) }.encode(),
            0,
        );
        wal.sync();
        let regs = replay_registers(registry.disk("replica-x"));
        assert_eq!(regs, vec![(Key(1), Value(10), cs(2, 0, 0)), (Key(2), Value(20), cs(1, 1, 0))]);
    }
}
