//! Wire messages of the simulated Gryff / Gryff-RSC protocols.

use regular_core::types::{Key, Value};
use regular_sim::engine::NodeId;

use crate::carstamp::Carstamp;

/// Identifier of an operation: the issuing node (client, or rmw coordinator
/// for its internal phases) and a per-node sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpRef {
    /// Issuing node.
    pub node: NodeId,
    /// Per-node sequence number.
    pub seq: u64,
}

/// A read observation that still needs to reach a quorum: the causal
/// dependency Gryff-RSC piggybacks on the client's next operation
/// (Algorithms 3–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Key of the observed value.
    pub key: Key,
    /// The observed value.
    pub value: Value,
    /// Its carstamp.
    pub cs: Carstamp,
}

/// Messages exchanged between clients and replicas (and among replicas for
/// read-modify-writes).
#[derive(Debug, Clone, PartialEq)]
pub enum GryffMsg {
    /// Read phase of a client read.
    Read1 {
        /// Operation reference.
        op: OpRef,
        /// Key being read.
        key: Key,
        /// Piggybacked dependency (Gryff-RSC only).
        dep: Option<Dep>,
    },
    /// Reply to [`GryffMsg::Read1`].
    Read1Reply {
        /// Operation reference.
        op: OpRef,
        /// Current value at the replica.
        value: Value,
        /// Its carstamp.
        cs: Carstamp,
    },
    /// First phase of a write: collect carstamps.
    Write1 {
        /// Operation reference.
        op: OpRef,
        /// Key being written.
        key: Key,
        /// Piggybacked dependency (Gryff-RSC only).
        dep: Option<Dep>,
    },
    /// Reply to [`GryffMsg::Write1`].
    Write1Reply {
        /// Operation reference.
        op: OpRef,
        /// The replica's current carstamp for the key.
        cs: Carstamp,
    },
    /// Second phase of a write (also used for the baseline read's write-back
    /// phase and for real-time fences): propagate a value and carstamp.
    Write2 {
        /// Operation reference.
        op: OpRef,
        /// Key being written.
        key: Key,
        /// Value to install.
        value: Value,
        /// Carstamp to install it at.
        cs: Carstamp,
    },
    /// Reply to [`GryffMsg::Write2`].
    Write2Reply {
        /// Operation reference.
        op: OpRef,
    },
    /// Client-to-coordinator read-modify-write request. The new value is
    /// chosen by the client (kept opaque here); the reply carries the prior
    /// value.
    Rmw {
        /// Operation reference (client side).
        op: OpRef,
        /// Key to modify.
        key: Key,
        /// New value to install.
        new_value: Value,
        /// Piggybacked dependency (Gryff-RSC only).
        dep: Option<Dep>,
    },
    /// Coordinator-to-client reply for a read-modify-write.
    RmwReply {
        /// Operation reference (client side).
        op: OpRef,
        /// The value the modification was applied to.
        old_value: Value,
        /// Carstamp of the installed new value.
        cs: Carstamp,
    },
}

impl GryffMsg {
    /// A stable small integer naming the message type, used as the message
    /// class of behaviour-coverage features
    /// (see `regular_sim::engine::Engine::install_coverage`).
    pub fn class(&self) -> u16 {
        match self {
            GryffMsg::Read1 { .. } => 0,
            GryffMsg::Read1Reply { .. } => 1,
            GryffMsg::Write1 { .. } => 2,
            GryffMsg::Write1Reply { .. } => 3,
            GryffMsg::Write2 { .. } => 4,
            GryffMsg::Write2Reply { .. } => 5,
            GryffMsg::Rmw { .. } => 6,
            GryffMsg::RmwReply { .. } => 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_ref_identity() {
        let a = OpRef { node: 1, seq: 2 };
        let b = OpRef { node: 1, seq: 2 };
        let c = OpRef { node: 1, seq: 3 };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn messages_clone() {
        let m = GryffMsg::Read1 {
            op: OpRef { node: 3, seq: 1 },
            key: Key(4),
            dep: Some(Dep {
                key: Key(4),
                value: Value(9),
                cs: Carstamp { count: 2, writer: 1, rmwc: 0 },
            }),
        };
        match m.clone() {
            GryffMsg::Read1 { dep: Some(d), .. } => assert_eq!(d.value, Value(9)),
            _ => panic!("clone changed the variant"),
        }
    }
}
