//! Deployment assembly, execution, and result extraction for Gryff/Gryff-RSC.
//!
//! Mirrors `regular_spanner::harness`: builds the replica and client nodes,
//! runs the simulation, and converts the recorded operations into latency
//! distributions, a [`regular_core::History`], and a serialization witness.
//! The witness is assembled from the per-key carstamp order plus each
//! session's process order, extended with the model's real-time constraints —
//! the relation `<ψ` of the paper's Appendix D.2 proof.

use std::collections::HashMap;

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness, WitnessModel, WitnessViolation};
use regular_core::history::History;
use regular_core::op::{OpKind, OpResult};
use regular_core::types::{OpId, ProcessId, ServiceId, Timestamp, Value};
use regular_sim::engine::{Context, Engine, EngineConfig, Node, NodeId};
use regular_sim::metrics::LatencyRecorder;
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};

use crate::carstamp::Carstamp;
use crate::client::{CompletedOp, GryffClient, GryffClientConfig, GryffClientStats};
use crate::config::{GryffConfig, Mode};
use crate::messages::GryffMsg;
use crate::replica::{GryffReplica, ReplicaStats};
use crate::workload::{GryffWorkload, OpRequest};

/// A node of the simulated deployment.
pub enum GryffNode {
    /// A storage replica.
    Replica(GryffReplica),
    /// A client node.
    Client(GryffClient),
}

impl Node<GryffMsg> for GryffNode {
    fn on_start(&mut self, ctx: &mut Context<GryffMsg>) {
        match self {
            GryffNode::Replica(r) => r.on_start(ctx),
            GryffNode::Client(c) => c.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, msg: GryffMsg) {
        match self {
            GryffNode::Replica(r) => r.on_message(ctx, from, msg),
            GryffNode::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<GryffMsg>, tag: u64) {
        match self {
            GryffNode::Replica(r) => r.on_timer(ctx, tag),
            GryffNode::Client(c) => c.on_timer(ctx, tag),
        }
    }
}

/// Specification of one client node.
pub struct GryffClientSpec {
    /// Region the client runs in.
    pub region: usize,
    /// Number of closed-loop sessions it drives.
    pub sessions: usize,
    /// Think time between operations.
    pub think_time: SimDuration,
    /// Workload generator.
    pub workload: Box<dyn GryffWorkload>,
}

/// Specification of a deployment run.
pub struct GryffClusterSpec {
    /// Protocol and topology configuration.
    pub config: GryffConfig,
    /// Network model.
    pub net: LatencyMatrix,
    /// Random seed.
    pub seed: u64,
    /// Client nodes.
    pub clients: Vec<GryffClientSpec>,
    /// Clients stop issuing new operations at this instant.
    pub stop_issuing_at: SimTime,
    /// Extra time to let in-flight operations drain.
    pub drain: SimDuration,
    /// Measurements only cover completions at or after this instant.
    pub measure_from: SimTime,
}

/// The outcome of a run.
pub struct GryffRunResult {
    /// Protocol variant that was run.
    pub mode: Mode,
    /// Read latencies (measurement window only).
    pub read_latencies: LatencyRecorder,
    /// Write latencies (measurement window only).
    pub write_latencies: LatencyRecorder,
    /// Read-modify-write latencies (measurement window only).
    pub rmw_latencies: LatencyRecorder,
    /// Completed operations per client node (all, including warm-up).
    pub completed: Vec<(NodeId, Vec<CompletedOp>)>,
    /// Aggregate throughput over the measurement window (op/s).
    pub throughput: f64,
    /// Aggregated client statistics.
    pub client_stats: GryffClientStats,
    /// Per-replica statistics.
    pub replica_stats: Vec<ReplicaStats>,
    /// Simulated completion time.
    pub finished_at: SimTime,
    /// Total messages delivered.
    pub messages: u64,
}

/// Builds and runs a deployment.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_gryff(spec: GryffClusterSpec) -> GryffRunResult {
    let GryffClusterSpec { config, net, seed, clients, stop_issuing_at, drain, measure_from } =
        spec;
    config.validate().expect("invalid Gryff configuration");
    let engine_cfg = EngineConfig {
        default_service_time: config.replica_service_time,
        max_time: stop_issuing_at + drain,
        truetime_epsilon: SimDuration::ZERO,
    };
    let mut engine: Engine<GryffMsg, GryffNode> = Engine::new(engine_cfg, net.clone(), seed);

    let mut replica_ids = Vec::new();
    for i in 0..config.num_replicas {
        let id = engine.add_node_with(
            GryffNode::Replica(GryffReplica::new(&config, i)),
            config.replica_regions[i],
            config.replica_service_time,
        );
        replica_ids.push(id);
    }
    let mut client_ids = Vec::new();
    for c in clients {
        let cfg = GryffClientConfig {
            mode: config.mode,
            replicas: replica_ids.clone(),
            quorum: config.quorum(),
            sessions: c.sessions,
            think_time: c.think_time,
            stop_issuing_at,
        };
        let id = engine.add_node_with(
            GryffNode::Client(GryffClient::new(cfg, c.workload)),
            c.region,
            config.client_service_time,
        );
        client_ids.push(id);
    }

    let finished_at = engine.run();

    let mut read = LatencyRecorder::new();
    let mut write = LatencyRecorder::new();
    let mut rmw = LatencyRecorder::new();
    let mut completed = Vec::new();
    let mut stats = GryffClientStats::default();
    let mut window_count = 0u64;
    for &id in &client_ids {
        if let GryffNode::Client(c) = engine.node(id) {
            for op in &c.completed {
                if op.finish >= measure_from {
                    let latency = op.finish.since(op.invoke);
                    match op.kind {
                        OpRequest::Read { .. } => read.record(latency),
                        OpRequest::Write { .. } => write.record(latency),
                        OpRequest::Rmw { .. } => rmw.record(latency),
                        OpRequest::Fence => {}
                    }
                    if op.finish < stop_issuing_at {
                        window_count += 1;
                    }
                }
            }
            stats.reads += c.stats.reads;
            stats.slow_reads += c.stats.slow_reads;
            stats.writes += c.stats.writes;
            stats.rmws += c.stats.rmws;
            stats.fences += c.stats.fences;
            stats.deps_piggybacked += c.stats.deps_piggybacked;
            completed.push((id, c.completed.clone()));
        }
    }
    let mut replica_stats = Vec::new();
    for &id in &replica_ids {
        if let GryffNode::Replica(r) = engine.node(id) {
            replica_stats.push(r.stats);
        }
    }
    let window = stop_issuing_at.since(measure_from).as_micros();
    let throughput =
        if window == 0 { 0.0 } else { window_count as f64 * 1_000_000.0 / window as f64 };
    GryffRunResult {
        mode: config.mode,
        read_latencies: read,
        write_latencies: write,
        rmw_latencies: rmw,
        completed,
        throughput,
        client_stats: stats,
        replica_stats,
        finished_at,
        messages: engine.delivered_messages(),
    }
}

/// Builds the history and the per-key/process-order constraint edges of a run.
pub fn build_history(result: &GryffRunResult) -> (History, Vec<(OpId, OpId)>) {
    let mut history = History::new();
    let mut process_of: HashMap<(NodeId, u64), ProcessId> = HashMap::new();
    // Per (key): list of (carstamp, rank, finish, op id) for chain edges.
    let mut per_key: HashMap<u64, Vec<(Carstamp, u8, u64, OpId)>> = HashMap::new();
    let mut per_process: HashMap<ProcessId, Vec<(u64, OpId)>> = HashMap::new();
    for (client, ops) in &result.completed {
        for op in ops {
            let next_pid = ProcessId((process_of.len() + 1) as u32);
            let pid = *process_of.entry((*client, op.session)).or_insert(next_pid);
            let (kind, opres, key, rank) = match op.kind {
                OpRequest::Read { key } => {
                    (OpKind::Read { key }, OpResult::Value(op.read_value), Some(key), 1)
                }
                OpRequest::Write { key } => {
                    (OpKind::Write { key, value: op.written_value }, OpResult::Ack, Some(key), 0)
                }
                OpRequest::Rmw { key } => (
                    OpKind::Rmw { key, value: op.written_value },
                    OpResult::Value(op.read_value),
                    Some(key),
                    0,
                ),
                OpRequest::Fence => (OpKind::Fence, OpResult::Ack, None, 0),
            };
            let id = history.add_complete(
                pid,
                ServiceId::KV,
                kind,
                Timestamp(op.invoke.as_micros()),
                Timestamp(op.finish.as_micros()),
                opres,
            );
            if let Some(k) = key {
                per_key.entry(k.0).or_default().push((
                    op.carstamp,
                    rank,
                    op.finish.as_micros(),
                    id,
                ));
            }
            per_process.entry(pid).or_default().push((op.invoke.as_micros(), id));
        }
    }
    let mut edges = Vec::new();
    for (_, mut items) in per_key {
        items.sort_unstable();
        for w in items.windows(2) {
            edges.push((w[0].3, w[1].3));
        }
    }
    for (_, mut items) in per_process {
        items.sort_unstable();
        for w in items.windows(2) {
            edges.push((w[0].1, w[1].1));
        }
    }
    (history, edges)
}

/// Verifies that a run satisfies its consistency model: linearizability for
/// the Gryff baseline, RSC for Gryff-RSC.
pub fn verify_run(result: &GryffRunResult) -> Result<(), GryffVerificationError> {
    let (history, edges) = build_history(result);
    let model = match result.mode {
        Mode::Gryff => WitnessModel::RealTime,
        Mode::GryffRsc => WitnessModel::Regular,
    };
    let witness = assemble_witness(&history, &edges, model)
        .map_err(|e| GryffVerificationError::Cyclic(e.unordered))?;
    check_witness(&history, &witness, model).map_err(GryffVerificationError::Witness)
}

/// Why verification failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GryffVerificationError {
    /// The combined ordering constraints are cyclic (no serialization exists).
    Cyclic(usize),
    /// The assembled witness was rejected by the certificate checker.
    Witness(WitnessViolation),
}

/// A convenience summary of a read latency distribution used by the Figure 7
/// harness.
pub fn read_value_summary(result: &GryffRunResult) -> (u64, u64) {
    let fast = result.client_stats.reads - result.client_stats.slow_reads;
    (fast, result.client_stats.slow_reads)
}

/// Helper asserting that every read observed a value that some write actually
/// wrote (or null), independent of the full witness check.
pub fn all_reads_explainable(result: &GryffRunResult) -> bool {
    let mut written: std::collections::HashSet<Value> = std::collections::HashSet::new();
    for (_, ops) in &result.completed {
        for op in ops {
            if !matches!(op.kind, OpRequest::Read { .. } | OpRequest::Fence) {
                written.insert(op.written_value);
            }
        }
    }
    result.completed.iter().all(|(_, ops)| {
        ops.iter().all(|op| {
            !matches!(op.kind, OpRequest::Read { .. })
                || op.read_value.is_null()
                || written.contains(&op.read_value)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ConflictWorkload;

    fn run(mode: Mode, seed: u64, write_ratio: f64, conflict: f64) -> GryffRunResult {
        let config = GryffConfig::wan(mode);
        let net = LatencyMatrix::gryff_wan();
        let clients = (0..5)
            .map(|i| GryffClientSpec {
                region: i % 5,
                sessions: 3,
                think_time: SimDuration::ZERO,
                workload: Box::new(ConflictWorkload::ycsb(write_ratio, conflict, i as u64))
                    as Box<dyn GryffWorkload>,
            })
            .collect();
        run_gryff(GryffClusterSpec {
            config,
            net,
            seed,
            clients,
            stop_issuing_at: SimTime::from_secs(30),
            drain: SimDuration::from_secs(10),
            measure_from: SimTime::from_secs(3),
        })
    }

    #[test]
    fn baseline_is_linearizable() {
        let result = run(Mode::Gryff, 1, 0.5, 0.5);
        assert!(result.client_stats.reads > 100);
        assert!(result.client_stats.writes > 100);
        assert!(all_reads_explainable(&result));
        verify_run(&result).expect("Gryff must be linearizable");
    }

    #[test]
    fn rsc_variant_satisfies_rsc() {
        let result = run(Mode::GryffRsc, 1, 0.5, 0.5);
        assert!(result.client_stats.reads > 100);
        assert!(all_reads_explainable(&result));
        verify_run(&result).expect("Gryff-RSC must satisfy RSC");
    }

    #[test]
    fn rsc_reads_always_take_one_round() {
        let result = run(Mode::GryffRsc, 3, 0.5, 0.5);
        assert_eq!(result.client_stats.slow_reads, 0, "Gryff-RSC reads never take a second round");
        assert!(result.client_stats.deps_piggybacked > 0, "dependencies should be exercised");
    }

    #[test]
    fn baseline_reads_sometimes_take_two_rounds_under_conflict() {
        let result = run(Mode::Gryff, 3, 0.5, 0.9);
        assert!(result.client_stats.slow_reads > 0, "high conflict should force write-backs");
        let mut slow = result.read_latencies.clone();
        // A two-round read from the worst-placed region exceeds 300 ms; the
        // maximum read latency should reflect the second round trip.
        assert!(slow.max().unwrap() > SimDuration::from_millis(200));
    }

    #[test]
    fn rsc_p99_read_latency_not_worse_than_baseline() {
        let baseline = run(Mode::Gryff, 5, 0.5, 0.25);
        let rsc = run(Mode::GryffRsc, 5, 0.5, 0.25);
        let mut b = baseline.read_latencies.clone();
        let mut r = rsc.read_latencies.clone();
        let pb = b.percentile(99.0).unwrap();
        let pr = r.percentile(99.0).unwrap();
        assert!(pr <= pb, "Gryff-RSC p99 read latency ({pr}) must not exceed Gryff's ({pb})");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run(Mode::GryffRsc, 9, 0.3, 0.1);
        let b = run(Mode::GryffRsc, 9, 0.3, 0.1);
        assert_eq!(a.client_stats.reads, b.client_stats.reads);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn rmws_are_atomic_on_dedicated_keys() {
        let config = GryffConfig::wan(Mode::Gryff);
        let net = LatencyMatrix::gryff_wan();
        let clients = (0..3)
            .map(|i| GryffClientSpec {
                region: i % 5,
                sessions: 2,
                think_time: SimDuration::ZERO,
                workload: Box::new(ConflictWorkload {
                    rmw_ratio: 1.0,
                    ..ConflictWorkload::ycsb(0.0, 0.0, i as u64)
                }) as Box<dyn GryffWorkload>,
            })
            .collect();
        let result = run_gryff(GryffClusterSpec {
            config,
            net,
            seed: 4,
            clients,
            stop_issuing_at: SimTime::from_secs(20),
            drain: SimDuration::from_secs(10),
            measure_from: SimTime::from_secs(2),
        });
        assert!(result.client_stats.rmws > 50);
        verify_run(&result).expect("rmw-only workload must be linearizable");
    }
}
