//! Deployment assembly, execution, and result extraction for Gryff/Gryff-RSC.
//!
//! Mirrors `regular_spanner::harness`: builds the replica and client nodes
//! ([`regular_session::SessionRunner`]s over the [`GryffService`] protocol
//! core), runs the simulation, and converts the recorded operations into
//! latency distributions, a [`regular_core::History`] (via the shared
//! [`regular_session::HistoryRecorder`]), and a serialization witness. The
//! witness is assembled from the per-key carstamp order plus each lane's
//! process order, extended with the model's real-time constraints — the
//! relation `<ψ` of the paper's Appendix D.2 proof.

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness, WitnessModel, WitnessViolation};
use regular_core::coverage::{domain, CoverageBuilder, CoverageSignature};
use regular_core::history::History;
use regular_core::op::OpKind;
use regular_core::types::{Key, OpId, Value};
use regular_session::{
    CompletedRecord, HistoryRecorder, SessionConfig, SessionRunner, SessionWorkload, WitnessHint,
};
use regular_sim::engine::{Context, Engine, EngineConfig, Node, NodeId};
use regular_sim::metrics::{LatencyRecorder, MessageStats};
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_storage::StorageSummary;

use crate::carstamp::Carstamp;
use crate::client::{GryffClientConfig, GryffClientStats, GryffService};
use crate::config::{GryffConfig, Mode};
use crate::messages::GryffMsg;
use crate::replica::{GryffReplica, ReplicaStats};

/// A client node: the protocol-agnostic session runner over the Gryff core.
pub type GryffClient = SessionRunner<GryffService>;

/// A node of the simulated deployment.
pub enum GryffNode {
    /// A storage replica.
    Replica(Box<GryffReplica>),
    /// A client node.
    Client(Box<GryffClient>),
}

impl Node<GryffMsg> for GryffNode {
    fn on_start(&mut self, ctx: &mut Context<GryffMsg>) {
        match self {
            GryffNode::Replica(r) => r.on_start(ctx),
            GryffNode::Client(c) => c.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<GryffMsg>, from: NodeId, msg: GryffMsg) {
        match self {
            GryffNode::Replica(r) => r.on_message(ctx, from, msg),
            GryffNode::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<GryffMsg>, tag: u64) {
        match self {
            GryffNode::Replica(r) => r.on_timer(ctx, tag),
            GryffNode::Client(c) => c.on_timer(ctx, tag),
        }
    }
    fn on_crash(&mut self, ctx: &mut Context<GryffMsg>) {
        match self {
            GryffNode::Replica(r) => r.on_crash(ctx),
            GryffNode::Client(c) => c.on_crash(ctx),
        }
    }
    fn on_recover(&mut self, ctx: &mut Context<GryffMsg>) {
        match self {
            GryffNode::Replica(r) => r.on_recover(ctx),
            GryffNode::Client(c) => c.on_recover(ctx),
        }
    }
    fn phase_tag(&self) -> u16 {
        match self {
            GryffNode::Replica(r) => r.phase_tag(),
            GryffNode::Client(c) => c.service.phase_tag(),
        }
    }
}

/// Specification of one client node.
pub struct GryffClientSpec {
    /// Region the client runs in.
    pub region: usize,
    /// Session arrival/pacing/batching model.
    pub sessions: SessionConfig,
    /// Workload generator.
    pub workload: Box<dyn SessionWorkload>,
}

/// Specification of a deployment run.
pub struct GryffClusterSpec {
    /// Protocol and topology configuration.
    pub config: GryffConfig,
    /// Network model.
    pub net: LatencyMatrix,
    /// Random seed.
    pub seed: u64,
    /// Client nodes.
    pub clients: Vec<GryffClientSpec>,
    /// Clients stop issuing new operations at this instant.
    pub stop_issuing_at: SimTime,
    /// Extra time to let in-flight operations drain.
    pub drain: SimDuration,
    /// Measurements only cover completions at or after this instant.
    pub measure_from: SimTime,
}

/// The outcome of a run.
pub struct GryffRunResult {
    /// Protocol variant that was run.
    pub mode: Mode,
    /// Read latencies (measurement window only).
    pub read_latencies: LatencyRecorder,
    /// Write latencies (measurement window only).
    pub write_latencies: LatencyRecorder,
    /// Read-modify-write latencies (measurement window only).
    pub rmw_latencies: LatencyRecorder,
    /// Completed operations per client node (all, including warm-up).
    pub completed: Vec<(NodeId, Vec<CompletedRecord>)>,
    /// Aggregate throughput over the measurement window (op/s).
    pub throughput: f64,
    /// Aggregated client statistics.
    pub client_stats: GryffClientStats,
    /// Per-replica statistics.
    pub replica_stats: Vec<ReplicaStats>,
    /// Simulated completion time.
    pub finished_at: SimTime,
    /// Total messages delivered.
    pub messages: u64,
    /// Full message counters, including the fault plane's drops, duplicates,
    /// and expirations.
    pub net_stats: MessageStats,
    /// Aggregated write-ahead-log counters across every replica (all zeroes
    /// under `Durability::InMemory`).
    pub storage: StorageSummary,
    /// Final register contents per replica, sorted by key: the differential
    /// anchor for durability tests.
    pub replica_registers: Vec<Vec<(Key, Value, Carstamp)>>,
    /// Behaviour-coverage signature of the run. `None` unless the run was
    /// started through [`run_gryff_with_coverage`] — plain runs skip the
    /// instrumentation entirely.
    pub coverage: Option<CoverageSignature>,
}

/// Builds the [`GryffClientConfig`] every client node of a deployment shares.
pub fn client_config(config: &GryffConfig, replicas: Vec<NodeId>) -> GryffClientConfig {
    GryffClientConfig {
        mode: config.mode,
        replicas,
        quorum: config.quorum(),
        op_timeout: config.op_timeout,
    }
}

/// Builds and runs a deployment.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_gryff(spec: GryffClusterSpec) -> GryffRunResult {
    run_gryff_inner(spec, false)
}

/// [`run_gryff`] with behaviour-coverage instrumentation: the engine records
/// `(message class, receiver phase tag)` pairs at every delivery, and the
/// result's `coverage` field carries the run's [`CoverageSignature`] —
/// message-phase pairs, expired classes, bucketed fault-plane pressure,
/// recovery activity, and storage (WAL) behaviour. This is the signal the
/// coverage-guided hunter (`regular-hunt`) ranks schedules by.
pub fn run_gryff_with_coverage(spec: GryffClusterSpec) -> GryffRunResult {
    run_gryff_inner(spec, true)
}

fn run_gryff_inner(spec: GryffClusterSpec, record_coverage: bool) -> GryffRunResult {
    let GryffClusterSpec { config, net, seed, clients, stop_issuing_at, drain, measure_from } =
        spec;
    config.validate().expect("invalid Gryff configuration");
    let engine_cfg = EngineConfig {
        default_service_time: config.replica_service_time,
        max_time: stop_issuing_at + drain,
        truetime_epsilon: SimDuration::ZERO,
        queue: config.queue_kind,
    };
    let mut engine: Engine<GryffMsg, GryffNode> = Engine::new(engine_cfg, net.clone(), seed);
    if !config.faults.is_empty() {
        engine.install_faults(config.faults.clone());
    }
    if record_coverage {
        engine.install_coverage(|m: &GryffMsg| m.class());
    }

    let mut replica_ids = Vec::new();
    for i in 0..config.num_replicas {
        let id = engine.add_node_with(
            GryffNode::Replica(Box::new(GryffReplica::new(&config, i))),
            config.replica_regions[i],
            config.replica_service_time,
        );
        replica_ids.push(id);
    }
    let mut client_ids = Vec::new();
    for c in clients {
        let cfg = client_config(&config, replica_ids.clone());
        let runner =
            SessionRunner::new(GryffService::new(cfg), c.sessions, stop_issuing_at, c.workload);
        let id = engine.add_node_with(
            GryffNode::Client(Box::new(runner)),
            c.region,
            config.client_service_time,
        );
        client_ids.push(id);
    }

    let finished_at = engine.run();

    let mut read = LatencyRecorder::new();
    let mut write = LatencyRecorder::new();
    let mut rmw = LatencyRecorder::new();
    let mut completed = Vec::new();
    let mut stats = GryffClientStats::default();
    let mut window_count = 0u64;
    for &id in &client_ids {
        if let GryffNode::Client(c) = engine.node(id) {
            for op in &c.completed {
                if op.finish >= measure_from {
                    let latency = op.latency();
                    match op.kind {
                        OpKind::Read { .. } => read.record(latency),
                        OpKind::Write { .. } => write.record(latency),
                        OpKind::Rmw { .. } => rmw.record(latency),
                        _ => {}
                    }
                    if op.finish < stop_issuing_at {
                        window_count += 1;
                    }
                }
            }
            let s = &c.service.stats;
            stats.reads += s.reads;
            stats.slow_reads += s.slow_reads;
            stats.writes += s.writes;
            stats.rmws += s.rmws;
            stats.fences += s.fences;
            stats.deps_piggybacked += s.deps_piggybacked;
            stats.timeout_retries += s.timeout_retries;
            completed.push((id, c.completed.clone()));
        }
    }
    let mut replica_stats = Vec::new();
    let mut storage = StorageSummary::default();
    let mut replica_registers = Vec::new();
    for &id in &replica_ids {
        if let GryffNode::Replica(r) = engine.node(id) {
            replica_stats.push(r.stats);
            storage.add_wal(&r.wal_stats());
            replica_registers.push(r.registers());
        }
    }
    let window = stop_issuing_at.since(measure_from).as_micros();
    let throughput =
        if window == 0 { 0.0 } else { window_count as f64 * 1_000_000.0 / window as f64 };
    let coverage = record_coverage.then(|| {
        let mut b = CoverageBuilder::new();
        for (class, phase) in engine.coverage_pairs() {
            if phase == 0xFFFF {
                b.hit(domain::EXPIRED_CLASS, class);
            } else {
                b.hit(domain::MESSAGE_PHASE, (class << 8) | (phase & 0xff));
            }
        }
        let net = engine.message_stats();
        b.hit_bucketed(domain::NET_PRESSURE, 0, net.dropped);
        b.hit_bucketed(domain::NET_PRESSURE, 1, net.duplicated);
        b.hit_bucketed(domain::NET_PRESSURE, 2, net.expired);
        b.hit_bucketed(domain::RECOVERY, 0, stats.timeout_retries);
        b.hit_bucketed(domain::RECOVERY, 1, replica_stats.iter().map(|r| r.rmws_coordinated).sum());
        b.hit_bucketed(domain::STORAGE, 0, storage.recoveries);
        b.hit_bucketed(domain::STORAGE, 1, storage.replayed);
        b.hit_bucketed(domain::STORAGE, 2, storage.torn_bytes);
        b.build()
    });
    GryffRunResult {
        mode: config.mode,
        read_latencies: read,
        write_latencies: write,
        rmw_latencies: rmw,
        completed,
        throughput,
        client_stats: stats,
        replica_stats,
        finished_at,
        messages: engine.delivered_messages(),
        net_stats: engine.message_stats(),
        storage,
        replica_registers,
        coverage,
    }
}

/// Appends a client's records to the shared recorder and collects the
/// per-key `(carstamp, rank, finish, op)` chain entries (writes before reads
/// among carstamp ties) into `per_key`.
pub fn record_with_carstamp_chains(
    recorder: &mut HistoryRecorder,
    client: u64,
    records: &[CompletedRecord],
    per_key: &mut std::collections::HashMap<u64, Vec<(Carstamp, u8, u64, OpId)>>,
) {
    for op in records {
        let id = recorder.record(client, op);
        let (key, rank) = match &op.kind {
            OpKind::Read { key } => (Some(*key), 1),
            OpKind::Write { key, .. } | OpKind::Rmw { key, .. } => (Some(*key), 0),
            _ => (None, 0),
        };
        if let (Some(k), WitnessHint::Carstamp { count, writer, rmwc }) = (key, op.witness) {
            per_key.entry(k.0).or_default().push((
                Carstamp { count, writer, rmwc },
                rank,
                op.finish.as_micros(),
                id,
            ));
        }
    }
}

/// Builds the history and the per-key/process-order constraint edges of a run.
pub fn build_history(result: &GryffRunResult) -> (History, Vec<(OpId, OpId)>) {
    build_history_from(&result.completed)
}

/// [`build_history`] from bare per-client completion lists, for harnesses
/// (e.g. the live execution plane) that do not assemble a [`GryffRunResult`].
pub fn build_history_from(
    completed: &[(NodeId, Vec<CompletedRecord>)],
) -> (History, Vec<(OpId, OpId)>) {
    let mut recorder = HistoryRecorder::new();
    let mut per_key: std::collections::HashMap<u64, Vec<(Carstamp, u8, u64, OpId)>> =
        std::collections::HashMap::new();
    for (client, ops) in completed {
        record_with_carstamp_chains(&mut recorder, *client as u64, ops, &mut per_key);
    }
    let mut edges = Vec::new();
    for (_, mut items) in per_key {
        items.sort_unstable();
        for w in items.windows(2) {
            edges.push((w[0].3, w[1].3));
        }
    }
    edges.extend(recorder.process_order_edges());
    (recorder.into_history(), edges)
}

/// Verifies that a run satisfies its consistency model: linearizability for
/// the Gryff baseline, RSC for Gryff-RSC.
pub fn verify_run(result: &GryffRunResult) -> Result<(), GryffVerificationError> {
    let (history, edges) = build_history(result);
    let model = match result.mode {
        Mode::Gryff => WitnessModel::RealTime,
        Mode::GryffRsc => WitnessModel::Regular,
    };
    let witness = assemble_witness(&history, &edges, model)
        .map_err(|e| GryffVerificationError::Cyclic(e.unordered))?;
    check_witness(&history, &witness, model).map_err(GryffVerificationError::Witness)
}

/// Why verification failed.
#[derive(Debug, Clone, PartialEq)]
pub enum GryffVerificationError {
    /// The combined ordering constraints are cyclic (no serialization exists).
    Cyclic(usize),
    /// The assembled witness was rejected by the certificate checker.
    Witness(WitnessViolation),
}

/// A convenience summary of a read latency distribution used by the Figure 7
/// harness.
pub fn read_value_summary(result: &GryffRunResult) -> (u64, u64) {
    let fast = result.client_stats.reads - result.client_stats.slow_reads;
    (fast, result.client_stats.slow_reads)
}

/// Helper asserting that every read observed a value that some write actually
/// wrote (or null), independent of the full witness check.
pub fn all_reads_explainable(result: &GryffRunResult) -> bool {
    let mut written: std::collections::HashSet<Value> = std::collections::HashSet::new();
    for (_, ops) in &result.completed {
        for op in ops {
            for (_, v) in op.kind.written_values() {
                written.insert(v);
            }
        }
    }
    result.completed.iter().all(|(_, ops)| {
        ops.iter().all(|op| match (&op.kind, &op.result) {
            (OpKind::Read { .. }, regular_core::op::OpResult::Value(v)) => {
                v.is_null() || written.contains(v)
            }
            _ => true,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ConflictWorkload;

    fn run(mode: Mode, seed: u64, write_ratio: f64, conflict: f64) -> GryffRunResult {
        run_batched(mode, seed, write_ratio, conflict, 1)
    }

    fn run_batched(
        mode: Mode,
        seed: u64,
        write_ratio: f64,
        conflict: f64,
        batch: usize,
    ) -> GryffRunResult {
        let config = GryffConfig::wan(mode);
        let net = LatencyMatrix::gryff_wan();
        let clients = (0..5)
            .map(|i| GryffClientSpec {
                region: i % 5,
                sessions: SessionConfig::closed_loop(3, SimDuration::ZERO).with_batch(batch),
                workload: Box::new(ConflictWorkload::ycsb(write_ratio, conflict, i as u64))
                    as Box<dyn SessionWorkload>,
            })
            .collect();
        run_gryff(GryffClusterSpec {
            config,
            net,
            seed,
            clients,
            stop_issuing_at: SimTime::from_secs(30),
            drain: SimDuration::from_secs(10),
            measure_from: SimTime::from_secs(3),
        })
    }

    #[test]
    fn baseline_is_linearizable() {
        let result = run(Mode::Gryff, 1, 0.5, 0.5);
        assert!(result.client_stats.reads > 100);
        assert!(result.client_stats.writes > 100);
        assert!(all_reads_explainable(&result));
        verify_run(&result).expect("Gryff must be linearizable");
    }

    #[test]
    fn rsc_variant_satisfies_rsc() {
        let result = run(Mode::GryffRsc, 1, 0.5, 0.5);
        assert!(result.client_stats.reads > 100);
        assert!(all_reads_explainable(&result));
        verify_run(&result).expect("Gryff-RSC must satisfy RSC");
    }

    #[test]
    fn rsc_reads_always_take_one_round() {
        let result = run(Mode::GryffRsc, 3, 0.5, 0.5);
        assert_eq!(result.client_stats.slow_reads, 0, "Gryff-RSC reads never take a second round");
        assert!(result.client_stats.deps_piggybacked > 0, "dependencies should be exercised");
    }

    #[test]
    fn baseline_reads_sometimes_take_two_rounds_under_conflict() {
        let result = run(Mode::Gryff, 3, 0.5, 0.9);
        assert!(result.client_stats.slow_reads > 0, "high conflict should force write-backs");
        let mut slow = result.read_latencies.clone();
        // A two-round read from the worst-placed region exceeds 300 ms; the
        // maximum read latency should reflect the second round trip.
        assert!(slow.max().unwrap() > SimDuration::from_millis(200));
    }

    #[test]
    fn rsc_p99_read_latency_not_worse_than_baseline() {
        let baseline = run(Mode::Gryff, 5, 0.5, 0.25);
        let rsc = run(Mode::GryffRsc, 5, 0.5, 0.25);
        let mut b = baseline.read_latencies.clone();
        let mut r = rsc.read_latencies.clone();
        let pb = b.percentile(99.0).unwrap();
        let pr = r.percentile(99.0).unwrap();
        assert!(pr <= pb, "Gryff-RSC p99 read latency ({pr}) must not exceed Gryff's ({pb})");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run(Mode::GryffRsc, 9, 0.3, 0.1);
        let b = run(Mode::GryffRsc, 9, 0.3, 0.1);
        assert_eq!(a.client_stats.reads, b.client_stats.reads);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn batched_sessions_pipeline_and_stay_consistent() {
        let serial = run_batched(Mode::GryffRsc, 21, 0.5, 0.25, 1);
        let batched = run_batched(Mode::GryffRsc, 21, 0.5, 0.25, 8);
        let total = |r: &GryffRunResult| r.client_stats.reads + r.client_stats.writes;
        assert!(
            total(&batched) > 3 * total(&serial),
            "batch 8 should complete several times the closed-loop throughput \
             (batched {} vs serial {})",
            total(&batched),
            total(&serial)
        );
        verify_run(&batched).expect("batched Gryff-RSC must still satisfy RSC");
        let (history, _) = build_history(&batched);
        history.validate().expect("pipelined lanes keep the history well-formed");
    }

    #[test]
    fn rsc_survives_replica_crash_and_lossy_links() {
        use regular_sim::fault::{FaultSchedule, LinkScope};
        use regular_sim::net::Region;

        // Replica 2 (Ireland) is down for 4 s — it coordinates rmws for
        // keys = 2 mod 5 — then Japan is partitioned away, then every link
        // drops/duplicates 2% of messages for a stretch.
        let faults = FaultSchedule::new()
            .crash(2, SimTime::from_secs(5), SimTime::from_secs(9))
            .partition_region(Region(4), SimTime::from_secs(11), SimTime::from_secs(13))
            .drop_window(LinkScope::All, SimTime::from_secs(14), SimTime::from_secs(18), 0.02)
            .duplicate_window(LinkScope::All, SimTime::from_secs(14), SimTime::from_secs(18), 0.02);
        let config =
            GryffConfig::wan(Mode::GryffRsc).with_faults(faults, SimDuration::from_millis(1_200));
        let net = LatencyMatrix::gryff_wan();
        let clients = (0..5)
            .map(|i| GryffClientSpec {
                region: i % 5,
                sessions: SessionConfig::closed_loop(3, SimDuration::ZERO),
                workload: Box::new(ConflictWorkload {
                    rmw_ratio: 0.1,
                    ..ConflictWorkload::ycsb(0.5, 0.4, i as u64)
                }) as Box<dyn SessionWorkload>,
            })
            .collect();
        let result = run_gryff(GryffClusterSpec {
            config,
            net,
            seed: 31,
            clients,
            stop_issuing_at: SimTime::from_secs(24),
            drain: SimDuration::from_secs(10),
            measure_from: SimTime::from_secs(1),
        });
        let stats = result.net_stats;
        assert!(
            stats.dropped > 0 && stats.duplicated > 0,
            "the fault plane was active ({stats:?})"
        );
        assert!(stats.expired > 0, "messages expired at the crashed replica ({stats:?})");
        assert!(
            result.client_stats.timeout_retries > 0,
            "clients re-sent stalled rounds ({:?})",
            result.client_stats
        );
        assert!(result.client_stats.rmws > 20, "rmws kept completing ({:?})", result.client_stats);
        assert!(all_reads_explainable(&result));
        verify_run(&result).expect("Gryff-RSC must satisfy RSC through crashes and loss");
    }

    #[test]
    fn faulty_gryff_runs_are_deterministic_for_a_seed() {
        use regular_sim::fault::{FaultSchedule, LinkScope};

        let run = || {
            let faults = FaultSchedule::new()
                .crash(1, SimTime::from_secs(3), SimTime::from_secs(6))
                .drop_window(LinkScope::All, SimTime::from_secs(7), SimTime::from_secs(10), 0.05);
            let config = GryffConfig::wan(Mode::GryffRsc)
                .with_faults(faults, SimDuration::from_millis(1_200));
            let clients = (0..3)
                .map(|i| GryffClientSpec {
                    region: i % 5,
                    sessions: SessionConfig::closed_loop(2, SimDuration::ZERO)
                        .with_workload_seed(55 + i as u64),
                    workload: Box::new(ConflictWorkload::ycsb(0.5, 0.25, i as u64))
                        as Box<dyn SessionWorkload>,
                })
                .collect();
            run_gryff(GryffClusterSpec {
                config,
                net: LatencyMatrix::gryff_wan(),
                seed: 8,
                clients,
                stop_issuing_at: SimTime::from_secs(12),
                drain: SimDuration::from_secs(8),
                measure_from: SimTime::from_secs(1),
            })
        };
        let a = run();
        let b = run();
        let (ha, _) = build_history(&a);
        let (hb, _) = build_history(&b);
        assert_eq!(ha, hb, "identical seed + schedule yields a byte-identical history");
        assert_eq!(a.net_stats, b.net_stats);
    }

    #[test]
    fn rmws_are_atomic_on_dedicated_keys() {
        let config = GryffConfig::wan(Mode::Gryff);
        let net = LatencyMatrix::gryff_wan();
        let clients = (0..3)
            .map(|i| GryffClientSpec {
                region: i % 5,
                sessions: SessionConfig::closed_loop(2, SimDuration::ZERO),
                workload: Box::new(ConflictWorkload {
                    rmw_ratio: 1.0,
                    ..ConflictWorkload::ycsb(0.0, 0.0, i as u64)
                }) as Box<dyn SessionWorkload>,
            })
            .collect();
        let result = run_gryff(GryffClusterSpec {
            config,
            net,
            seed: 4,
            clients,
            stop_issuing_at: SimTime::from_secs(20),
            drain: SimDuration::from_secs(10),
            measure_from: SimTime::from_secs(2),
        });
        assert!(result.client_stats.rmws > 50);
        verify_run(&result).expect("rmw-only workload must be linearizable");
    }
}
