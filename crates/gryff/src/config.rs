//! Configuration of a simulated Gryff / Gryff-RSC deployment.

use regular_sim::fault::FaultSchedule;
use regular_sim::queue::QueueKind;
use regular_sim::time::SimDuration;
use regular_storage::Durability;

/// Which read protocol the deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The linearizable baseline: reads take a second (write-back) round trip
    /// whenever the first-round quorum disagrees.
    Gryff,
    /// The RSC variant: reads always finish in one round; the observed value
    /// is piggybacked onto the client's next operation (Section 7, Appendix B).
    GryffRsc,
}

/// The bug zoo: known historical bugs of this codebase kept reintroducible
/// as hunting targets for the coverage-guided explorer (`regular-hunt`).
///
/// Each knob re-enables one real, previously-fixed bug. The knobs always
/// exist (so configs serialize and build identically everywhere), but their
/// *effects* are compiled only under `#[cfg(any(test, feature = "bug-zoo"))]`
/// — a release build ignores them entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugZoo {
    /// The PR 5 carstamp regression: the RMW coordinator chooses its write
    /// carstamp with a fresh `(count+1, MAX_WRITER, 0)` instead of extending
    /// the observed base below the next write with `next_rmw()`. An RMW that
    /// races a concurrent base write at the same count then *always* wins the
    /// writer-id tie-break, making the committed base write unobservable —
    /// a violation the witness checker catches whenever the race actually
    /// happens in an execution.
    pub two_component_carstamps: bool,
}

impl BugZoo {
    /// No mutants enabled.
    pub fn none() -> Self {
        BugZoo::default()
    }

    /// True if any mutant is enabled.
    pub fn any(&self) -> bool {
        self.two_component_carstamps
    }
}

/// Static configuration of a deployment.
#[derive(Debug, Clone)]
pub struct GryffConfig {
    /// Protocol variant.
    pub mode: Mode,
    /// Number of replicas (the paper uses five, one per region).
    pub num_replicas: usize,
    /// Region of each replica.
    pub replica_regions: Vec<usize>,
    /// Per-event CPU cost at replicas.
    pub replica_service_time: SimDuration,
    /// Per-event CPU cost at clients.
    pub client_service_time: SimDuration,
    /// Client-side timeout after which a stalled operation's current round
    /// is re-sent (idempotently, under the same operation id). `None` (the
    /// default) disables the retry path — correct on a fault-free network.
    /// Fault schedules that crash replicas or drop messages must set it.
    pub op_timeout: Option<SimDuration>,
    /// Scripted faults installed into the engine for this deployment run.
    pub faults: FaultSchedule,
    /// Event-queue implementation the engine runs on. The default indexed
    /// queue and the reference heap replay identical histories; the knob
    /// exists for differential tests and the `engine_hotpath` benchmarks.
    pub queue_kind: QueueKind,
    /// Storage backing for replicas. `InMemory` (the default) keeps the
    /// pre-existing volatile behaviour — healthy-run histories are
    /// byte-identical to builds without the storage layer. `Wal` puts every
    /// durable state transition through a write-ahead log with group commit
    /// and rebuilds crashed replicas from the log alone.
    pub durability: Durability,
    /// Reintroducible historical bugs for the guided hunter. The field is
    /// always present; the mutant code paths only exist under
    /// `#[cfg(any(test, feature = "bug-zoo"))]`.
    pub bug_zoo: BugZoo,
}

impl GryffConfig {
    /// The five-region wide-area configuration of Section 7.2 (one replica in
    /// each of CA, VA, IR, OR, JP).
    pub fn wan(mode: Mode) -> Self {
        GryffConfig {
            mode,
            num_replicas: 5,
            replica_regions: vec![0, 1, 2, 3, 4],
            replica_service_time: SimDuration::from_micros(20),
            client_service_time: SimDuration::from_micros(2),
            op_timeout: None,
            faults: FaultSchedule::default(),
            queue_kind: QueueKind::Indexed,
            durability: Durability::InMemory,
            bug_zoo: BugZoo::none(),
        }
    }

    /// A single-data-center configuration used by the overhead experiment
    /// (§7.4): five replicas, sub-millisecond latency.
    pub fn single_dc(mode: Mode) -> Self {
        GryffConfig {
            mode,
            num_replicas: 5,
            replica_regions: vec![0; 5],
            replica_service_time: SimDuration::from_micros(20),
            client_service_time: SimDuration::from_micros(2),
            op_timeout: None,
            faults: FaultSchedule::default(),
            queue_kind: QueueKind::Indexed,
            durability: Durability::InMemory,
            bug_zoo: BugZoo::none(),
        }
    }

    /// Installs a scripted fault schedule for the deployment run and enables
    /// the client-side operation timeout faults require.
    pub fn with_faults(mut self, faults: FaultSchedule, op_timeout: SimDuration) -> Self {
        self.faults = faults;
        self.op_timeout = Some(op_timeout);
        self
    }

    /// Selects the storage backing for replicas.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Enables bug-zoo mutants. Only effective in builds that compile the
    /// mutants in (`cfg(test)` or the `bug-zoo` feature); elsewhere the
    /// knobs are inert.
    pub fn with_bug_zoo(mut self, bug_zoo: BugZoo) -> Self {
        self.bug_zoo = bug_zoo;
        self
    }

    /// Size of a majority quorum.
    pub fn quorum(&self) -> usize {
        self.num_replicas / 2 + 1
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_replicas == 0 {
            return Err("num_replicas must be positive".to_string());
        }
        if self.replica_regions.len() != self.num_replicas {
            return Err("replica_regions must have one entry per replica".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_config_matches_paper() {
        let cfg = GryffConfig::wan(Mode::GryffRsc);
        assert_eq!(cfg.num_replicas, 5);
        assert_eq!(cfg.quorum(), 3);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_malformed_configs() {
        let mut cfg = GryffConfig::wan(Mode::Gryff);
        cfg.replica_regions.pop();
        assert!(cfg.validate().is_err());
        cfg.num_replicas = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn single_dc_quorum() {
        let cfg = GryffConfig::single_dc(Mode::Gryff);
        assert_eq!(cfg.quorum(), 3);
        assert!(cfg.validate().is_ok());
    }
}
