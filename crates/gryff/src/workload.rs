//! Workloads for the Gryff / Gryff-RSC clients.
//!
//! The paper's Section 7 evaluation drives Gryff with YCSB: reads and writes
//! only, a configurable write ratio, and a configurable *conflict rate* — the
//! probability that an operation targets a key shared with other clients
//! (2 %, 10 %, and 25 % in Figure 7). [`ConflictWorkload`] reproduces that
//! model: with probability `conflict_rate` the operation goes to a small
//! shared hot set, otherwise to a per-client private region, so roughly
//! `conflict_rate` of operations can race with other clients.
//!
//! Clients consume the protocol-agnostic
//! [`regular_session::SessionWorkload`] interface; [`OpRequest`] is the
//! protocol core's internal representation of one in-flight operation.

use rand::rngs::SmallRng;
use rand::Rng;
use regular_core::types::Key;
use regular_session::{SessionOp, SessionWorkload};

/// One operation in flight at the protocol core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpRequest {
    /// Read a key.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Write a key (the client assigns a fresh unique value).
    Write {
        /// Key to write.
        key: Key,
    },
    /// Atomically read-modify-write a key.
    Rmw {
        /// Key to modify.
        key: Key,
    },
    /// A real-time fence (Gryff-RSC composition; a no-op for the baseline).
    Fence,
}

/// The YCSB-style read/write workload with a conflict rate (Section 7.2).
#[derive(Debug, Clone)]
pub struct ConflictWorkload {
    /// Fraction of operations that are writes.
    pub write_ratio: f64,
    /// Fraction of operations that target the shared (conflict-prone) keys.
    pub conflict_rate: f64,
    /// Number of shared keys.
    pub shared_keys: u64,
    /// Number of private keys per client.
    pub private_keys: u64,
    /// This client's identifier (selects its private key range).
    pub client_id: u64,
    /// Fraction of operations that are read-modify-writes on a dedicated
    /// counter range (0 for the Figure 7 workloads).
    pub rmw_ratio: f64,
}

impl ConflictWorkload {
    /// The Figure 7 configuration: given write ratio and conflict rate, no rmws.
    pub fn ycsb(write_ratio: f64, conflict_rate: f64, client_id: u64) -> Self {
        ConflictWorkload {
            write_ratio,
            conflict_rate,
            shared_keys: 1,
            private_keys: 1_000,
            client_id,
            rmw_ratio: 0.0,
        }
    }

    fn pick_key(&self, rng: &mut SmallRng) -> Key {
        if rng.gen_bool(self.conflict_rate) {
            Key(rng.gen_range(0..self.shared_keys))
        } else {
            // Private keys live far above the shared range, partitioned per client.
            Key(1_000_000
                + self.client_id * self.private_keys
                + rng.gen_range(0..self.private_keys))
        }
    }
}

impl SessionWorkload for ConflictWorkload {
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp {
        if self.rmw_ratio > 0.0 && rng.gen_bool(self.rmw_ratio) {
            // Rmws target a dedicated counter range shared by all clients so
            // they exercise the consensus path without racing plain writes.
            return SessionOp::Rmw {
                key: Key(900_000 + rng.gen_range(0..self.shared_keys.max(1))),
            };
        }
        let key = self.pick_key(rng);
        if rng.gen_bool(self.write_ratio) {
            SessionOp::Write { key }
        } else {
            SessionOp::Read { key }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use regular_session::ScriptedSessionWorkload;

    #[test]
    fn conflict_rate_and_write_ratio_are_respected() {
        let mut w = ConflictWorkload::ycsb(0.5, 0.25, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut writes = 0;
        let mut shared = 0;
        let n = 4_000;
        for _ in 0..n {
            match w.next_op(&mut rng) {
                SessionOp::Write { key } => {
                    writes += 1;
                    if key.0 < 1_000 {
                        shared += 1;
                    }
                }
                SessionOp::Read { key } if key.0 < 1_000 => {
                    shared += 1;
                }
                _ => {}
            }
        }
        let write_frac = writes as f64 / n as f64;
        let shared_frac = shared as f64 / n as f64;
        assert!((0.45..0.55).contains(&write_frac), "write fraction {write_frac}");
        assert!((0.20..0.30).contains(&shared_frac), "conflict fraction {shared_frac}");
    }

    #[test]
    fn private_keys_are_disjoint_across_clients() {
        let mut a = ConflictWorkload::ycsb(0.0, 0.0, 1);
        let mut b = ConflictWorkload::ycsb(0.0, 0.0, 2);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let ka = match a.next_op(&mut rng) {
                SessionOp::Read { key } => key,
                _ => unreachable!("write ratio is zero"),
            };
            let kb = match b.next_op(&mut rng) {
                SessionOp::Read { key } => key,
                _ => unreachable!("write ratio is zero"),
            };
            assert!(ka.0 / 1_000 != kb.0 / 1_000 || ka.0 < 1_000_000 || kb.0 < 1_000_000);
        }
    }

    #[test]
    fn rmw_ratio_produces_rmws_on_dedicated_keys() {
        let mut w = ConflictWorkload { rmw_ratio: 1.0, ..ConflictWorkload::ycsb(0.5, 0.1, 0) };
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            match w.next_op(&mut rng) {
                SessionOp::Rmw { key } => assert!((900_000..1_000_000).contains(&key.0)),
                other => panic!("expected rmw, got {other:?}"),
            }
        }
    }

    #[test]
    fn scripted_session_workload_serves_gryff_ops() {
        let mut w = ScriptedSessionWorkload::new(vec![
            SessionOp::Write { key: Key(1) },
            SessionOp::Fence,
            SessionOp::Read { key: Key(1) },
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(w.next_op(&mut rng), SessionOp::Write { key: Key(1) });
        assert_eq!(w.next_op(&mut rng), SessionOp::Fence);
        assert_eq!(w.next_op(&mut rng), SessionOp::Read { key: Key(1) });
        assert_eq!(w.next_op(&mut rng), SessionOp::Read { key: Key(0) });
    }
}
