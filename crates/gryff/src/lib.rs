//! Gryff and Gryff-RSC on the `regular-sim` discrete-event substrate.
//!
//! This crate reproduces Section 7 and Appendix B of the paper: Gryff, a
//! geo-replicated key-value store combining shared registers (reads/writes)
//! with a consensus path (read-modify-writes), and Gryff-RSC, the variant
//! that relaxes linearizability to regular sequential consistency so reads
//! always complete in a single quorum round trip by piggybacking the read's
//! write-back onto the client's next operation.
//!
//! Clients are built on the protocol-agnostic session layer
//! (`regular-session`): the protocol core ([`client::GryffService`])
//! implements [`regular_session::Service`], and the harness drives it with
//! [`regular_session::SessionRunner`]s configured through
//! [`regular_session::SessionConfig`] — the same interface Spanner uses, so a
//! composed deployment can run both stores in one simulation (see the
//! `multi_service` integration test).
//!
//! # Example
//!
//! ```
//! use regular_gryff::prelude::*;
//! use regular_sim::{LatencyMatrix, SimDuration, SimTime};
//!
//! let result = run_gryff(GryffClusterSpec {
//!     config: GryffConfig::wan(Mode::GryffRsc),
//!     net: LatencyMatrix::gryff_wan(),
//!     seed: 1,
//!     clients: vec![GryffClientSpec {
//!         region: 0,
//!         sessions: SessionConfig::closed_loop(2, SimDuration::ZERO),
//!         workload: Box::new(ConflictWorkload::ycsb(0.5, 0.1, 0)),
//!     }],
//!     stop_issuing_at: SimTime::from_secs(5),
//!     drain: SimDuration::from_secs(2),
//!     measure_from: SimTime::from_secs(1),
//! });
//! assert!(result.client_stats.reads > 0);
//! verify_run(&result).expect("the run satisfies RSC");
//! ```

pub mod carstamp;
pub mod client;
pub mod config;
pub mod durable;
pub mod harness;
pub mod messages;
pub mod replica;
pub mod workload;

/// Convenient re-exports for harnesses, examples, and benches.
pub mod prelude {
    pub use crate::carstamp::Carstamp;
    pub use crate::client::{GryffClientConfig, GryffClientStats, GryffService};
    pub use crate::config::{BugZoo, GryffConfig, Mode};
    pub use crate::harness::{
        all_reads_explainable, build_history, build_history_from, client_config,
        read_value_summary, record_with_carstamp_chains, run_gryff, run_gryff_with_coverage,
        verify_run, GryffClient, GryffClientSpec, GryffClusterSpec, GryffNode, GryffRunResult,
        GryffVerificationError,
    };
    pub use crate::messages::{Dep, GryffMsg, OpRef};
    pub use crate::workload::{ConflictWorkload, OpRequest};
    pub use regular_session::{
        ScriptedSessionWorkload, SessionConfig, SessionDriver, SessionOp, SessionWorkload,
    };
}

pub use prelude::*;
