//! Executing one hunt input: simulate, record coverage, certify.
//!
//! [`run_input`] is the single evaluation function the whole hunter is built
//! on — the explorer calls it to score mutants, the shrinker calls it to
//! check that a reduction still fails, and the replay path in the artifact
//! records exactly the input it was handed. One input, one deterministic
//! verdict.

use regular_core::checker::assemble::assemble_witness;
use regular_core::checker::certificate::{check_witness, WitnessModel};
use regular_core::coverage::CoverageSignature;
use regular_core::history::History;
use regular_core::types::OpId;
use regular_gryff::prelude::*;
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};

use crate::input::{HuntInput, REGIONS};

/// A certification failure observed while executing a hunt input, with the
/// evidence a [`regular_sweep::artifact::FailureArtifact`] needs.
#[derive(Debug, Clone)]
pub struct HuntFailure {
    /// Human-readable description of the violation, in the sweep's idiom.
    pub violation: String,
    /// The rejected witness (empty when the constraints were cyclic and no
    /// witness could be assembled at all).
    pub witness: Vec<OpId>,
    /// The recorded history of the failing run.
    pub history: History,
}

/// The outcome of executing one hunt input.
#[derive(Debug, Clone)]
pub struct RunVerdict {
    /// Behaviour coverage of the run.
    pub coverage: CoverageSignature,
    /// `Some` when certification rejected the run.
    pub failure: Option<HuntFailure>,
    /// Operations in the recorded history (scripted ops plus closed-loop
    /// filler) — the size the shrinker minimizes.
    pub history_ops: usize,
}

impl RunVerdict {
    /// Did certification fail?
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// Simulates one input on the five-region Gryff-RSC WAN and certifies the
/// resulting history against the Regular witness model. Deterministic: the
/// same `(input, bug_zoo)` pair always produces the same verdict.
pub fn run_input(input: &HuntInput, bug_zoo: BugZoo) -> RunVerdict {
    let faults = input.fault_schedule();
    let mut config = GryffConfig::wan(Mode::GryffRsc).with_bug_zoo(bug_zoo);
    if !faults.is_empty() {
        // Timeout retries keep clients live through crash and cut windows.
        config = config.with_faults(faults, SimDuration::from_millis(400));
    }
    let clients = input
        .sessions
        .iter()
        .enumerate()
        .map(|(i, ops)| GryffClientSpec {
            region: i % REGIONS,
            sessions: SessionConfig::closed_loop(1, SimDuration::ZERO),
            workload: Box::new(ScriptedSessionWorkload::new(
                ops.iter().map(|op| op.to_session_op()).collect(),
            )),
        })
        .collect();
    let result = run_gryff_with_coverage(GryffClusterSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed: input.seed,
        clients,
        stop_issuing_at: SimTime::from_millis(input.stop_ms),
        drain: SimDuration::from_secs(2),
        measure_from: SimTime::ZERO,
    });
    let coverage = result.coverage.clone().unwrap_or_else(CoverageSignature::empty);

    let (history, edges) = build_history(&result);
    let history_ops = history.len();
    let failure = match assemble_witness(&history, &edges, WitnessModel::Regular) {
        Err(e) => Some(HuntFailure {
            violation: format!(
                "carstamp/process-order constraints are cyclic ({} ops unordered)",
                e.unordered
            ),
            witness: Vec::new(),
            history,
        }),
        Ok(witness) => match check_witness(&history, &witness, WitnessModel::Regular) {
            Err(v) => Some(HuntFailure {
                violation: format!("regular violation: {v:?}"),
                witness,
                history,
            }),
            Ok(()) => None,
        },
    };
    RunVerdict { coverage, failure, history_ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{FaultEvent, HuntOp};

    fn benign_input() -> HuntInput {
        HuntInput {
            seed: 3,
            sessions: vec![
                vec![HuntOp::Write(0), HuntOp::Read(0), HuntOp::Rmw(1)],
                vec![HuntOp::Rmw(0), HuntOp::Write(1)],
            ],
            faults: vec![FaultEvent::Crash { node: 2, at_ms: 400, dur_ms: 300 }],
            nudges: vec![(5, 40_000)],
            stop_ms: 1_500,
        }
    }

    #[test]
    fn a_clean_run_certifies_and_records_coverage() {
        let verdict = run_input(&benign_input(), BugZoo::none());
        assert!(
            !verdict.failed(),
            "no mutants enabled: {:?}",
            verdict.failure.map(|f| f.violation)
        );
        assert!(verdict.history_ops > 0, "the scripted sessions ran");
        assert!(!verdict.coverage.is_empty(), "coverage was recorded");
    }

    #[test]
    fn the_verdict_is_deterministic() {
        let input = benign_input();
        let a = run_input(&input, BugZoo::none());
        let b = run_input(&input, BugZoo::none());
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.history_ops, b.history_ops);
        assert_eq!(a.failed(), b.failed());
    }
}
