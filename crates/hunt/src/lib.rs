//! Coverage-guided schedule search and automatic failure minimization.
//!
//! The conformance sweep (`regular-sweep`) certifies runs drawn from seed
//! ranges — breadth without guidance. This crate adds the depth: a hunter
//! that treats the whole `(seed, workload, fault schedule, delivery order)`
//! tuple as a mutable input, scores each execution by a behaviour-coverage
//! signature recorded inside the simulator, and searches toward
//! interleavings nothing has exercised yet. When a run fails certification,
//! a delta-debugging shrinker reduces the input to a locally minimal
//! trigger and emits a replayable [`FailureArtifact`].
//!
//! # Crate layout
//!
//! - [`input`] — [`HuntInput`], the search genome: scripted sessions, fault
//!   events, delivery nudges, a seed, and a run length; JSON round trip and
//!   normalizing lowering into a [`regular_sim::fault::FaultSchedule`].
//! - [`run`] — [`run_input`]: simulate one input on the Gryff-RSC WAN with
//!   coverage recording, then certify the history against the Regular
//!   witness model.
//! - [`mutate`](mod@mutate) — structural mutations over every input axis.
//! - [`explore`] — the evaluator cascade (smoke → random → guided) and the
//!   coverage-ranked corpus.
//! - [`shrink`](mod@shrink) — ddmin over sessions, ops, fault events,
//!   nudges, and run length; deterministic and idempotent.
//!
//! # From found to filed
//!
//! ```text
//! hunt(config)            explore: cascade until certification fails
//!   └─ FoundFailure       the triggering input + failing verdict
//!        └─ shrink(..)    ddmin: re-simulate every candidate reduction
//!             └─ failure_artifact(..)   minimized, replayable artifact
//! ```
//!
//! The artifact's `schedule` field carries the serialized [`HuntInput`], so
//! `conformance_sweep --replay` reproduces the verdict from the recorded
//! history without re-simulating — and anyone who wants to watch the bug
//! live can feed the schedule back through [`run_input`].

pub mod explore;
pub mod input;
pub mod mutate;
pub mod run;
pub mod shrink;

pub use explore::{hunt, seed_corpus, FoundFailure, HuntConfig, HuntOutcome};
pub use input::{FaultEvent, HuntInput, HuntOp};
pub use mutate::mutate;
pub use run::{run_input, HuntFailure, RunVerdict};
pub use shrink::{shrink, ShrinkResult};

use regular_core::checker::certificate::WitnessModel;
use regular_core::coverage::CoverageSignature;
use regular_sweep::artifact::FailureArtifact;

/// Scenario name stamped on hunter-produced artifacts.
pub const HUNT_SCENARIO: &str = "hunt-gryff-rsc";

/// Packages a failing input as a replayable artifact: the recorded history
/// and rejected witness (for `--replay`, no simulator needed), the coverage
/// signature of the failing run, and the full serialized input in the
/// `schedule` field (for re-simulating the trigger).
pub fn failure_artifact(
    input: &HuntInput,
    failure: &HuntFailure,
    coverage: &CoverageSignature,
) -> FailureArtifact {
    FailureArtifact {
        scenario: HUNT_SCENARIO.to_string(),
        seed: input.seed,
        model: WitnessModel::Regular,
        violation: failure.violation.clone(),
        witness: failure.witness.clone(),
        history: failure.history.clone(),
        deliveries: Vec::new(),
        durability: None,
        schedule: Some(input.to_json()),
        coverage: Some(coverage.clone()),
    }
}
