//! Delta-debugging minimization of failing hunt inputs.
//!
//! Given an input whose execution fails certification, the shrinker
//! searches for a smaller input that *still* fails, ddmin-style, over three
//! axes in a fixed order:
//!
//! 1. **Workload** — drop whole sessions, then chunks of operations within
//!    each session (chunk size halving from half the session down to single
//!    ops, the classic ddmin sweep).
//! 2. **Faults** — drop fault events, then delivery nudges, one at a time.
//! 3. **Duration** — shorten `stop_ms` while the failure persists. Because
//!    closed-loop sessions keep issuing filler reads until the stop
//!    instant, this axis is what actually bounds the history length.
//!
//! Each candidate reduction is re-simulated with [`run_input`]; it is kept
//! only if certification still fails (any violation counts — the minimal
//! trigger sometimes manifests as a different but related violation). The
//! passes repeat until a full round removes nothing, so the result is a
//! local minimum: removing any single tried element makes the failure
//! vanish. The process uses no randomness — shrinking the same input twice
//! yields the same artifact, and re-shrinking a shrunk input returns it
//! unchanged.

use regular_gryff::prelude::BugZoo;

use crate::input::HuntInput;
use crate::run::{run_input, RunVerdict};

/// A minimized failing input plus the evidence of its (still failing) run.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimized input.
    pub input: HuntInput,
    /// The failing verdict of the minimized input.
    pub verdict: RunVerdict,
    /// Simulated executions the shrink spent.
    pub executions: usize,
}

struct Shrinker {
    bug_zoo: BugZoo,
    executions: usize,
}

impl Shrinker {
    /// Does `candidate` still fail? Counts the execution either way.
    fn still_fails(&mut self, candidate: &HuntInput) -> bool {
        self.executions += 1;
        run_input(candidate, self.bug_zoo).failed()
    }

    /// Tries dropping whole sessions, back to front (later sessions are
    /// likelier to be incidental — the seed inputs put the core race
    /// first).
    fn drop_sessions(&mut self, input: &mut HuntInput) -> bool {
        let mut changed = false;
        let mut i = input.sessions.len();
        while i > 0 {
            i -= 1;
            if input.sessions.len() <= 1 {
                break;
            }
            let mut candidate = input.clone();
            candidate.sessions.remove(i);
            if self.still_fails(&candidate) {
                *input = candidate;
                changed = true;
            }
        }
        changed
    }

    /// ddmin over one session's ops: chunk sizes halve from `len / 2` down
    /// to 1; at each size, every aligned chunk is tried for removal.
    fn shrink_session_ops(&mut self, input: &mut HuntInput, session: usize) -> bool {
        let mut changed = false;
        let mut chunk = (input.sessions[session].len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < input.sessions[session].len() {
                let end = (start + chunk).min(input.sessions[session].len());
                let mut candidate = input.clone();
                candidate.sessions[session].drain(start..end);
                if self.still_fails(&candidate) {
                    *input = candidate;
                    changed = true;
                    // Do not advance: the next chunk shifted into `start`.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        changed
    }

    /// Tries dropping fault events and nudges, one element at a time.
    fn drop_faults(&mut self, input: &mut HuntInput) -> bool {
        let mut changed = false;
        let mut i = input.faults.len();
        while i > 0 {
            i -= 1;
            let mut candidate = input.clone();
            candidate.faults.remove(i);
            if self.still_fails(&candidate) {
                *input = candidate;
                changed = true;
            }
        }
        let mut i = input.nudges.len();
        while i > 0 {
            i -= 1;
            let mut candidate = input.clone();
            candidate.nudges.remove(i);
            if self.still_fails(&candidate) {
                *input = candidate;
                changed = true;
            }
        }
        changed
    }

    /// Shortens the run: repeated 3/4 cuts while the failure persists, then
    /// one finer pass of -10% steps.
    fn shorten_run(&mut self, input: &mut HuntInput) -> bool {
        let mut changed = false;
        for step in [4u64, 10] {
            loop {
                let next = input.stop_ms - input.stop_ms / step;
                if next == input.stop_ms || next < 50 {
                    break;
                }
                let mut candidate = input.clone();
                candidate.stop_ms = next;
                if self.still_fails(&candidate) {
                    *input = candidate;
                    changed = true;
                } else {
                    break;
                }
            }
        }
        changed
    }
}

/// Minimizes `input` (which must fail certification under `bug_zoo`) to a
/// locally minimal failing input. Deterministic and idempotent.
pub fn shrink(input: &HuntInput, bug_zoo: BugZoo) -> ShrinkResult {
    let mut shrinker = Shrinker { bug_zoo, executions: 0 };
    let mut current = input.clone();
    debug_assert!(
        run_input(&current, bug_zoo).failed(),
        "shrink requires a failing input to start from"
    );
    loop {
        let mut changed = false;
        changed |= shrinker.drop_sessions(&mut current);
        for s in 0..current.sessions.len() {
            changed |= shrinker.shrink_session_ops(&mut current, s);
        }
        changed |= shrinker.drop_faults(&mut current);
        changed |= shrinker.shorten_run(&mut current);
        if !changed {
            break;
        }
    }
    let verdict = run_input(&current, bug_zoo);
    ShrinkResult { input: current, verdict, executions: shrinker.executions }
}
