//! Structural mutation of hunt inputs.
//!
//! The mutator perturbs one [`HuntInput`] into a neighbour: tweak the engine
//! seed, edit scripted operations, shift/widen/retarget fault windows, flip
//! one-way cuts, add or drop delivery nudges, and stretch or shrink the run
//! length. Every mutation keeps the input inside bounds the normalizer in
//! [`HuntInput::fault_schedule`] can absorb, so a mutated input always
//! simulates.
//!
//! All randomness flows through the caller's [`SmallRng`], so an explorer
//! seeded with a fixed value replays its entire search identically.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::input::{FaultEvent, HuntInput, HuntOp, REGIONS};

/// Upper bounds keeping mutated inputs cheap to simulate.
const MAX_SESSIONS: usize = 6;
const MAX_OPS_PER_SESSION: usize = 24;
const MAX_FAULTS: usize = 6;
const MAX_NUDGES: usize = 16;
const MAX_STOP_MS: u64 = 6_000;
const MIN_STOP_MS: u64 = 200;
/// Keys stay in a tiny space so racing sessions actually collide.
const KEY_SPACE: u64 = 4;

fn random_op(rng: &mut SmallRng) -> HuntOp {
    let key = rng.gen_range(0..KEY_SPACE);
    match rng.gen_range(0u32..4) {
        0 => HuntOp::Read(key),
        // Writes and rmws twice as likely as reads: conflicts live there.
        1 | 2 => HuntOp::Write(key),
        _ => HuntOp::Rmw(key),
    }
}

fn random_fault(rng: &mut SmallRng, stop_ms: u64) -> FaultEvent {
    let at_ms = rng.gen_range(0..stop_ms.max(2));
    let dur_ms = rng.gen_range(1..=800u64);
    match rng.gen_range(0u32..4) {
        0 => FaultEvent::Crash { node: rng.gen_range(0..REGIONS), at_ms, dur_ms },
        1 => FaultEvent::Partition { region: rng.gen_range(0..REGIONS), at_ms, dur_ms },
        2 => FaultEvent::CutOneWay {
            from: rng.gen_range(0..REGIONS),
            to: rng.gen_range(0..REGIONS),
            at_ms,
            dur_ms,
        },
        _ => FaultEvent::Drop { at_ms, dur_ms, permille: rng.gen_range(0..=200u32) },
    }
}

/// Shifts, widens, narrows, or retargets one fault event in place.
fn perturb_fault(rng: &mut SmallRng, ev: &mut FaultEvent) {
    let shift = |rng: &mut SmallRng, at: &mut u64| {
        let delta = rng.gen_range(0..400u64);
        *at = if rng.gen_bool(0.5) { at.saturating_sub(delta) } else { *at + delta };
    };
    let stretch = |rng: &mut SmallRng, dur: &mut u64| {
        let delta = rng.gen_range(0..400u64);
        *dur = if rng.gen_bool(0.5) { dur.saturating_sub(delta).max(1) } else { *dur + delta };
    };
    match ev {
        FaultEvent::Crash { node, at_ms, dur_ms } => match rng.gen_range(0u32..3) {
            0 => shift(rng, at_ms),
            1 => stretch(rng, dur_ms),
            _ => *node = rng.gen_range(0..REGIONS),
        },
        FaultEvent::Partition { region, at_ms, dur_ms } => match rng.gen_range(0u32..3) {
            0 => shift(rng, at_ms),
            1 => stretch(rng, dur_ms),
            _ => *region = rng.gen_range(0..REGIONS),
        },
        FaultEvent::CutOneWay { from, to, at_ms, dur_ms } => match rng.gen_range(0u32..4) {
            0 => shift(rng, at_ms),
            1 => stretch(rng, dur_ms),
            2 => std::mem::swap(from, to), // flip the cut direction
            _ => *to = rng.gen_range(0..REGIONS),
        },
        FaultEvent::Drop { at_ms, dur_ms, permille } => match rng.gen_range(0u32..3) {
            0 => shift(rng, at_ms),
            1 => stretch(rng, dur_ms),
            _ => *permille = rng.gen_range(0..=300u32),
        },
    }
}

/// Applies one random structural mutation to `input`, in place.
fn mutate_once(rng: &mut SmallRng, input: &mut HuntInput) {
    match rng.gen_range(0u32..10) {
        // Seed tweaks move the run through network-jitter space.
        0 => input.seed = input.seed.wrapping_add(rng.gen_range(1..=1_000u64)),
        // Append an op to a (possibly new) session.
        1 => {
            let op = random_op(rng);
            if input.sessions.is_empty()
                || (input.sessions.len() < MAX_SESSIONS && rng.gen_bool(0.2))
            {
                input.sessions.push(vec![op]);
            } else {
                let s = rng.gen_range(0..input.sessions.len());
                if input.sessions[s].len() < MAX_OPS_PER_SESSION {
                    let at = rng.gen_range(0..=input.sessions[s].len());
                    input.sessions[s].insert(at, op);
                }
            }
        }
        // Rewrite an existing op.
        2 => {
            if let Some(s) = pick_nonempty_session(rng, input) {
                let at = rng.gen_range(0..input.sessions[s].len());
                input.sessions[s][at] = random_op(rng);
            }
        }
        // Remove an op.
        3 => {
            if let Some(s) = pick_nonempty_session(rng, input) {
                let at = rng.gen_range(0..input.sessions[s].len());
                input.sessions[s].remove(at);
            }
        }
        // Add a fault event.
        4 => {
            if input.faults.len() < MAX_FAULTS {
                let ev = random_fault(rng, input.stop_ms);
                input.faults.push(ev);
            }
        }
        // Perturb a fault event (shift/widen/retarget/flip).
        5 => {
            if !input.faults.is_empty() {
                let at = rng.gen_range(0..input.faults.len());
                perturb_fault(rng, &mut input.faults[at]);
            }
        }
        // Remove a fault event.
        6 => {
            if !input.faults.is_empty() {
                let at = rng.gen_range(0..input.faults.len());
                input.faults.remove(at);
            }
        }
        // Add a delivery nudge: delay one dispatch by up to ~150 ms. Nudges
        // can only add delay, so causal delivery limits are respected by
        // construction.
        7 => {
            if input.nudges.len() < MAX_NUDGES {
                let seq = rng.gen_range(0..2_000u64);
                let extra_us = rng.gen_range(1_000..=150_000u64);
                if input.nudges.iter().all(|&(s, _)| s != seq) {
                    input.nudges.push((seq, extra_us));
                }
            }
        }
        // Remove a nudge.
        8 => {
            if !input.nudges.is_empty() {
                let at = rng.gen_range(0..input.nudges.len());
                input.nudges.remove(at);
            }
        }
        // Stretch or shrink the run.
        _ => {
            let delta = rng.gen_range(0..800u64);
            input.stop_ms = if rng.gen_bool(0.5) {
                input.stop_ms.saturating_sub(delta).max(MIN_STOP_MS)
            } else {
                (input.stop_ms + delta).min(MAX_STOP_MS)
            };
        }
    }
}

fn pick_nonempty_session(rng: &mut SmallRng, input: &HuntInput) -> Option<usize> {
    let candidates: Vec<usize> =
        (0..input.sessions.len()).filter(|&s| !input.sessions[s].is_empty()).collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// Produces a mutated copy of `parent`: one to three stacked mutations, the
/// AFL-style "havoc" knob kept small so children stay near their parent.
pub fn mutate(rng: &mut SmallRng, parent: &HuntInput) -> HuntInput {
    let mut child = parent.clone();
    let rounds = rng.gen_range(1..=3u32);
    for _ in 0..rounds {
        mutate_once(rng, &mut child);
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn parent() -> HuntInput {
        HuntInput {
            seed: 1,
            sessions: vec![vec![HuntOp::Write(0), HuntOp::Rmw(0)], vec![HuntOp::Rmw(0)]],
            faults: vec![FaultEvent::Crash { node: 0, at_ms: 200, dur_ms: 100 }],
            nudges: vec![(4, 20_000)],
            stop_ms: 1_000,
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let p = parent();
        let a = mutate(&mut SmallRng::seed_from_u64(42), &p);
        let b = mutate(&mut SmallRng::seed_from_u64(42), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn mutants_stay_within_bounds_and_always_normalize() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut input = parent();
        for _ in 0..500 {
            input = mutate(&mut rng, &input);
            assert!(input.sessions.len() <= MAX_SESSIONS);
            assert!(input.sessions.iter().all(|s| s.len() <= MAX_OPS_PER_SESSION));
            assert!(input.faults.len() <= MAX_FAULTS);
            assert!(input.nudges.len() <= MAX_NUDGES);
            assert!((MIN_STOP_MS..=MAX_STOP_MS).contains(&input.stop_ms));
            // The normalizer must accept every mutant (panics otherwise).
            let _ = input.fault_schedule();
        }
    }
}
