//! The hunt input: one point in the (seed, workload, fault schedule,
//! delivery order) space, serializable into failure artifacts.
//!
//! A [`HuntInput`] is the *genome* the explorer mutates: a simulation seed,
//! per-session scripted operation lists, millisecond-granularity fault
//! events, and per-dispatch delivery nudges. It deliberately stores a
//! simplified encoding of each dimension (e.g. fault events rather than a
//! raw [`FaultSchedule`]) so mutation stays structural and every input —
//! however mangled by the mutator — normalizes into a schedule the engine
//! accepts: windows are clamped to positive length, node and region indices
//! wrapped into range, and overlapping crash windows of one node dropped.
//!
//! The JSON form ([`HuntInput::to_json`]) is what a minimized
//! `FailureArtifact` carries in its `schedule` field: enough to re-simulate
//! the exact failing execution from nothing but the artifact.

use regular_core::types::Key;
use regular_gryff::prelude::SessionOp;
use regular_sim::fault::{FaultSchedule, LinkScope};
use regular_sim::net::Region;
use regular_sim::time::{SimDuration, SimTime};
use regular_sweep::Json;

/// Number of regions (and replicas) in the hunted deployment — the paper's
/// five-region WAN.
pub const REGIONS: usize = 5;

/// One scripted client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuntOp {
    /// Read a key.
    Read(u64),
    /// Write a fresh value to a key.
    Write(u64),
    /// Read-modify-write a key.
    Rmw(u64),
}

impl HuntOp {
    /// The session-layer operation this scripted op issues.
    pub fn to_session_op(self) -> SessionOp {
        match self {
            HuntOp::Read(k) => SessionOp::Read { key: Key(k) },
            HuntOp::Write(k) => SessionOp::Write { key: Key(k) },
            HuntOp::Rmw(k) => SessionOp::Rmw { key: Key(k) },
        }
    }

    /// The key this op touches.
    pub fn key(self) -> u64 {
        match self {
            HuntOp::Read(k) | HuntOp::Write(k) | HuntOp::Rmw(k) => k,
        }
    }

    fn code(self) -> (u64, u64) {
        match self {
            HuntOp::Read(k) => (0, k),
            HuntOp::Write(k) => (1, k),
            HuntOp::Rmw(k) => (2, k),
        }
    }

    fn from_code(kind: u64, key: u64) -> Result<Self, String> {
        match kind {
            0 => Ok(HuntOp::Read(key)),
            1 => Ok(HuntOp::Write(key)),
            2 => Ok(HuntOp::Rmw(key)),
            other => Err(format!("unknown hunt op kind {other}")),
        }
    }
}

/// One scripted fault, in milliseconds of simulated time. Events are
/// normalized (clamped, wrapped, de-overlapped) when lowered into a
/// [`FaultSchedule`], so mutation can shift and retarget them freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash a replica for a window, then recover it.
    Crash {
        /// Replica index (wrapped modulo the replica count).
        node: usize,
        /// Crash instant.
        at_ms: u64,
        /// Window length (clamped to ≥ 1 ms).
        dur_ms: u64,
    },
    /// Partition a region away from all others.
    Partition {
        /// Region index (wrapped modulo the region count).
        region: usize,
        /// Partition instant.
        at_ms: u64,
        /// Window length (clamped to ≥ 1 ms).
        dur_ms: u64,
    },
    /// Cut only the `from -> to` direction of a link (a grey failure).
    CutOneWay {
        /// Source region.
        from: usize,
        /// Destination region.
        to: usize,
        /// Cut instant.
        at_ms: u64,
        /// Window length (clamped to ≥ 1 ms).
        dur_ms: u64,
    },
    /// Drop every message with some probability, on all links.
    Drop {
        /// Window start.
        at_ms: u64,
        /// Window length (clamped to ≥ 1 ms).
        dur_ms: u64,
        /// Drop probability in permille (clamped to ≤ 1000).
        permille: u32,
    },
}

impl FaultEvent {
    /// The window start in milliseconds.
    pub fn at_ms(&self) -> u64 {
        match *self {
            FaultEvent::Crash { at_ms, .. }
            | FaultEvent::Partition { at_ms, .. }
            | FaultEvent::CutOneWay { at_ms, .. }
            | FaultEvent::Drop { at_ms, .. } => at_ms,
        }
    }

    fn to_json(self) -> Json {
        match self {
            FaultEvent::Crash { node, at_ms, dur_ms } => Json::obj(vec![
                ("f", Json::str("crash")),
                ("node", Json::u64(node as u64)),
                ("at_ms", Json::u64(at_ms)),
                ("dur_ms", Json::u64(dur_ms)),
            ]),
            FaultEvent::Partition { region, at_ms, dur_ms } => Json::obj(vec![
                ("f", Json::str("partition")),
                ("region", Json::u64(region as u64)),
                ("at_ms", Json::u64(at_ms)),
                ("dur_ms", Json::u64(dur_ms)),
            ]),
            FaultEvent::CutOneWay { from, to, at_ms, dur_ms } => Json::obj(vec![
                ("f", Json::str("cut_oneway")),
                ("from", Json::u64(from as u64)),
                ("to", Json::u64(to as u64)),
                ("at_ms", Json::u64(at_ms)),
                ("dur_ms", Json::u64(dur_ms)),
            ]),
            FaultEvent::Drop { at_ms, dur_ms, permille } => Json::obj(vec![
                ("f", Json::str("drop")),
                ("at_ms", Json::u64(at_ms)),
                ("dur_ms", Json::u64(dur_ms)),
                ("permille", Json::u64(permille as u64)),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let u = |k: &str| {
            json.get(k).and_then(Json::as_u64).ok_or_else(|| format!("fault missing '{k}'"))
        };
        match json.get("f").and_then(Json::as_str) {
            Some("crash") => Ok(FaultEvent::Crash {
                node: u("node")? as usize,
                at_ms: u("at_ms")?,
                dur_ms: u("dur_ms")?,
            }),
            Some("partition") => Ok(FaultEvent::Partition {
                region: u("region")? as usize,
                at_ms: u("at_ms")?,
                dur_ms: u("dur_ms")?,
            }),
            Some("cut_oneway") => Ok(FaultEvent::CutOneWay {
                from: u("from")? as usize,
                to: u("to")? as usize,
                at_ms: u("at_ms")?,
                dur_ms: u("dur_ms")?,
            }),
            Some("drop") => Ok(FaultEvent::Drop {
                at_ms: u("at_ms")?,
                dur_ms: u("dur_ms")?,
                permille: u("permille")? as u32,
            }),
            other => Err(format!("unknown fault event tag {other:?}")),
        }
    }
}

/// One point in the explored input space.
#[derive(Debug, Clone, PartialEq)]
pub struct HuntInput {
    /// Engine seed (network jitter, probabilistic fault sampling).
    pub seed: u64,
    /// Scripted operations, one list per session. Each session becomes its
    /// own closed-loop client node in region `i % REGIONS`; a session that
    /// exhausts its script idles on key-0 reads until the run stops.
    pub sessions: Vec<Vec<HuntOp>>,
    /// Scripted faults (normalized when lowered into a [`FaultSchedule`]).
    pub faults: Vec<FaultEvent>,
    /// Delivery-order nudges: `(dispatch sequence, extra delay in µs)`.
    pub nudges: Vec<(u64, u64)>,
    /// Clients stop issuing at this instant (ms); the run then drains.
    pub stop_ms: u64,
}

impl HuntInput {
    /// Total scripted operations across all sessions.
    pub fn scripted_ops(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// Lowers the fault events and nudges into an engine-ready
    /// [`FaultSchedule`], normalizing everything the engine would reject:
    /// windows are clamped to ≥ 1 ms, node/region indices wrapped into
    /// range, drop probabilities clamped to 1, and — because the engine
    /// refuses overlapping crash windows per node — later crash events
    /// overlapping an earlier window of the same node are dropped.
    pub fn fault_schedule(&self) -> FaultSchedule {
        let mut schedule = FaultSchedule::new();
        // (node -> windows) for the per-node crash overlap filter.
        let mut crash_windows: Vec<(usize, u64, u64)> = Vec::new();
        let mut events = self.faults.clone();
        events.sort_by_key(FaultEvent::at_ms);
        for ev in events {
            match ev {
                FaultEvent::Crash { node, at_ms, dur_ms } => {
                    let node = node % REGIONS;
                    let until = at_ms + dur_ms.max(1);
                    let overlaps = crash_windows
                        .iter()
                        .any(|&(n, from, to)| n == node && at_ms < to && until > from);
                    if overlaps {
                        continue;
                    }
                    crash_windows.push((node, at_ms, until));
                    schedule = schedule.crash(
                        node,
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(until),
                    );
                }
                FaultEvent::Partition { region, at_ms, dur_ms } => {
                    schedule = schedule.partition_region(
                        Region(region % REGIONS),
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(at_ms + dur_ms.max(1)),
                    );
                }
                FaultEvent::CutOneWay { from, to, at_ms, dur_ms } => {
                    let (a, b) = (from % REGIONS, to % REGIONS);
                    schedule = schedule.cut_link_oneway(
                        Region(a),
                        Region(b),
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(at_ms + dur_ms.max(1)),
                    );
                }
                FaultEvent::Drop { at_ms, dur_ms, permille } => {
                    schedule = schedule.drop_window(
                        LinkScope::All,
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(at_ms + dur_ms.max(1)),
                        f64::from(permille.min(1_000)) / 1_000.0,
                    );
                }
            }
        }
        for &(seq, extra_us) in &self.nudges {
            schedule = schedule.nudge_message(seq, SimDuration::from_micros(extra_us));
        }
        schedule
    }

    /// Serializes the input (the `schedule` payload of a failure artifact).
    pub fn to_json(&self) -> Json {
        let session = |ops: &Vec<HuntOp>| {
            Json::Arr(
                ops.iter()
                    .map(|op| {
                        let (kind, key) = op.code();
                        Json::Arr(vec![Json::u64(kind), Json::u64(key)])
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("kind", Json::str("hunt-input")),
            ("seed", Json::u64(self.seed)),
            ("stop_ms", Json::u64(self.stop_ms)),
            ("sessions", Json::Arr(self.sessions.iter().map(session).collect())),
            ("faults", Json::Arr(self.faults.iter().map(|f| f.to_json()).collect())),
            (
                "nudges",
                Json::Arr(
                    self.nudges
                        .iter()
                        .map(|&(seq, us)| Json::Arr(vec![Json::u64(seq), Json::u64(us)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes an input written by [`HuntInput::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let u =
            |k: &str| json.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing '{k}'"));
        let pair = |v: &Json| -> Result<(u64, u64), String> {
            let p = v.as_arr().filter(|p| p.len() == 2).ok_or("expected a two-element array")?;
            Ok((p[0].as_u64().ok_or("expected an integer")?, p[1].as_u64().ok_or("integer")?))
        };
        let sessions = json
            .get("sessions")
            .and_then(Json::as_arr)
            .ok_or("missing 'sessions'")?
            .iter()
            .map(|ops| {
                ops.as_arr()
                    .ok_or_else(|| "session must be an array".to_string())?
                    .iter()
                    .map(|op| pair(op).and_then(|(kind, key)| HuntOp::from_code(kind, key)))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let faults = json
            .get("faults")
            .and_then(Json::as_arr)
            .ok_or("missing 'faults'")?
            .iter()
            .map(FaultEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let nudges = json
            .get("nudges")
            .and_then(Json::as_arr)
            .ok_or("missing 'nudges'")?
            .iter()
            .map(pair)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HuntInput { seed: u("seed")?, sessions, faults, nudges, stop_ms: u("stop_ms")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HuntInput {
        HuntInput {
            seed: 11,
            sessions: vec![
                vec![HuntOp::Write(0), HuntOp::Rmw(0), HuntOp::Read(3)],
                vec![HuntOp::Rmw(0); 4],
            ],
            faults: vec![
                FaultEvent::Crash { node: 1, at_ms: 500, dur_ms: 800 },
                FaultEvent::Drop { at_ms: 100, dur_ms: 300, permille: 50 },
                FaultEvent::CutOneWay { from: 0, to: 2, at_ms: 50, dur_ms: 200 },
            ],
            nudges: vec![(7, 90_000), (12, 10_000)],
            stop_ms: 4_000,
        }
    }

    #[test]
    fn inputs_round_trip_through_json() {
        let input = sample();
        let json = input.to_json();
        let parsed = HuntInput::from_json(&json).expect("parses");
        assert_eq!(parsed, input);
        let reparsed =
            HuntInput::from_json(&Json::parse(&json.to_pretty()).unwrap()).expect("reparses");
        assert_eq!(reparsed, input);
    }

    #[test]
    fn fault_schedules_normalize_hostile_events() {
        let input = HuntInput {
            seed: 0,
            sessions: vec![],
            faults: vec![
                // Zero-length window: clamped to 1 ms, not a panic.
                FaultEvent::Partition { region: 9, at_ms: 10, dur_ms: 0 },
                // Out-of-range node: wrapped, not a panic.
                FaultEvent::Crash { node: 7, at_ms: 100, dur_ms: 50 },
                // Overlapping crash of the same (wrapped) node: dropped.
                FaultEvent::Crash { node: 2, at_ms: 120, dur_ms: 50 },
                // Disjoint later crash of the same node: kept.
                FaultEvent::Crash { node: 2, at_ms: 300, dur_ms: 10 },
                // Over-unity probability: clamped.
                FaultEvent::Drop { at_ms: 0, dur_ms: 5, permille: 4_000 },
            ],
            nudges: vec![(3, 1_000)],
            stop_ms: 1_000,
        };
        let schedule = input.fault_schedule();
        assert_eq!(schedule.crashes().len(), 2, "overlapping crash window dropped");
        assert_eq!(schedule.link_cuts().len(), 1);
        assert_eq!(schedule.message_windows().len(), 1);
        assert_eq!(schedule.message_nudges().len(), 1);
    }

    #[test]
    fn scripted_ops_counts_all_sessions() {
        assert_eq!(sample().scripted_ops(), 7);
    }
}
