//! The coverage-guided explorer: seed corpus, evaluator cascade, and the
//! AFL-style mutation loop.
//!
//! The hunt runs as a cascade of increasingly expensive evaluators, stopping
//! at the first certification failure:
//!
//! 1. **Smoke** — a handful of hand-written inputs (contended write/rmw
//!    races, a crash mid-run, a lossy window). Catches bugs so shallow that
//!    search is overkill, and doubles as the seed corpus for stage 3.
//! 2. **Random** — fresh inputs drawn at random, no guidance. Catches bugs
//!    with dense trigger conditions.
//! 3. **Guided** — the corpus/mutation loop. Inputs whose coverage
//!    signatures contain features never seen before join the corpus;
//!    parents are picked round-robin weighted toward recent additions, so
//!    the search follows behavioural novelty into rare interleavings.
//!
//! Every execution is [`run_input`], so a found failure is replayable from
//! its input alone.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use regular_core::coverage::CoverageMap;
use regular_gryff::prelude::BugZoo;

use crate::input::{FaultEvent, HuntInput, HuntOp};
use crate::mutate::mutate;
use crate::run::{run_input, HuntFailure, RunVerdict};

/// Hunt budgets and target.
#[derive(Debug, Clone)]
pub struct HuntConfig {
    /// Seed for the explorer's own randomness (mutation and generation).
    pub seed: u64,
    /// Hard cap on simulated executions across all cascade stages.
    pub max_execs: usize,
    /// Optional wall-clock budget in milliseconds.
    pub max_millis: Option<u64>,
    /// Mutant knobs to compile into the hunted protocol.
    pub bug_zoo: BugZoo,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig { seed: 1, max_execs: 256, max_millis: None, bug_zoo: BugZoo::none() }
    }
}

/// A certification failure the explorer found, with the input that triggers
/// it — everything the shrinker and the artifact writer need.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// The triggering input.
    pub input: HuntInput,
    /// The failing verdict of that input.
    pub verdict: RunVerdict,
    /// Which cascade stage found it.
    pub stage: &'static str,
    /// Executions spent up to and including the finding one.
    pub execs_to_find: usize,
}

impl FoundFailure {
    /// The failure evidence (always present; the verdict failed).
    pub fn failure(&self) -> &HuntFailure {
        self.verdict.failure.as_ref().expect("a found failure has failing evidence")
    }
}

/// What a hunt did: statistics plus the failure, if any.
#[derive(Debug, Clone)]
pub struct HuntOutcome {
    /// Total simulated executions.
    pub executions: usize,
    /// Corpus entries retained by the guided stage.
    pub corpus_size: usize,
    /// Distinct coverage features observed across all executions.
    pub features_seen: usize,
    /// The first certification failure, if one was found in budget.
    pub found: Option<FoundFailure>,
}

/// The hand-written smoke inputs. Deliberately centred on the behaviours the
/// protocols get wrong when mutated: same-key write/rmw races across
/// regions, a replica crash mid-traffic, and a lossy window forcing retries.
pub fn seed_corpus() -> Vec<HuntInput> {
    let race = |seed: u64| HuntInput {
        seed,
        sessions: vec![
            vec![HuntOp::Write(0); 8],
            vec![HuntOp::Rmw(0); 8],
            vec![HuntOp::Rmw(0), HuntOp::Read(0), HuntOp::Rmw(0), HuntOp::Write(0)],
        ],
        faults: Vec::new(),
        nudges: Vec::new(),
        stop_ms: 1_200,
    };
    vec![
        race(1),
        race(2),
        HuntInput {
            seed: 3,
            sessions: vec![
                vec![HuntOp::Write(0), HuntOp::Rmw(0), HuntOp::Write(1), HuntOp::Rmw(1)],
                vec![HuntOp::Rmw(1), HuntOp::Write(0), HuntOp::Rmw(0)],
            ],
            faults: vec![FaultEvent::Crash { node: 1, at_ms: 300, dur_ms: 400 }],
            nudges: Vec::new(),
            stop_ms: 1_500,
        },
        HuntInput {
            seed: 4,
            sessions: vec![vec![HuntOp::Write(0), HuntOp::Rmw(0)], vec![HuntOp::Rmw(0)]],
            faults: vec![FaultEvent::Drop { at_ms: 100, dur_ms: 600, permille: 80 }],
            nudges: vec![(10, 60_000), (25, 90_000)],
            stop_ms: 1_200,
        },
    ]
}

/// Draws a fresh random input (the cascade's unguided middle stage).
fn random_input(rng: &mut SmallRng) -> HuntInput {
    let mut input = HuntInput {
        seed: rng.gen_range(0..1_000_000u64),
        sessions: vec![Vec::new(); rng.gen_range(1..=4usize)],
        faults: Vec::new(),
        nudges: Vec::new(),
        stop_ms: rng.gen_range(600..=2_000u64),
    };
    // Grow it with the same structural mutations the guided stage uses, so
    // the random stage samples the same space.
    for _ in 0..rng.gen_range(4..=16u32) {
        input = mutate(rng, &input);
    }
    input
}

struct Budget {
    max_execs: usize,
    deadline: Option<(Instant, u64)>,
    spent: usize,
}

impl Budget {
    fn exhausted(&self) -> bool {
        self.spent >= self.max_execs
            || self.deadline.is_some_and(|(start, ms)| start.elapsed().as_millis() as u64 >= ms)
    }
}

/// Runs the full evaluator cascade under the configured budget and returns
/// at the first certification failure (or when the budget runs dry).
pub fn hunt(config: &HuntConfig) -> HuntOutcome {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut budget = Budget {
        max_execs: config.max_execs,
        deadline: config.max_millis.map(|ms| (Instant::now(), ms)),
        spent: 0,
    };
    let mut map = CoverageMap::new();
    // Corpus entries: (input, fresh features it contributed when admitted).
    let mut corpus: Vec<(HuntInput, usize)> = Vec::new();

    let execute = |input: &HuntInput,
                   budget: &mut Budget,
                   map: &mut CoverageMap,
                   stage: &'static str|
     -> Result<usize, Box<FoundFailure>> {
        budget.spent += 1;
        let verdict = run_input(input, config.bug_zoo);
        let fresh = map.absorb(&verdict.coverage);
        if verdict.failed() {
            Err(Box::new(FoundFailure {
                input: input.clone(),
                verdict,
                stage,
                execs_to_find: budget.spent,
            }))
        } else {
            Ok(fresh)
        }
    };

    let mut found: Option<Box<FoundFailure>> = None;

    // Stage 1: smoke. The seed corpus always enters the guided corpus, so
    // stage 3 starts from inputs that already exercise contention.
    for input in seed_corpus() {
        if budget.exhausted() || found.is_some() {
            break;
        }
        match execute(&input, &mut budget, &mut map, "smoke") {
            Ok(fresh) => corpus.push((input, fresh.max(1))),
            Err(f) => found = Some(f),
        }
    }

    // Stage 2: unguided random round — a slice of the remaining budget.
    if found.is_none() {
        let random_round = (config.max_execs / 4).max(4);
        for _ in 0..random_round {
            if budget.exhausted() || found.is_some() {
                break;
            }
            let input = random_input(&mut rng);
            match execute(&input, &mut budget, &mut map, "random") {
                Ok(fresh) if fresh > 0 => corpus.push((input, fresh)),
                Ok(_) => {}
                Err(f) => found = Some(f),
            }
        }
    }

    // Stage 3: guided search. Parents are drawn weighted toward entries
    // that contributed more fresh features, with a recency bias (later
    // entries sit at higher indices and win ties).
    if found.is_none() {
        while !budget.exhausted() && found.is_none() {
            let parent = if corpus.is_empty() {
                random_input(&mut rng)
            } else {
                let total: usize = corpus.iter().map(|(_, w)| *w).sum();
                let mut pick = rng.gen_range(0..total.max(1));
                let mut chosen = corpus.len() - 1;
                for (i, (_, w)) in corpus.iter().enumerate() {
                    if pick < *w {
                        chosen = i;
                        break;
                    }
                    pick -= w;
                }
                corpus[chosen].0.clone()
            };
            let child = mutate(&mut rng, &parent);
            match execute(&child, &mut budget, &mut map, "guided") {
                Ok(fresh) if fresh > 0 => corpus.push((child, fresh)),
                Ok(_) => {}
                Err(f) => found = Some(f),
            }
        }
    }

    HuntOutcome {
        executions: budget.spent,
        corpus_size: corpus.len(),
        features_seen: map.len(),
        found: found.map(|f| *f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_protocol_survives_a_small_hunt() {
        let outcome =
            hunt(&HuntConfig { seed: 9, max_execs: 10, max_millis: None, bug_zoo: BugZoo::none() });
        assert!(outcome.found.is_none(), "no mutants enabled, nothing to find");
        assert_eq!(outcome.executions, 10, "the budget is spent exactly");
        assert!(outcome.features_seen > 0, "coverage accumulated");
        assert!(outcome.corpus_size >= seed_corpus().len(), "smoke inputs join the corpus");
    }
}
