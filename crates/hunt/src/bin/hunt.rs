//! Coverage-guided bug hunt over the simulated Gryff-RSC deployment.
//!
//! Runs the evaluator cascade (smoke → random → guided mutation) under a
//! time/execution budget; on the first certification failure, minimizes the
//! triggering input with the ddmin shrinker and writes a replayable
//! artifact that `conformance_sweep --replay` reproduces without
//! re-simulating.
//!
//! Usage:
//!
//! ```text
//! hunt [--budget-execs N] [--budget-secs S] [--seed S]
//!      [--bug-zoo] [--expect-bug] [--out DIR]
//! ```
//!
//! `--bug-zoo` enables the reintroduced historical protocol bugs (build
//! with `--features bug-zoo`; the knob is inert otherwise). `--expect-bug`
//! inverts the exit status for CI smoke jobs: success means a bug was
//! found, minimized, and written. Without it the hunt is a conformance
//! gate: finding a violation is a failure.

use std::path::PathBuf;
use std::process::ExitCode;

use regular_gryff::prelude::BugZoo;
use regular_hunt::{failure_artifact, hunt, shrink, HuntConfig};

struct Args {
    config: HuntConfig,
    expect_bug: bool,
    out: PathBuf,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: hunt [--budget-execs N] [--budget-secs S] [--seed S] [--bug-zoo] \
         [--expect-bug] [--out DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut config = HuntConfig { max_execs: 512, ..HuntConfig::default() };
    let mut expect_bug = false;
    let mut out = PathBuf::from("hunt-artifacts");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match arg.as_str() {
            "--budget-execs" => {
                config.max_execs =
                    value("--budget-execs").parse().unwrap_or_else(|_| usage("bad --budget-execs"))
            }
            "--budget-secs" => {
                let secs: u64 =
                    value("--budget-secs").parse().unwrap_or_else(|_| usage("bad --budget-secs"));
                config.max_millis = Some(secs * 1_000);
            }
            "--seed" => {
                config.seed = value("--seed").parse().unwrap_or_else(|_| usage("bad --seed"))
            }
            "--bug-zoo" => config.bug_zoo = BugZoo { two_component_carstamps: true },
            "--expect-bug" => expect_bug = true,
            "--out" => out = PathBuf::from(value("--out")),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    Args { config, expect_bug, out }
}

fn main() -> ExitCode {
    let Args { config, expect_bug, out } = parse_args();
    if config.bug_zoo.any() && !cfg!(any(test, feature = "bug-zoo")) {
        eprintln!(
            "warning: --bug-zoo requested but the mutants are compiled out; \
             rebuild with `--features bug-zoo` for them to take effect"
        );
    }
    println!(
        "== hunt: budget {} execs{}, explorer seed {}, bug zoo {} ==",
        config.max_execs,
        config.max_millis.map(|ms| format!(" / {} s", ms / 1_000)).unwrap_or_default(),
        config.seed,
        if config.bug_zoo.any() { "ON" } else { "off" },
    );

    let outcome = hunt(&config);
    println!(
        "explored {} execution(s): corpus {}, {} distinct coverage feature(s)",
        outcome.executions, outcome.corpus_size, outcome.features_seen,
    );

    let Some(found) = outcome.found else {
        println!("no certification failure found within budget");
        return if expect_bug {
            eprintln!("--expect-bug: FAILED (the hunt was expected to find a violation)");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    };

    println!(
        "violation found by the {} stage after {} execution(s): {}",
        found.stage,
        found.execs_to_find,
        found.failure().violation,
    );
    println!(
        "trigger: {} scripted op(s), {} fault event(s), {} nudge(s), {} history op(s)",
        found.input.scripted_ops(),
        found.input.faults.len(),
        found.input.nudges.len(),
        found.verdict.history_ops,
    );

    let minimized = shrink(&found.input, config.bug_zoo);
    println!(
        "minimized in {} execution(s): {} scripted op(s), {} fault event(s), \
         {} nudge(s), {} history op(s), stop at {} ms",
        minimized.executions,
        minimized.input.scripted_ops(),
        minimized.input.faults.len(),
        minimized.input.nudges.len(),
        minimized.verdict.history_ops,
        minimized.input.stop_ms,
    );
    let failure = minimized.verdict.failure.as_ref().expect("shrink preserves the failure");
    println!("minimized violation: {}", failure.violation);
    println!("coverage: {}", minimized.verdict.coverage.describe());

    let artifact = failure_artifact(&minimized.input, failure, &minimized.verdict.coverage);
    match artifact.save(&out) {
        Ok(path) => {
            println!("artifact written: {}", path.display());
            println!("replay with: conformance_sweep --replay {}", path.display());
        }
        Err(e) => {
            eprintln!("failed to write artifact to {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    if expect_bug {
        println!("--expect-bug: OK (violation found and minimized)");
        ExitCode::SUCCESS
    } else {
        eprintln!("certification FAILED under hunt; see the artifact above");
        ExitCode::FAILURE
    }
}
