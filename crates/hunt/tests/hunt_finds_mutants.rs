//! The hunter's acceptance gate: with the PR-5 carstamp bug reintroduced
//! from the bug zoo, the guided hunt must rediscover it within a small
//! execution budget, the shrinker must reduce the trigger to a tiny
//! replayable artifact, and the whole pipeline must be deterministic.
//!
//! (These tests compile the mutants in via the crate's `bug-zoo`
//! dev-dependency feature; release builds of the protocols never contain
//! them.)

use regular_gryff::prelude::BugZoo;
use regular_hunt::{failure_artifact, hunt, shrink, HuntConfig, HuntInput};
use regular_sweep::artifact::FailureArtifact;

fn mutant() -> BugZoo {
    BugZoo { two_component_carstamps: true }
}

fn small_budget() -> HuntConfig {
    HuntConfig { seed: 1, max_execs: 32, max_millis: None, bug_zoo: mutant() }
}

#[test]
fn guided_hunt_rediscovers_the_carstamp_mutant_within_32_executions() {
    let outcome = hunt(&small_budget());
    let found = outcome.found.expect("the carstamp mutant must be found within 32 executions");
    assert!(
        found.execs_to_find <= 32,
        "found only after {} executions (stage {})",
        found.execs_to_find,
        found.stage
    );
    // The bug is a certification failure of the mutated protocol, visible in
    // the violation text as a carstamp-ordering problem.
    assert!(!found.failure().violation.is_empty());
}

#[test]
fn the_shrunk_artifact_is_tiny_and_replays_without_resimulating() {
    let config = small_budget();
    let found = hunt(&config).found.expect("mutant found");
    let minimized = shrink(&found.input, config.bug_zoo);
    let failure = minimized.verdict.failure.as_ref().expect("shrinking preserves the failure");

    assert!(
        minimized.verdict.history_ops <= 50,
        "minimized repro must be at most 50 ops, got {}",
        minimized.verdict.history_ops
    );
    assert!(minimized.input.scripted_ops() <= found.input.scripted_ops());

    // The artifact replays the recorded history against the rejected witness
    // with no simulator involved, reproducing the failing verdict...
    let artifact = failure_artifact(&minimized.input, failure, &minimized.verdict.coverage);
    let verdict = artifact.replay();
    assert!(verdict.is_err(), "replay must reproduce the failure");

    // ...and survives a disk round trip byte-exactly, including the new
    // schedule and coverage fields.
    let dir = std::env::temp_dir().join("regular-hunt-artifact-test");
    let path = artifact.save(&dir).expect("artifact saves");
    let loaded = FailureArtifact::load(&path).expect("artifact loads");
    assert_eq!(loaded.replay(), verdict, "replay from disk reproduces the exact verdict");
    assert_eq!(loaded.coverage, artifact.coverage, "coverage round-trips");
    let recorded = loaded.schedule.as_ref().expect("hunt artifacts carry their input");
    let reparsed = HuntInput::from_json(recorded).expect("the recorded schedule parses");
    assert_eq!(reparsed, minimized.input, "the minimized input round-trips through the artifact");
    let _ = std::fs::remove_file(path);

    // The recorded input re-simulates to the same failure, for anyone who
    // wants to watch the bug live rather than replay the evidence.
    let rerun = regular_hunt::run_input(&reparsed, config.bug_zoo);
    assert!(rerun.failed(), "the minimized input still triggers the bug when re-simulated");
}

#[test]
fn the_shrinker_is_deterministic_and_idempotent() {
    let config = small_budget();
    let found = hunt(&config).found.expect("mutant found");

    let a = shrink(&found.input, config.bug_zoo);
    let b = shrink(&found.input, config.bug_zoo);
    assert_eq!(a.input, b.input, "shrinking the same input twice gives the same minimum");
    assert_eq!(a.executions, b.executions, "and spends the same executions");

    let again = shrink(&a.input, config.bug_zoo);
    assert_eq!(again.input, a.input, "re-shrinking a minimum returns it unchanged");
}

#[test]
fn the_clean_protocol_passes_the_same_budget() {
    // Control: with no mutants enabled the identical search finds nothing,
    // so the gate above is measuring the bug, not a checker false positive.
    let outcome = hunt(&HuntConfig { bug_zoo: BugZoo::none(), ..small_budget() });
    assert!(outcome.found.is_none(), "clean protocol must certify under the hunt");
}
