//! Session runners: the simulation nodes that drive services with sessions.
//!
//! [`SessionRunner`] drives a single service — the building block the
//! Spanner-RSS and Gryff-RSC harnesses assemble client nodes from.
//! [`ComposedRunner`] drives *several* services behind one wire type, with
//! `libRSS` fence planning ([`regular_librss::FencePlanner`]) inserting a
//! real-time fence at the previous service whenever a session switches
//! services (Section 4.1, Figure 3).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regular_core::fence::FenceStats;
use regular_librss::FencePlanner;
use regular_sim::engine::{Context, Node, NodeId};
use regular_sim::time::{SimDuration, SimTime};

use crate::config::SessionConfig;
use crate::op::{MultiServiceWorkload, SessionOp, SessionWorkload};
use crate::record::{CompletedRecord, LaneId};
use crate::scheduler::{SessionScheduler, Wake};
use crate::service::{runner_tag, Service};

/// Aggregate counters a runner keeps about its sessions.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Batches issued.
    pub batches: u64,
    /// Non-orphan operations completed.
    pub ops_completed: u64,
}

/// A simulation node driving one [`Service`] with configured sessions.
pub struct SessionRunner<S: Service> {
    /// The protocol service front-end (public so harnesses can read its
    /// protocol-specific statistics after the run).
    pub service: S,
    scheduler: SessionScheduler,
    workload: Box<dyn SessionWorkload>,
    /// Dedicated workload RNG (see [`SessionConfig::workload_seed`]); `None`
    /// draws from the engine RNG.
    workload_rng: Option<SmallRng>,
    timers: HashMap<u64, Wake>,
    next_timer: u64,
    outstanding: HashMap<u64, usize>,
    /// All completions, including warm-up and orphans, in completion order.
    pub completed: Vec<CompletedRecord>,
    /// Aggregate session statistics.
    pub stats: SessionStats,
}

impl<S: Service> SessionRunner<S> {
    /// Creates a runner issuing batches until `stop_issuing_at`.
    pub fn new(
        service: S,
        sessions: SessionConfig,
        stop_issuing_at: SimTime,
        workload: Box<dyn SessionWorkload>,
    ) -> Self {
        SessionRunner {
            service,
            workload_rng: sessions.workload_seed.map(SmallRng::seed_from_u64),
            scheduler: SessionScheduler::new(sessions, stop_issuing_at),
            workload,
            timers: HashMap::new(),
            next_timer: 0,
            outstanding: HashMap::new(),
            completed: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    fn arm(&mut self, ctx: &mut Context<S::Msg>, delay: SimDuration, wake: Wake) {
        let tag = runner_tag(&mut self.next_timer);
        self.timers.insert(tag, wake);
        ctx.set_timer(delay, tag);
    }

    fn issue_batch(&mut self, ctx: &mut Context<S::Msg>, session: u64) {
        let batch = self.scheduler.batch();
        self.outstanding.insert(session, batch);
        self.stats.batches += 1;
        for slot in 0..batch {
            let op = match &mut self.workload_rng {
                Some(rng) => self.workload.next_op(rng),
                None => self.workload.next_op(ctx.rng()),
            };
            self.service.submit(ctx, LaneId { session, slot: slot as u32 }, op);
        }
    }

    /// Collects completions; when a session's batch fully completes, asks the
    /// scheduler how the session continues. Loops because a submission issued
    /// from a completion (none today, but cheap to be safe) may itself
    /// complete synchronously.
    fn drain(&mut self, ctx: &mut Context<S::Msg>) {
        loop {
            let records = self.service.drain_completed();
            if records.is_empty() {
                return;
            }
            for rec in records {
                if !rec.orphan {
                    self.stats.ops_completed += 1;
                    if let Some(n) = self.outstanding.get_mut(&rec.session) {
                        *n -= 1;
                        if *n == 0 {
                            self.outstanding.remove(&rec.session);
                            let timers =
                                self.scheduler.on_batch_complete(ctx.now(), ctx.rng(), rec.session);
                            for (delay, wake) in timers {
                                self.arm(ctx, delay, wake);
                            }
                            if !self.scheduler.is_active(rec.session) {
                                self.service.end_session(rec.session);
                            }
                        }
                    }
                }
                self.completed.push(rec);
            }
        }
    }
}

impl<S: Service> Node<S::Msg> for SessionRunner<S> {
    fn on_start(&mut self, ctx: &mut Context<S::Msg>) {
        self.service.on_start(ctx);
        let timers = self.scheduler.on_start(ctx.rng());
        for (delay, wake) in timers {
            self.arm(ctx, delay, wake);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<S::Msg>, from: NodeId, msg: S::Msg) {
        self.service.on_message(ctx, from, msg);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<S::Msg>, tag: u64) {
        if tag & 1 == 1 {
            self.service.on_timer(ctx, tag);
        } else {
            let Some(wake) = self.timers.remove(&tag) else { return };
            let (issue, timers) = self.scheduler.on_wake(ctx.now(), ctx.rng(), wake);
            for (delay, next) in timers {
                self.arm(ctx, delay, next);
            }
            for session in issue {
                self.issue_batch(ctx, session);
            }
            // The stop-issuing cutoff retires sessions at wake time.
            if let Wake::Issue { session } = wake {
                if !self.scheduler.is_active(session) && !self.outstanding.contains_key(&session) {
                    self.service.end_session(session);
                }
            }
        }
        self.drain(ctx);
    }
}

/// A simulation node whose sessions hop between several services (all lifted
/// to one wire type `M`, typically via [`crate::MappedService`]), fencing the
/// previous service on every switch exactly as `libRSS` prescribes.
///
/// # One service per protocol
///
/// Incoming wire messages are offered to every service; each service accepts
/// the variants its protocol understands and ignores the rest. That routing
/// is only unambiguous when **at most one service speaks each protocol
/// message type**: two instances of the same protocol would both accept the
/// same replies (their operation identifiers carry no store discriminator)
/// and silently corrupt each other's in-flight state. [`ComposedRunner::new`]
/// enforces the cheap proxy of that rule — distinct
/// [`Service::service_id`]s — and composing two same-protocol stores
/// additionally requires a wire type whose conversions separate them.
pub struct ComposedRunner<M: 'static> {
    services: Vec<Box<dyn Service<Msg = M>>>,
    planner: FencePlanner,
    scheduler: SessionScheduler,
    workload: Box<dyn MultiServiceWorkload>,
    /// Dedicated workload RNG (see [`SessionConfig::workload_seed`]); `None`
    /// draws from the engine RNG.
    workload_rng: Option<SmallRng>,
    timers: HashMap<u64, Wake>,
    next_timer: u64,
    outstanding: HashMap<u64, usize>,
    /// Operations waiting for their preceding auto-fence, keyed by lane.
    pending_after_fence: HashMap<LaneId, (usize, SessionOp)>,
    /// All completions from every service, including auto-fences, annotated
    /// with the index of the service that produced them.
    pub completed: Vec<(usize, CompletedRecord)>,
    /// Aggregate session statistics.
    pub stats: SessionStats,
}

impl<M: 'static> ComposedRunner<M> {
    /// Creates a composed runner over the given services.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty or two services share a
    /// [`Service::service_id`] (see the type-level docs: one service per
    /// protocol).
    pub fn new(
        services: Vec<Box<dyn Service<Msg = M>>>,
        sessions: SessionConfig,
        stop_issuing_at: SimTime,
        workload: Box<dyn MultiServiceWorkload>,
    ) -> Self {
        assert!(!services.is_empty(), "a composed runner needs at least one service");
        let mut ids: Vec<_> = services.iter().map(|s| s.service_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            services.len(),
            "composed services must have distinct service ids (one store per protocol)"
        );
        ComposedRunner {
            services,
            planner: FencePlanner::new(),
            workload_rng: sessions.workload_seed.map(SmallRng::seed_from_u64),
            scheduler: SessionScheduler::new(sessions, stop_issuing_at),
            workload,
            timers: HashMap::new(),
            next_timer: 0,
            outstanding: HashMap::new(),
            pending_after_fence: HashMap::new(),
            completed: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// Fence statistics from the `libRSS` planner: how many operation starts
    /// required a fence at the previous service.
    pub fn fence_stats(&self) -> FenceStats {
        self.planner.stats()
    }

    /// The services driven by this runner.
    pub fn services(&self) -> &[Box<dyn Service<Msg = M>>] {
        &self.services
    }

    fn arm(&mut self, ctx: &mut Context<M>, delay: SimDuration, wake: Wake) {
        let tag = runner_tag(&mut self.next_timer);
        self.timers.insert(tag, wake);
        ctx.set_timer(delay, tag);
    }

    fn issue_batch(&mut self, ctx: &mut Context<M>, session: u64) {
        let batch = self.scheduler.batch();
        self.outstanding.insert(session, batch);
        self.stats.batches += 1;
        for slot in 0..batch {
            let lane = LaneId { session, slot: slot as u32 };
            let (target, op) = match &mut self.workload_rng {
                Some(rng) => self.workload.next_targeted_op(rng, lane),
                None => self.workload.next_targeted_op(ctx.rng(), lane),
            };
            assert!(target < self.services.len(), "workload targeted unknown service {target}");
            // libRSS: fence the previous service before the first operation at
            // a different one (Figure 3). The fence runs first; the operation
            // is parked until the fence's completion drains back. The planner
            // is keyed per LANE: each pipeline slot is its own application
            // process, so its service-switch history — and therefore its
            // fences — must be its own.
            match self.planner.on_transaction(lane.key(), target) {
                Some(prev) => {
                    self.pending_after_fence.insert(lane, (target, op));
                    self.services[prev].submit(ctx, lane, SessionOp::Fence);
                }
                None => self.services[target].submit(ctx, lane, op),
            }
        }
    }

    /// Drops the per-session state of a departed session: every lane's fence
    /// history in the planner and the services' per-session protocol state.
    fn end_session(&mut self, session: u64) {
        for slot in 0..self.scheduler.batch() {
            self.planner.end_session(LaneId { session, slot: slot as u32 }.key());
        }
        for s in &mut self.services {
            s.end_session(session);
        }
    }

    /// Collects completions from every service. Auto-fence completions
    /// release the parked operation instead of finishing the slot, so the
    /// loop keeps draining until quiescence (a fence can complete
    /// synchronously, e.g. Gryff-RSC with no pending dependency).
    fn drain(&mut self, ctx: &mut Context<M>) {
        loop {
            let mut progressed = false;
            for idx in 0..self.services.len() {
                for rec in self.services[idx].drain_completed() {
                    progressed = true;
                    let lane = LaneId { session: rec.session, slot: rec.slot };
                    let release = if rec.kind.is_fence() && !rec.orphan {
                        self.pending_after_fence.remove(&lane)
                    } else {
                        None
                    };
                    let finishes_slot = release.is_none() && !rec.orphan;
                    self.completed.push((idx, rec));
                    if let Some((target, op)) = release {
                        self.services[target].submit(ctx, lane, op);
                        continue;
                    }
                    if finishes_slot {
                        self.stats.ops_completed += 1;
                        if let Some(n) = self.outstanding.get_mut(&lane.session) {
                            *n -= 1;
                            if *n == 0 {
                                self.outstanding.remove(&lane.session);
                                let timers = self.scheduler.on_batch_complete(
                                    ctx.now(),
                                    ctx.rng(),
                                    lane.session,
                                );
                                for (delay, wake) in timers {
                                    self.arm(ctx, delay, wake);
                                }
                                if !self.scheduler.is_active(lane.session) {
                                    self.end_session(lane.session);
                                }
                            }
                        }
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }
}

impl<M: Clone + 'static> Node<M> for ComposedRunner<M> {
    fn on_start(&mut self, ctx: &mut Context<M>) {
        for s in &mut self.services {
            s.on_start(ctx);
        }
        let timers = self.scheduler.on_start(ctx.rng());
        for (delay, wake) in timers {
            self.arm(ctx, delay, wake);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M) {
        // Exactly one service understands a given wire message (it narrows
        // via TryInto and ignores the other protocols' variants), so offering
        // a clone to each service delivers it precisely once.
        for s in &mut self.services {
            s.on_message(ctx, from, msg.clone());
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<M>, tag: u64) {
        if tag & 1 == 1 {
            // Service-owned timer: each service accepts only tags in its own
            // namespace (see `MappedService::with_tag_namespace`).
            for s in &mut self.services {
                s.on_timer(ctx, tag);
            }
        } else {
            let Some(wake) = self.timers.remove(&tag) else { return };
            let (issue, timers) = self.scheduler.on_wake(ctx.now(), ctx.rng(), wake);
            for (delay, next) in timers {
                self.arm(ctx, delay, next);
            }
            for session in issue {
                self.issue_batch(ctx, session);
            }
            // The stop-issuing cutoff retires sessions at wake time.
            if let Wake::Issue { session } = wake {
                if !self.scheduler.is_active(session) && !self.outstanding.contains_key(&session) {
                    self.end_session(session);
                }
            }
        }
        self.drain(ctx);
    }
}
