//! Session runners: the simulation nodes that drive services with sessions.
//!
//! [`SessionRunner`] drives a single service — the building block the
//! Spanner-RSS and Gryff-RSC harnesses assemble client nodes from.
//! [`ComposedRunner`] drives *several* services behind one wire type, with
//! `libRSS` fence planning ([`regular_librss::FencePlanner`]) inserting a
//! real-time fence at the previous service whenever a session switches
//! services (Section 4.1, Figure 3).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use regular_core::fence::FenceStats;
use regular_librss::{CausalContext, FencePlanner};
use regular_sim::engine::{Context, Node, NodeId};
use regular_sim::time::{SimDuration, SimTime};

use crate::config::SessionConfig;
use crate::op::{MultiServiceWorkload, SessionOp, SessionWorkload};
use crate::record::{CompletedRecord, LaneId};
use crate::scheduler::{SessionScheduler, Wake};
use crate::service::{runner_tag, Service};

/// Aggregate counters a runner keeps about its sessions.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Batches issued.
    pub batches: u64,
    /// Non-orphan operations completed.
    pub ops_completed: u64,
    /// Causal contexts exported for out-of-band handoff (Section 4.2).
    pub contexts_exported: u64,
    /// Causal contexts imported from another session's handoff.
    pub contexts_imported: u64,
    /// Sessions that arrived (partly-open and open-loop drivers), shed ones
    /// included — the *offered* load.
    pub arrivals: u64,
    /// Open-loop arrivals shed over the in-flight cap (see
    /// [`crate::SessionDriver::OpenLoop`]). Nonzero means the run was past
    /// the saturation knee.
    pub shed: u64,
}

impl SessionStats {
    /// Accumulates another runner's counters (for cluster-wide aggregation).
    pub fn merge(&mut self, other: &SessionStats) {
        self.batches += other.batches;
        self.ops_completed += other.ops_completed;
        self.contexts_exported += other.contexts_exported;
        self.contexts_imported += other.contexts_imported;
        self.arrivals += other.arrivals;
        self.shed += other.shed;
    }
}

/// One out-of-band causal handoff between two lanes (Section 4.2): the
/// exporter's context was serialized at `exported_at` and imported by the
/// receiving lane at `imported_at` — a real-time external communication the
/// recorded history must stay consistent with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffRecord {
    /// The exporting lane.
    pub from: LaneId,
    /// When the context was exported.
    pub exported_at: SimTime,
    /// The importing lane.
    pub to: LaneId,
    /// When the context was imported (before the lane's next operation).
    pub imported_at: SimTime,
}

/// A simulation node driving one [`Service`] with configured sessions.
pub struct SessionRunner<S: Service> {
    /// The protocol service front-end (public so harnesses can read its
    /// protocol-specific statistics after the run).
    pub service: S,
    scheduler: SessionScheduler,
    workload: Box<dyn SessionWorkload>,
    /// Dedicated workload RNG (see [`SessionConfig::workload_seed`]); `None`
    /// draws from the engine RNG.
    workload_rng: Option<SmallRng>,
    timers: HashMap<u64, Wake>,
    next_timer: u64,
    outstanding: HashMap<u64, usize>,
    /// All completions, including warm-up and orphans, in completion order.
    pub completed: Vec<CompletedRecord>,
    /// Aggregate session statistics.
    pub stats: SessionStats,
}

impl<S: Service> SessionRunner<S> {
    /// Creates a runner issuing batches until `stop_issuing_at`.
    pub fn new(
        service: S,
        sessions: SessionConfig,
        stop_issuing_at: SimTime,
        workload: Box<dyn SessionWorkload>,
    ) -> Self {
        SessionRunner {
            service,
            workload_rng: sessions.workload_seed.map(SmallRng::seed_from_u64),
            scheduler: SessionScheduler::new(sessions, stop_issuing_at),
            workload,
            timers: HashMap::new(),
            next_timer: 0,
            outstanding: HashMap::new(),
            completed: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    fn arm(&mut self, ctx: &mut Context<S::Msg>, delay: SimDuration, wake: Wake) {
        let tag = runner_tag(&mut self.next_timer);
        self.timers.insert(tag, wake);
        ctx.set_timer(delay, tag);
    }

    fn issue_batch(&mut self, ctx: &mut Context<S::Msg>, session: u64) {
        let batch = self.scheduler.batch();
        self.outstanding.insert(session, batch);
        self.stats.batches += 1;
        for slot in 0..batch {
            let op = match &mut self.workload_rng {
                Some(rng) => self.workload.next_op(rng),
                None => self.workload.next_op(ctx.rng()),
            };
            self.service.submit(ctx, LaneId { session, slot: slot as u32 }, op);
        }
    }

    /// Collects completions; when a session's batch fully completes, asks the
    /// scheduler how the session continues. Loops because a submission issued
    /// from a completion (none today, but cheap to be safe) may itself
    /// complete synchronously.
    fn drain(&mut self, ctx: &mut Context<S::Msg>) {
        loop {
            let records = self.service.drain_completed();
            if records.is_empty() {
                return;
            }
            for rec in records {
                if !rec.orphan {
                    self.stats.ops_completed += 1;
                    if let Some(n) = self.outstanding.get_mut(&rec.session) {
                        *n -= 1;
                        if *n == 0 {
                            self.outstanding.remove(&rec.session);
                            let timers =
                                self.scheduler.on_batch_complete(ctx.now(), ctx.rng(), rec.session);
                            for (delay, wake) in timers {
                                self.arm(ctx, delay, wake);
                            }
                            if !self.scheduler.is_active(rec.session) {
                                self.service.end_session(rec.session);
                            }
                        }
                    }
                }
                self.completed.push(rec);
            }
        }
    }
}

impl<S: Service> Node<S::Msg> for SessionRunner<S> {
    fn on_start(&mut self, ctx: &mut Context<S::Msg>) {
        self.service.on_start(ctx);
        let timers = self.scheduler.on_start(ctx.rng());
        for (delay, wake) in timers {
            self.arm(ctx, delay, wake);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<S::Msg>, from: NodeId, msg: S::Msg) {
        self.service.on_message(ctx, from, msg);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<S::Msg>, tag: u64) {
        if tag & 1 == 1 {
            self.service.on_timer(ctx, tag);
        } else {
            let Some(wake) = self.timers.remove(&tag) else { return };
            let (issue, timers) = self.scheduler.on_wake(ctx.now(), ctx.rng(), wake);
            self.stats.arrivals = self.scheduler.arrivals();
            self.stats.shed = self.scheduler.shed();
            for (delay, next) in timers {
                self.arm(ctx, delay, next);
            }
            for session in issue {
                self.issue_batch(ctx, session);
            }
            // The stop-issuing cutoff retires sessions at wake time.
            if let Wake::Issue { session } = wake {
                if !self.scheduler.is_active(session) && !self.outstanding.contains_key(&session) {
                    self.service.end_session(session);
                }
            }
        }
        self.drain(ctx);
    }
}

/// A simulation node whose sessions hop between several services (all lifted
/// to one wire type `M`, typically via [`crate::MappedService`]), fencing the
/// previous service on every switch exactly as `libRSS` prescribes.
///
/// # One service per protocol
///
/// Incoming wire messages are offered to every service; each service accepts
/// the variants its protocol understands and ignores the rest. That routing
/// is only unambiguous when **at most one service speaks each protocol
/// message type**: two instances of the same protocol would both accept the
/// same replies (their operation identifiers carry no store discriminator)
/// and silently corrupt each other's in-flight state. [`ComposedRunner::new`]
/// enforces the cheap proxy of that rule — distinct
/// [`Service::service_id`]s — and composing two same-protocol stores
/// additionally requires a wire type whose conversions separate them.
pub struct ComposedRunner<M: 'static> {
    services: Vec<Box<dyn Service<Msg = M>>>,
    planner: FencePlanner,
    scheduler: SessionScheduler,
    workload: Box<dyn MultiServiceWorkload>,
    /// Dedicated workload RNG (see [`SessionConfig::workload_seed`]); `None`
    /// draws from the engine RNG.
    workload_rng: Option<SmallRng>,
    timers: HashMap<u64, Wake>,
    next_timer: u64,
    outstanding: HashMap<u64, usize>,
    /// Operations waiting for their preceding auto-fence, keyed by lane.
    pending_after_fence: HashMap<LaneId, (usize, SessionOp)>,
    /// Export a causal context every this many completed batches (see
    /// [`ComposedRunner::with_context_handoff`]); `None` disables handoffs.
    handoff_every: Option<u64>,
    /// An exported context waiting for a *different* session to pick it up.
    pending_context: Option<(CausalContext, LaneId, SimTime)>,
    /// Every completed handoff, for external-communication edges in the
    /// recorded history.
    pub handoffs: Vec<HandoffRecord>,
    /// All completions from every service, including auto-fences, annotated
    /// with the index of the service that produced them.
    pub completed: Vec<(usize, CompletedRecord)>,
    /// Aggregate session statistics.
    pub stats: SessionStats,
}

impl<M: 'static> ComposedRunner<M> {
    /// Creates a composed runner over the given services.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty or two services share a
    /// [`Service::service_id`] (see the type-level docs: one service per
    /// protocol).
    pub fn new(
        services: Vec<Box<dyn Service<Msg = M>>>,
        sessions: SessionConfig,
        stop_issuing_at: SimTime,
        workload: Box<dyn MultiServiceWorkload>,
    ) -> Self {
        assert!(!services.is_empty(), "a composed runner needs at least one service");
        let mut ids: Vec<_> = services.iter().map(|s| s.service_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            services.len(),
            "composed services must have distinct service ids (one store per protocol)"
        );
        ComposedRunner {
            services,
            planner: FencePlanner::new(),
            workload_rng: sessions.workload_seed.map(SmallRng::seed_from_u64),
            scheduler: SessionScheduler::new(sessions, stop_issuing_at),
            workload,
            timers: HashMap::new(),
            next_timer: 0,
            outstanding: HashMap::new(),
            pending_after_fence: HashMap::new(),
            handoff_every: None,
            pending_context: None,
            handoffs: Vec::new(),
            completed: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// Enables periodic cross-process causal handoffs (Section 4.2): every
    /// `every` completed batches, the completing session exports its
    /// [`CausalContext`] (as a web server would serialize it into a
    /// response), and the next *other* session to issue a batch imports it —
    /// inheriting the exporter's last service (so `libRSS` fences it) and
    /// causal floor. Each handoff is recorded in
    /// [`ComposedRunner::handoffs`].
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_context_handoff(mut self, every: u64) -> Self {
        assert!(every > 0, "handoff cadence must be positive");
        self.handoff_every = Some(every);
        self
    }

    /// Fence statistics from the `libRSS` planner: how many operation starts
    /// required a fence at the previous service.
    pub fn fence_stats(&self) -> FenceStats {
        self.planner.stats()
    }

    /// Exports `lane`'s causal context for out-of-band propagation to
    /// another process (Section 4.2): the name of its last service and the
    /// maximum causal floor any service holds for its session.
    pub fn export_context(&self, lane: LaneId) -> CausalContext {
        let last_service = self
            .planner
            .export_context(lane.key())
            .map(|idx| self.services[idx].name().to_string());
        let min_timestamp =
            self.services.iter().map(|s| s.session_floor(lane.session)).max().unwrap_or(0);
        CausalContext { last_service, min_timestamp }
    }

    /// Imports a causal context into `lane`: its next operation fences the
    /// sender's last service exactly as if this lane had issued its previous
    /// operation there, and every service raises the session's causal floor
    /// to the sender's. Unknown service names only propagate the floor (the
    /// sender's store is not deployed here; there is nothing to fence).
    pub fn import_context(&mut self, lane: LaneId, ctx: &CausalContext) {
        if let Some(name) = ctx.last_service.as_deref() {
            if let Some(idx) = self.services.iter().position(|s| s.name() == name) {
                self.planner.import_context(lane.key(), idx);
            }
        }
        if ctx.min_timestamp > 0 {
            for s in &mut self.services {
                s.raise_session_floor(lane.session, ctx.min_timestamp);
            }
        }
    }

    /// The services driven by this runner.
    pub fn services(&self) -> &[Box<dyn Service<Msg = M>>] {
        &self.services
    }

    /// Multi-line summary of in-flight runner and service state, for
    /// diagnosing stuck lanes under fault schedules.
    pub fn debug_inflight(&self) -> String {
        let mut outstanding: Vec<String> =
            self.outstanding.iter().map(|(s, n)| format!("{s}:{n}")).collect();
        outstanding.sort();
        let mut parked: Vec<String> = self
            .pending_after_fence
            .iter()
            .map(|(lane, (target, op))| {
                format!("{}/{} -> svc {} {:?}", lane.session, lane.slot, target, op)
            })
            .collect();
        parked.sort();
        let mut out = format!(
            "runner: outstanding=[{}] parked_after_fence=[{}] pending_context={} timers={}",
            outstanding.join(", "),
            parked.join("; "),
            self.pending_context.is_some(),
            self.timers.len()
        );
        for (idx, s) in self.services.iter().enumerate() {
            let line = s.debug_inflight();
            if !line.is_empty() {
                out.push_str(&format!("\n  svc {idx} ({}): {line}", s.name()));
            }
        }
        out
    }

    fn arm(&mut self, ctx: &mut Context<M>, delay: SimDuration, wake: Wake) {
        let tag = runner_tag(&mut self.next_timer);
        self.timers.insert(tag, wake);
        ctx.set_timer(delay, tag);
    }

    fn issue_batch(&mut self, ctx: &mut Context<M>, session: u64) {
        let batch = self.scheduler.batch();
        // A context exported by another session is imported by the next
        // session to act, before any of its operations start: the classic
        // web-server handoff, where the response carries the context and the
        // receiver's first request must respect it.
        if self.pending_context.as_ref().is_some_and(|(_, from, _)| from.session != session) {
            let (cctx, from, exported_at) = self.pending_context.take().expect("checked above");
            for slot in 0..batch {
                self.import_context(LaneId { session, slot: slot as u32 }, &cctx);
            }
            self.stats.contexts_imported += 1;
            self.handoffs.push(HandoffRecord {
                from,
                exported_at,
                to: LaneId { session, slot: 0 },
                imported_at: ctx.now(),
            });
        }
        self.outstanding.insert(session, batch);
        self.stats.batches += 1;
        for slot in 0..batch {
            let lane = LaneId { session, slot: slot as u32 };
            let (target, op) = match &mut self.workload_rng {
                Some(rng) => self.workload.next_targeted_op(rng, lane),
                None => self.workload.next_targeted_op(ctx.rng(), lane),
            };
            assert!(target < self.services.len(), "workload targeted unknown service {target}");
            // libRSS: fence the previous service before the first operation at
            // a different one (Figure 3). The fence runs first; the operation
            // is parked until the fence's completion drains back. The planner
            // is keyed per LANE: each pipeline slot is its own application
            // process, so its service-switch history — and therefore its
            // fences — must be its own.
            match self.planner.on_transaction(lane.key(), target) {
                Some(prev) => {
                    self.pending_after_fence.insert(lane, (target, op));
                    self.services[prev].submit(ctx, lane, SessionOp::Fence);
                }
                None => self.services[target].submit(ctx, lane, op),
            }
        }
    }

    /// Drops the per-session state of a departed session: every lane's fence
    /// history in the planner and the services' per-session protocol state.
    fn end_session(&mut self, session: u64) {
        for slot in 0..self.scheduler.batch() {
            self.planner.end_session(LaneId { session, slot: slot as u32 }.key());
        }
        for s in &mut self.services {
            s.end_session(session);
        }
    }

    /// Collects completions from every service. Auto-fence completions
    /// release the parked operation instead of finishing the slot, so the
    /// loop keeps draining until quiescence (a fence can complete
    /// synchronously, e.g. Gryff-RSC with no pending dependency).
    fn drain(&mut self, ctx: &mut Context<M>) {
        loop {
            let mut progressed = false;
            for idx in 0..self.services.len() {
                for rec in self.services[idx].drain_completed() {
                    progressed = true;
                    let lane = LaneId { session: rec.session, slot: rec.slot };
                    let release = if rec.kind.is_fence() && !rec.orphan {
                        self.pending_after_fence.remove(&lane)
                    } else {
                        None
                    };
                    let finishes_slot = release.is_none() && !rec.orphan;
                    self.completed.push((idx, rec));
                    if let Some((target, op)) = release {
                        self.services[target].submit(ctx, lane, op);
                        continue;
                    }
                    if finishes_slot {
                        self.stats.ops_completed += 1;
                        let mut batch_done = false;
                        if let Some(n) = self.outstanding.get_mut(&lane.session) {
                            *n -= 1;
                            if *n == 0 {
                                batch_done = true;
                                self.outstanding.remove(&lane.session);
                                let timers = self.scheduler.on_batch_complete(
                                    ctx.now(),
                                    ctx.rng(),
                                    lane.session,
                                );
                                for (delay, wake) in timers {
                                    self.arm(ctx, delay, wake);
                                }
                                if !self.scheduler.is_active(lane.session) {
                                    self.end_session(lane.session);
                                }
                            }
                        }
                        // Periodic out-of-band handoff: the completing
                        // session serializes its context; the next other
                        // session to issue a batch inherits it.
                        if batch_done {
                            if let Some(every) = self.handoff_every {
                                if self.stats.batches.is_multiple_of(every) {
                                    let from = LaneId { session: lane.session, slot: 0 };
                                    let exported = self.export_context(from);
                                    self.pending_context = Some((exported, from, ctx.now()));
                                    self.stats.contexts_exported += 1;
                                }
                            }
                        }
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }
}

impl<M: Clone + 'static> Node<M> for ComposedRunner<M> {
    fn on_start(&mut self, ctx: &mut Context<M>) {
        for s in &mut self.services {
            s.on_start(ctx);
        }
        let timers = self.scheduler.on_start(ctx.rng());
        for (delay, wake) in timers {
            self.arm(ctx, delay, wake);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M) {
        // Exactly one service understands a given wire message (it narrows
        // via TryInto and ignores the other protocols' variants), so offering
        // a clone to each service delivers it precisely once.
        for s in &mut self.services {
            s.on_message(ctx, from, msg.clone());
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<M>, tag: u64) {
        if tag & 1 == 1 {
            // Service-owned timer: each service accepts only tags in its own
            // namespace (see `MappedService::with_tag_namespace`).
            for s in &mut self.services {
                s.on_timer(ctx, tag);
            }
        } else {
            let Some(wake) = self.timers.remove(&tag) else { return };
            let (issue, timers) = self.scheduler.on_wake(ctx.now(), ctx.rng(), wake);
            self.stats.arrivals = self.scheduler.arrivals();
            self.stats.shed = self.scheduler.shed();
            for (delay, next) in timers {
                self.arm(ctx, delay, next);
            }
            for session in issue {
                self.issue_batch(ctx, session);
            }
            // The stop-issuing cutoff retires sessions at wake time.
            if let Wake::Issue { session } = wake {
                if !self.scheduler.is_active(session) && !self.outstanding.contains_key(&session) {
                    self.end_session(session);
                }
            }
        }
        self.drain(ctx);
    }
}
