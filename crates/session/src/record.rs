//! Completed-operation records and the shared history recorder.
//!
//! Every protocol client used to keep its own completion struct
//! (`CompletedTxn`, `CompletedOp`) and every harness its own conversion to
//! [`regular_core::History`]. The session layer unifies both: services emit
//! [`CompletedRecord`]s carrying the *core* operation kind and result
//! directly, and [`HistoryRecorder`] performs the one remaining conversion —
//! assigning application processes to `(client, session, slot)` lanes and
//! appending to the history — identically for every protocol.

use std::collections::HashMap;

use regular_core::history::History;
use regular_core::op::{OpKind, OpResult};
use regular_core::types::{OpId, ProcessId, ServiceId, Timestamp};
use regular_sim::time::{SimDuration, SimTime};

/// Identifies one pipeline slot of one session: the unit that behaves as a
/// sequential application process. With `batch = 1` every session has exactly
/// one lane (slot 0), reproducing the paper's session-per-process model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneId {
    /// The issuing session.
    pub session: u64,
    /// The pipeline slot within the session's batch.
    pub slot: u32,
}

impl LaneId {
    /// A dense `u64` key uniquely identifying this lane, for per-process
    /// bookkeeping keyed by plain integers (e.g.
    /// [`regular_librss::FencePlanner`]).
    pub fn key(self) -> u64 {
        debug_assert!(self.session < 1 << 32, "session ids stay within 32 bits");
        (self.session << 32) | u64::from(self.slot)
    }
}

/// Protocol ordering metadata attached to a completion, used by the harnesses
/// to derive serialization witnesses without protocol-specific structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessHint {
    /// No ordering metadata (e.g. fences in ordering-by-edges protocols).
    None,
    /// A globally comparable serialization timestamp (Spanner's commit and
    /// snapshot timestamps).
    Timestamp {
        /// The serialization timestamp in TrueTime microseconds.
        ts: u64,
    },
    /// A per-key carstamp (Gryff): totally ordered within a key only.
    Carstamp {
        /// Carstamp counter (advanced by base writes).
        count: u64,
        /// Writer id breaking counter ties.
        writer: u64,
        /// Read-modify-write counter extending the base value.
        rmwc: u64,
    },
}

/// One completed session operation, as reported by a [`crate::Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRecord {
    /// The service the operation executed at.
    pub service: ServiceId,
    /// The operation, in the consistency core's vocabulary.
    pub kind: OpKind,
    /// The returned result.
    pub result: OpResult,
    /// Invocation instant (first attempt).
    pub invoke: SimTime,
    /// Completion instant.
    pub finish: SimTime,
    /// The issuing session.
    pub session: u64,
    /// The issuing pipeline slot within the session.
    pub slot: u32,
    /// Number of protocol attempts (1 = first try).
    pub attempts: u32,
    /// Wide-area round trips the operation needed (protocols that track it).
    pub rounds: u8,
    /// True if the client had already given up on this operation when it
    /// completed. Orphaned completions are part of the execution history
    /// (their effects are visible) but are excluded from latency measurements
    /// and are not ordered within their session.
    pub orphan: bool,
    /// Protocol ordering metadata for witness assembly.
    pub witness: WitnessHint,
}

impl CompletedRecord {
    /// The operation's latency.
    pub fn latency(&self) -> SimDuration {
        self.finish.since(self.invoke)
    }

    /// The serialization timestamp, if the protocol provided one.
    pub fn witness_ts(&self) -> Option<u64> {
        match self.witness {
            WitnessHint::Timestamp { ts } => Some(ts),
            _ => None,
        }
    }
}

/// Builds a [`History`] from completed records, assigning one
/// [`ProcessId`] per `(client, session, slot)` lane and a fresh process to
/// every orphaned completion (the client had already moved on, so the
/// operation is not ordered within its session).
#[derive(Debug, Default)]
pub struct HistoryRecorder {
    history: History,
    process_of: HashMap<(u64, u64, u32), ProcessId>,
    /// Per-process `(invoke_us, op)` lists, in process-creation order, for
    /// [`HistoryRecorder::process_order_edges`].
    per_process: Vec<Vec<(u64, OpId)>>,
    orphan_pid: u32,
}

/// Orphan processes are numbered from here, far above any lane process.
const ORPHAN_PID_BASE: u32 = 1_000_000;

impl HistoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder {
            history: History::new(),
            process_of: HashMap::new(),
            per_process: Vec::new(),
            orphan_pid: ORPHAN_PID_BASE,
        }
    }

    /// Records one completion from client node `client` and returns its op id.
    pub fn record(&mut self, client: u64, rec: &CompletedRecord) -> OpId {
        let pid = if rec.orphan {
            self.orphan_pid += 1;
            ProcessId(self.orphan_pid)
        } else {
            let next_pid = ProcessId((self.process_of.len() + 1) as u32);
            *self.process_of.entry((client, rec.session, rec.slot)).or_insert(next_pid)
        };
        let id = self.history.add_complete(
            pid,
            rec.service,
            rec.kind.clone(),
            Timestamp(rec.invoke.as_micros()),
            Timestamp(rec.finish.as_micros()),
            rec.result.clone(),
        );
        if !rec.orphan {
            let slot = pid.0 as usize - 1;
            if self.per_process.len() <= slot {
                self.per_process.resize(slot + 1, Vec::new());
            }
            self.per_process[slot].push((rec.invoke.as_micros(), id));
        }
        id
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The process assigned to a non-orphan lane, if it has recorded any
    /// operation.
    pub fn process_of(&self, client: u64, session: u64, slot: u32) -> Option<ProcessId> {
        self.process_of.get(&(client, session, slot)).copied()
    }

    /// Records an out-of-band communication between two lanes (a
    /// `CausalContext` handoff, Section 4.2) as an external-communication
    /// edge of the history. Returns `false` (recording nothing) if either
    /// lane never completed an operation.
    pub fn record_external_communication(
        &mut self,
        from: (u64, u64, u32),
        sent_us: u64,
        to: (u64, u64, u32),
        received_us: u64,
    ) -> bool {
        let (Some(from_pid), Some(to_pid)) =
            (self.process_of(from.0, from.1, from.2), self.process_of(to.0, to.1, to.2))
        else {
            return false;
        };
        self.history.add_external_communication(
            from_pid,
            Timestamp(sent_us),
            to_pid,
            Timestamp(received_us),
        );
        true
    }

    /// The id of the lane's last operation that completed at or before
    /// `at_us` — the exporter side of a causal-handoff constraint edge.
    pub fn last_completed_before(
        &self,
        client: u64,
        session: u64,
        slot: u32,
        at_us: u64,
    ) -> Option<OpId> {
        let pid = self.process_of(client, session, slot)?;
        self.per_process
            .get(pid.0 as usize - 1)?
            .iter()
            .filter(|(_, id)| self.history.op(*id).response.is_some_and(|r| r.0 <= at_us))
            .max_by_key(|(invoke, _)| *invoke)
            .map(|(_, id)| *id)
    }

    /// The id of the lane's first operation invoked at or after `at_us` —
    /// the importer side of a causal-handoff constraint edge.
    pub fn first_invoked_after(
        &self,
        client: u64,
        session: u64,
        slot: u32,
        at_us: u64,
    ) -> Option<OpId> {
        let pid = self.process_of(client, session, slot)?;
        self.per_process
            .get(pid.0 as usize - 1)?
            .iter()
            .filter(|(invoke, _)| *invoke >= at_us)
            .min_by_key(|(invoke, _)| *invoke)
            .map(|(_, id)| *id)
    }

    /// Consecutive-operation edges of every lane process, ordered by
    /// invocation time: the process-order constraints used by edge-based
    /// witness assembly ([`regular_core::checker::assemble::assemble_witness`]).
    pub fn process_order_edges(&self) -> Vec<(OpId, OpId)> {
        let mut edges = Vec::new();
        for ops in &self.per_process {
            let mut items = ops.clone();
            items.sort_unstable();
            for w in items.windows(2) {
                edges.push((w[0].1, w[1].1));
            }
        }
        edges
    }

    /// Finishes recording, returning the history.
    pub fn into_history(self) -> History {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regular_core::types::{Key, Value};

    fn write_rec(session: u64, slot: u32, key: u64, at: u64, orphan: bool) -> CompletedRecord {
        CompletedRecord {
            service: ServiceId::KV,
            kind: OpKind::Write { key: Key(key), value: Value(at + 1) },
            result: OpResult::Ack,
            invoke: SimTime::from_micros(at),
            finish: SimTime::from_micros(at + 10),
            session,
            slot,
            attempts: 1,
            rounds: 1,
            orphan,
            witness: WitnessHint::Timestamp { ts: at },
        }
    }

    #[test]
    fn lanes_become_processes_in_first_seen_order() {
        let mut r = HistoryRecorder::new();
        let a = r.record(0, &write_rec(0, 0, 1, 0, false));
        let b = r.record(0, &write_rec(1, 0, 1, 20, false));
        let c = r.record(0, &write_rec(0, 0, 1, 40, false));
        let d = r.record(1, &write_rec(0, 0, 1, 60, false));
        let h = r.into_history();
        assert_eq!(h.op(a).process, ProcessId(1));
        assert_eq!(h.op(b).process, ProcessId(2));
        assert_eq!(h.op(c).process, ProcessId(1), "same lane, same process");
        assert_eq!(h.op(d).process, ProcessId(3), "another client is another process");
    }

    #[test]
    fn slots_are_distinct_processes() {
        let mut r = HistoryRecorder::new();
        let a = r.record(0, &write_rec(0, 0, 1, 0, false));
        let b = r.record(0, &write_rec(0, 1, 1, 0, false));
        let h = r.into_history();
        assert_ne!(h.op(a).process, h.op(b).process);
        // Concurrent slots must not trip the one-outstanding-op validation.
        assert!(h.validate().is_ok());
    }

    #[test]
    fn orphans_get_fresh_high_processes() {
        let mut r = HistoryRecorder::new();
        r.record(0, &write_rec(0, 0, 1, 0, false));
        let o1 = r.record(0, &write_rec(0, 0, 1, 5, true));
        let o2 = r.record(0, &write_rec(0, 0, 1, 6, true));
        let h = r.history();
        assert_eq!(h.op(o1).process, ProcessId(ORPHAN_PID_BASE + 1));
        assert_eq!(h.op(o2).process, ProcessId(ORPHAN_PID_BASE + 2));
    }

    #[test]
    fn process_order_edges_follow_invocation_order() {
        let mut r = HistoryRecorder::new();
        let a = r.record(0, &write_rec(0, 0, 1, 0, false));
        let b = r.record(0, &write_rec(0, 0, 2, 20, false));
        let c = r.record(0, &write_rec(1, 0, 3, 10, false));
        let orphan = r.record(0, &write_rec(0, 0, 4, 30, true));
        let edges = r.process_order_edges();
        assert!(edges.contains(&(a, b)));
        assert!(!edges.iter().any(|(x, y)| *x == c || *y == c), "single-op lane has no edges");
        assert!(!edges.iter().any(|(x, y)| *x == orphan || *y == orphan));
    }
}
