//! Typed session operations and workload sources.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use regular_core::types::Key;

use crate::record::LaneId;

/// One operation a session issues, independent of the serving protocol.
///
/// Protocols interpret the kinds they support and *adapt* the rest where a
/// faithful mapping exists (a transactional store serves `Read` as a
/// single-key read-only transaction; see each service's documentation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOp {
    /// Read a single key.
    Read {
        /// Key to read.
        key: Key,
    },
    /// Write a single key (the service assigns a fresh unique value, keeping
    /// runs deterministic and reads-from edges unambiguous).
    Write {
        /// Key to write.
        key: Key,
    },
    /// Atomically read-modify-write a single key.
    Rmw {
        /// Key to modify.
        key: Key,
    },
    /// A read-only transaction over a set of keys.
    RoTxn {
        /// Keys read.
        keys: Vec<Key>,
    },
    /// A read-write transaction writing the given keys.
    RwTxn {
        /// Keys written.
        keys: Vec<Key>,
    },
    /// A real-time fence at the target service (Section 4.1).
    Fence,
}

impl SessionOp {
    /// True for operations that cannot change service state.
    pub fn is_read_only(&self) -> bool {
        matches!(self, SessionOp::Read { .. } | SessionOp::RoTxn { .. })
    }

    /// True for the real-time fence.
    pub fn is_fence(&self) -> bool {
        matches!(self, SessionOp::Fence)
    }
}

/// A source of operations for sessions driving a single service.
pub trait SessionWorkload: Send + 'static {
    /// Produces the next operation.
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp;
}

/// A source of `(service index, operation)` pairs for sessions hopping
/// between the services of a [`crate::ComposedRunner`].
///
/// The issuing lane is passed so implementations can keep *per-lane* access
/// patterns: each lane is its own application process, and the service-switch
/// sequence (which drives `libRSS` fencing) must be a property of the
/// process, not of the node-wide interleaving.
pub trait MultiServiceWorkload: Send + 'static {
    /// Produces the next operation for `lane` and the service it targets.
    fn next_targeted_op(&mut self, rng: &mut SmallRng, lane: LaneId) -> (usize, SessionOp);
}

/// Every single-service workload is trivially a multi-service workload
/// targeting service 0.
impl<W: SessionWorkload> MultiServiceWorkload for W {
    fn next_targeted_op(&mut self, rng: &mut SmallRng, _lane: LaneId) -> (usize, SessionOp) {
        (0, SessionWorkload::next_op(self, rng))
    }
}

/// A scripted workload replaying a fixed operation list (tests, examples, and
/// the Figure 4 micro-experiment). Exhausted scripts degrade to harmless
/// single-key reads of key 0; size the run so this never happens.
#[derive(Debug, Clone)]
pub struct ScriptedSessionWorkload {
    ops: Vec<SessionOp>,
    next: usize,
}

impl ScriptedSessionWorkload {
    /// Creates a scripted workload from a fixed operation list.
    pub fn new(ops: Vec<SessionOp>) -> Self {
        ScriptedSessionWorkload { ops, next: 0 }
    }
}

impl SessionWorkload for ScriptedSessionWorkload {
    fn next_op(&mut self, _rng: &mut SmallRng) -> SessionOp {
        let op = self.ops.get(self.next).cloned().unwrap_or(SessionOp::Read { key: Key(0) });
        self.next += 1;
        op
    }
}

/// A multi-service workload where every *lane* cycles through the services,
/// hopping to the next one after `ops_per_service` of its own operations —
/// the per-process access pattern that makes `libRSS` fences load-bearing.
pub struct RoundRobinWorkload {
    services: Vec<Box<dyn SessionWorkload>>,
    ops_per_service: usize,
    /// Per-lane `(ops issued at current service, current service)` cursors.
    cursors: HashMap<LaneId, (usize, usize)>,
}

impl RoundRobinWorkload {
    /// Creates a round-robin workload over the given per-service sources.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty or `ops_per_service` is zero.
    pub fn new(services: Vec<Box<dyn SessionWorkload>>, ops_per_service: usize) -> Self {
        assert!(!services.is_empty(), "need at least one service workload");
        assert!(ops_per_service > 0, "ops_per_service must be positive");
        RoundRobinWorkload { services, ops_per_service, cursors: HashMap::new() }
    }
}

impl MultiServiceWorkload for RoundRobinWorkload {
    fn next_targeted_op(&mut self, rng: &mut SmallRng, lane: LaneId) -> (usize, SessionOp) {
        let (issued, current) = self.cursors.entry(lane).or_insert((0, 0));
        if *issued == self.ops_per_service {
            *issued = 0;
            *current = (*current + 1) % self.services.len();
        }
        *issued += 1;
        let service = *current;
        (service, self.services[service].next_op(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scripted_replays_then_degrades() {
        let mut w =
            ScriptedSessionWorkload::new(vec![SessionOp::Write { key: Key(1) }, SessionOp::Fence]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(w.next_op(&mut rng), SessionOp::Write { key: Key(1) });
        assert_eq!(w.next_op(&mut rng), SessionOp::Fence);
        assert_eq!(w.next_op(&mut rng), SessionOp::Read { key: Key(0) });
    }

    #[test]
    fn round_robin_hops_between_services_per_lane() {
        let a = ScriptedSessionWorkload::new(vec![SessionOp::Read { key: Key(1) }; 32]);
        let b = ScriptedSessionWorkload::new(vec![SessionOp::Write { key: Key(2) }; 32]);
        let mut w = RoundRobinWorkload::new(vec![Box::new(a), Box::new(b)], 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let lane0 = LaneId { session: 0, slot: 0 };
        let lane1 = LaneId { session: 1, slot: 0 };
        // Interleave two lanes arbitrarily: each still hops every 2 of its
        // OWN ops, regardless of the other lane's progress.
        let mut t0 = Vec::new();
        let mut t1 = Vec::new();
        for i in 0..12 {
            if i % 3 == 0 {
                t1.push(w.next_targeted_op(&mut rng, lane1).0);
            } else {
                t0.push(w.next_targeted_op(&mut rng, lane0).0);
            }
        }
        assert_eq!(t0, vec![0, 0, 1, 1, 0, 0, 1, 1]);
        assert_eq!(t1, vec![0, 0, 1, 1]);
    }

    #[test]
    fn read_only_and_fence_predicates() {
        assert!(SessionOp::Read { key: Key(1) }.is_read_only());
        assert!(SessionOp::RoTxn { keys: vec![Key(1)] }.is_read_only());
        assert!(!SessionOp::Write { key: Key(1) }.is_read_only());
        assert!(SessionOp::Fence.is_fence());
        assert!(!SessionOp::Fence.is_read_only());
    }
}
