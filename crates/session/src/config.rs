//! Session load-generation configuration.

use regular_sim::time::SimDuration;

/// How a client node's sessions arrive and pace themselves.
#[derive(Debug, Clone)]
pub enum SessionDriver {
    /// A fixed number of closed-loop sessions issuing batches back-to-back
    /// with the given think time (Figure 6 and the overhead experiments).
    ClosedLoop {
        /// Number of concurrent sessions.
        sessions: usize,
        /// Think time between a session's batches.
        think_time: SimDuration,
    },
    /// The partly-open model of Section 6: sessions arrive at `arrival_rate`
    /// per second, continue with probability `stay_probability` after each
    /// batch, and think for `think_time` in between.
    PartlyOpen {
        /// Session arrival rate (sessions per second) at this node.
        arrival_rate: f64,
        /// Probability a session issues another batch.
        stay_probability: f64,
        /// Think time between a session's batches.
        think_time: SimDuration,
    },
    /// A pure open-loop generator: Poisson arrivals at `arrival_rate` per
    /// second, each issuing exactly one batch then departing. Offered load
    /// is therefore independent of response time — the model that exposes a
    /// system's saturation knee, which closed-loop drivers self-throttle
    /// past. `max_in_flight` bounds the in-flight population: arrivals
    /// beyond it are shed (and counted), keeping an over-saturated run from
    /// queueing without bound.
    OpenLoop {
        /// Session arrival rate (sessions per second) at this node.
        arrival_rate: f64,
        /// Arrivals beyond this many concurrently active sessions are shed.
        max_in_flight: usize,
    },
}

/// Static configuration of the sessions a client node drives.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Arrival/pacing model.
    pub driver: SessionDriver,
    /// Operations issued per session turn without waiting (pipelining depth).
    /// `1` reproduces the paper's one-outstanding-operation sessions.
    pub batch: usize,
    /// Seed for a dedicated workload RNG. `None` (the default) draws
    /// workload operations from the engine's seeded RNG, which is
    /// deterministic for a fixed engine seed but couples the op stream to
    /// event interleaving; a fixed seed here makes the node's operation
    /// stream a pure function of `(workload, seed)` — what the conformance
    /// sweeps key their seed corpus on.
    pub workload_seed: Option<u64>,
}

impl SessionConfig {
    /// A closed-loop configuration with batch 1.
    pub fn closed_loop(sessions: usize, think_time: SimDuration) -> Self {
        SessionConfig {
            driver: SessionDriver::ClosedLoop { sessions, think_time },
            batch: 1,
            workload_seed: None,
        }
    }

    /// A partly-open configuration with batch 1.
    pub fn partly_open(arrival_rate: f64, stay_probability: f64, think_time: SimDuration) -> Self {
        SessionConfig {
            driver: SessionDriver::PartlyOpen { arrival_rate, stay_probability, think_time },
            batch: 1,
            workload_seed: None,
        }
    }

    /// An open-loop configuration with batch 1.
    ///
    /// # Panics
    ///
    /// Panics if `max_in_flight` is zero (every arrival would be shed).
    pub fn open_loop(arrival_rate: f64, max_in_flight: usize) -> Self {
        assert!(max_in_flight >= 1, "max_in_flight must be at least 1");
        SessionConfig {
            driver: SessionDriver::OpenLoop { arrival_rate, max_in_flight },
            batch: 1,
            workload_seed: None,
        }
    }

    /// Sets the pipelining depth.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// Gives the node's workload draws their own deterministic RNG stream,
    /// decoupled from the engine's event interleaving.
    pub fn with_workload_seed(mut self, seed: u64) -> Self {
        self.workload_seed = Some(seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let c = SessionConfig::closed_loop(4, SimDuration::from_millis(5)).with_batch(16);
        assert_eq!(c.batch, 16);
        assert!(matches!(c.driver, SessionDriver::ClosedLoop { sessions: 4, .. }));
        let p = SessionConfig::partly_open(2.0, 0.9, SimDuration::ZERO);
        assert_eq!(p.batch, 1);
        assert!(matches!(p.driver, SessionDriver::PartlyOpen { .. }));
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_is_rejected() {
        let _ = SessionConfig::closed_loop(1, SimDuration::ZERO).with_batch(0);
    }
}
