//! The protocol-agnostic session layer.
//!
//! The paper's central claim (Sections 4–7) is that RSS and RSC are *drop-in*
//! guarantees: an application programs against one session interface and the
//! `libRSS` meta-library makes the composition of independently-correct
//! services safe. This crate is that interface for the simulated deployments:
//!
//! * [`SessionOp`] — the typed operations a session can issue (reads, writes,
//!   read-modify-writes, read-only/read-write transactions, and real-time
//!   fences), independent of which protocol serves them.
//! * [`SessionConfig`] — how sessions generate load: the closed-loop and
//!   partly-open drivers of Section 6 plus a `batch` knob that pipelines
//!   several operations per session turn.
//! * [`Service`] — the protocol side of the contract: a named store that
//!   accepts session operations and reports completions as
//!   [`CompletedRecord`]s. `regular-spanner` and `regular-gryff` implement it.
//! * [`SessionRunner`] — a simulation node driving one service with sessions;
//!   [`ComposedRunner`] — a node whose sessions hop between *several*
//!   services, with `libRSS` fences inserted automatically on every switch
//!   (Figure 3).
//! * [`HistoryRecorder`] — the single conversion from completed records to a
//!   [`regular_core::History`], shared by every harness, replacing the
//!   per-protocol extraction code.
//!
//! # Batching
//!
//! A session with `batch = k` issues `k` operations back-to-back without
//! waiting (one pipeline *slot* per operation), waits for all of them, thinks,
//! and repeats. Slots are concurrent by construction, so each
//! `(session, slot)` *lane* is recorded as its own application process — the
//! unit over which the consistency models' per-process order is defined.

pub mod config;
pub mod op;
pub mod record;
pub mod runner;
pub mod scheduler;
pub mod service;

pub use config::{SessionConfig, SessionDriver};
pub use op::{
    MultiServiceWorkload, RoundRobinWorkload, ScriptedSessionWorkload, SessionOp, SessionWorkload,
};
pub use record::{CompletedRecord, HistoryRecorder, LaneId, WitnessHint};
pub use runner::{ComposedRunner, HandoffRecord, SessionRunner, SessionStats};
pub use scheduler::{SessionScheduler, Wake};
pub use service::{runner_tag, service_tag, MappedService, Service};
