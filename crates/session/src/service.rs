//! The protocol side of the session contract.
//!
//! A [`Service`] is a named store front-end living inside a client node: it
//! accepts typed [`SessionOp`]s for a lane, exchanges protocol messages with
//! the store's server nodes, and reports completions as
//! [`CompletedRecord`]s. `regular-spanner` and `regular-gryff` implement it;
//! [`crate::SessionRunner`] and [`crate::ComposedRunner`] drive it.
//!
//! # Timer-tag convention
//!
//! A runner and its service(s) share one engine timer namespace. Runners
//! allocate **even** tags ([`runner_tag`]); services allocate **odd** tags
//! ([`service_tag`]). `Node::on_timer` dispatches on the low bit.

use std::marker::PhantomData;

use regular_core::types::ServiceId;
use regular_sim::engine::{Context, NodeId};

use crate::op::SessionOp;
use crate::record::{CompletedRecord, LaneId};

/// Allocates the next runner-owned (even) timer tag.
pub fn runner_tag(counter: &mut u64) -> u64 {
    let tag = *counter << 1;
    *counter += 1;
    tag
}

/// Allocates the next service-owned (odd) timer tag.
pub fn service_tag(counter: &mut u64) -> u64 {
    let tag = (*counter << 1) | 1;
    *counter += 1;
    tag
}

/// A protocol client front-end serving session operations.
///
/// Implementations must:
/// * eventually report exactly one non-orphan [`CompletedRecord`] per
///   submitted operation (retries are internal),
/// * only allocate timer tags with [`service_tag`],
/// * tolerate `drain_completed` being called at any point.
pub trait Service: Send + 'static {
    /// The protocol's wire message type.
    type Msg: 'static;

    /// The service id recorded on this service's operations.
    fn service_id(&self) -> ServiceId;

    /// A stable name identifying the service (the `libRSS` registry key).
    fn name(&self) -> &str;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Submits one operation for `lane`. Completion is reported later through
    /// [`Service::drain_completed`] (possibly synchronously, e.g. a fence with
    /// nothing to do).
    fn submit(&mut self, ctx: &mut Context<Self::Msg>, lane: LaneId, op: SessionOp);

    /// Delivers a protocol message.
    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Delivers a service-owned (odd-tag) timer.
    fn on_timer(&mut self, _ctx: &mut Context<Self::Msg>, _tag: u64) {}

    /// Notifies the service that `session` has departed and will issue no
    /// further operations, so per-session protocol state (e.g. Spanner's
    /// `t_min`) can be dropped. Long partly-open runs spawn a fresh session
    /// id per arrival; without this hook that state grows without bound.
    fn end_session(&mut self, _session: u64) {}

    /// The session's causal floor at this service — the protocol-specific
    /// minimum timestamp capturing its causal past (Spanner-RSS's `t_min`).
    /// Exported into a [`regular_librss::CausalContext`] when the session's
    /// position is handed to another process (Section 4.2). Services without
    /// a timestamped floor return 0.
    fn session_floor(&self, _session: u64) -> u64 {
        0
    }

    /// Raises the session's causal floor from an imported
    /// [`regular_librss::CausalContext`]: every transaction the session
    /// subsequently issues must observe at least this much of the sender's
    /// causal past. Services without a timestamped floor ignore it.
    fn raise_session_floor(&mut self, _session: u64, _floor: u64) {}

    /// Takes the operations completed since the last call.
    fn drain_completed(&mut self) -> Vec<CompletedRecord>;

    /// One-line summary of in-flight protocol state, for diagnosing stuck
    /// runs (lanes that stop completing under fault schedules). Purely
    /// informational; the default reports nothing.
    fn debug_inflight(&self) -> String {
        String::new()
    }
}

/// Lifts a `Service` with message type `P` into a combined-message simulation
/// with wire type `M` (see [`regular_sim::compose`]): the service-facing
/// counterpart of [`regular_sim::Embedded`].
///
/// When several services share one node (a [`crate::ComposedRunner`]), each
/// allocates odd timer tags from its own counter, so the raw tags collide.
/// [`MappedService::with_tag_namespace`] interleaves them: service `i` of `n`
/// maps its `k`-th odd tag to the `(k*n + i)`-th odd tag of the node, and
/// inversely only accepts timers of its own residue class.
pub struct MappedService<S, M> {
    /// The wrapped protocol service.
    pub inner: S,
    /// `(index, count)` when sharing a node with `count` services.
    namespace: Option<(u64, u64)>,
    _wire: PhantomData<fn() -> M>,
}

impl<S, M> MappedService<S, M> {
    /// Wraps a protocol service for use behind wire type `M`.
    pub fn new(inner: S) -> Self {
        MappedService { inner, namespace: None, _wire: PhantomData }
    }

    /// Wraps a protocol service as service `index` of `count` sharing one
    /// node's timer namespace.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count` or `count` is zero.
    pub fn with_tag_namespace(inner: S, index: usize, count: usize) -> Self {
        assert!(count > 0 && index < count, "index must be within count");
        MappedService { inner, namespace: Some((index as u64, count as u64)), _wire: PhantomData }
    }

    /// Maps an inner odd tag into this service's namespace.
    fn map_out(&self) -> impl Fn(u64) -> u64 {
        let namespace = self.namespace;
        move |tag| match namespace {
            None => tag,
            Some((index, count)) => {
                debug_assert!(tag & 1 == 1, "services must allocate odd timer tags");
                (((tag >> 1) * count + index) << 1) | 1
            }
        }
    }

    /// Maps a node-level odd tag back to the inner tag, if it is ours.
    fn map_in(&self, tag: u64) -> Option<u64> {
        match self.namespace {
            None => Some(tag),
            Some((index, count)) => {
                let k = tag >> 1;
                (k % count == index).then_some(((k / count) << 1) | 1)
            }
        }
    }
}

impl<S, M> Service for MappedService<S, M>
where
    S: Service,
    M: TryInto<S::Msg> + 'static,
    S::Msg: Into<M>,
{
    type Msg = M;

    fn service_id(&self) -> ServiceId {
        self.inner.service_id()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_start(&mut self, ctx: &mut Context<M>) {
        let map = self.map_out();
        let inner = &mut self.inner;
        ctx.with_protocol_tagged(map, |c| inner.on_start(c));
    }

    fn submit(&mut self, ctx: &mut Context<M>, lane: LaneId, op: SessionOp) {
        let map = self.map_out();
        let inner = &mut self.inner;
        ctx.with_protocol_tagged(map, |c| inner.submit(c, lane, op));
    }

    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M) {
        if let Ok(p) = msg.try_into() {
            let map = self.map_out();
            let inner = &mut self.inner;
            ctx.with_protocol_tagged(map, |c| inner.on_message(c, from, p));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<M>, tag: u64) {
        if let Some(inner_tag) = self.map_in(tag) {
            let map = self.map_out();
            let inner = &mut self.inner;
            ctx.with_protocol_tagged(map, |c| inner.on_timer(c, inner_tag));
        }
    }

    fn end_session(&mut self, session: u64) {
        self.inner.end_session(session);
    }

    fn session_floor(&self, session: u64) -> u64 {
        self.inner.session_floor(session)
    }

    fn raise_session_floor(&mut self, session: u64, floor: u64) {
        self.inner.raise_session_floor(session, floor);
    }

    fn drain_completed(&mut self) -> Vec<CompletedRecord> {
        self.inner.drain_completed()
    }

    fn debug_inflight(&self) -> String {
        self.inner.debug_inflight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_namespaces_are_disjoint() {
        let mut rc = 0u64;
        let mut sc = 0u64;
        let runner: Vec<u64> = (0..4).map(|_| runner_tag(&mut rc)).collect();
        let service: Vec<u64> = (0..4).map(|_| service_tag(&mut sc)).collect();
        assert_eq!(runner, vec![0, 2, 4, 6]);
        assert_eq!(service, vec![1, 3, 5, 7]);
        assert!(runner.iter().all(|t| t & 1 == 0));
        assert!(service.iter().all(|t| t & 1 == 1));
    }

    #[test]
    fn shared_node_tag_namespaces_roundtrip_and_never_collide() {
        struct Dummy;
        impl Service for Dummy {
            type Msg = ();
            fn service_id(&self) -> ServiceId {
                ServiceId::KV
            }
            fn name(&self) -> &str {
                "dummy"
            }
            fn submit(&mut self, _: &mut Context<()>, _: LaneId, _: SessionOp) {}
            fn on_message(&mut self, _: &mut Context<()>, _: NodeId, _: ()) {}
            fn drain_completed(&mut self) -> Vec<CompletedRecord> {
                Vec::new()
            }
        }
        let a: MappedService<Dummy, ()> = MappedService::with_tag_namespace(Dummy, 0, 2);
        let b: MappedService<Dummy, ()> = MappedService::with_tag_namespace(Dummy, 1, 2);
        let mut counter_a = 0u64;
        let mut counter_b = 0u64;
        for _ in 0..8 {
            let ta = (a.map_out())(service_tag(&mut counter_a));
            let tb = (b.map_out())(service_tag(&mut counter_b));
            assert_ne!(ta, tb);
            assert!(ta & 1 == 1 && tb & 1 == 1, "mapped tags stay odd (service-owned)");
            // Each service recognizes exactly its own tags.
            assert!(a.map_in(ta).is_some() && a.map_in(tb).is_none());
            assert!(b.map_in(tb).is_some() && b.map_in(ta).is_none());
        }
        // Roundtrip: out then in restores the inner tag.
        let inner = 5u64; // an odd inner tag
        assert_eq!(b.map_in((b.map_out())(inner)), Some(inner));
    }
}
