//! The session lifecycle state machine shared by every client node.
//!
//! Both protocol crates used to hand-roll the same logic (staggered
//! closed-loop starts, Poisson arrivals, stay-probability departures,
//! stop-issuing cutoffs). The scheduler centralizes it: runners translate the
//! returned `(delay, Wake)` pairs into engine timers and call back on firing.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::Rng;
use regular_sim::time::{SimDuration, SimTime};

use crate::config::{SessionConfig, SessionDriver};

/// What a scheduler-armed timer means when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A session's think time expired: issue its next batch.
    Issue {
        /// The session to issue for.
        session: u64,
    },
    /// The next partly-open session arrives.
    Arrival,
}

/// Drives session arrivals, departures, and pacing for one client node.
#[derive(Debug)]
pub struct SessionScheduler {
    cfg: SessionConfig,
    stop_issuing_at: SimTime,
    active: HashSet<u64>,
    next_session: u64,
    arrivals: u64,
    shed: u64,
}

impl SessionScheduler {
    /// Creates a scheduler that stops issuing new batches at
    /// `stop_issuing_at` (in-flight operations drain normally).
    pub fn new(cfg: SessionConfig, stop_issuing_at: SimTime) -> Self {
        SessionScheduler {
            cfg,
            stop_issuing_at,
            active: HashSet::new(),
            next_session: 0,
            arrivals: 0,
            shed: 0,
        }
    }

    /// Sessions that arrived via `Wake::Arrival` (partly-open and
    /// open-loop), shed ones included — the *offered* load.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Open-loop arrivals shed because `max_in_flight` sessions were already
    /// active. `shed > 0` is the load generator saying the system is past
    /// its knee at this arrival rate.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// The configured pipelining depth.
    pub fn batch(&self) -> usize {
        self.cfg.batch
    }

    /// Number of currently active sessions.
    pub fn active_sessions(&self) -> usize {
        self.active.len()
    }

    /// True while `session` may still issue batches.
    pub fn is_active(&self, session: u64) -> bool {
        self.active.contains(&session)
    }

    fn spawn_session(&mut self) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.active.insert(id);
        id
    }

    /// Timers to arm when the simulation starts.
    pub fn on_start(&mut self, rng: &mut SmallRng) -> Vec<(SimDuration, Wake)> {
        match self.cfg.driver {
            SessionDriver::ClosedLoop { sessions, .. } => (0..sessions)
                .map(|_| {
                    let id = self.spawn_session();
                    // Stagger session starts slightly to avoid a thundering
                    // herd at time zero.
                    let jitter = SimDuration::from_micros(rng.gen_range(0..1_000));
                    (jitter, Wake::Issue { session: id })
                })
                .collect(),
            SessionDriver::PartlyOpen { arrival_rate, .. }
            | SessionDriver::OpenLoop { arrival_rate, .. } => {
                if arrival_rate > 0.0 {
                    vec![(exponential_delay(rng, arrival_rate), Wake::Arrival)]
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Handles a fired timer. Returns the sessions that must issue a batch
    /// *now* and any new timers to arm.
    pub fn on_wake(
        &mut self,
        now: SimTime,
        rng: &mut SmallRng,
        wake: Wake,
    ) -> (Vec<u64>, Vec<(SimDuration, Wake)>) {
        match wake {
            Wake::Issue { session } => {
                if now >= self.stop_issuing_at || !self.active.contains(&session) {
                    self.active.remove(&session);
                    (Vec::new(), Vec::new())
                } else {
                    (vec![session], Vec::new())
                }
            }
            Wake::Arrival => {
                if now >= self.stop_issuing_at {
                    return (Vec::new(), Vec::new());
                }
                self.arrivals += 1;
                // Open-loop arrivals keep coming regardless of what happens
                // to this one — that independence is the whole model — but an
                // arrival over the in-flight cap is shed, not queued.
                if let SessionDriver::OpenLoop { arrival_rate, max_in_flight } = self.cfg.driver {
                    let timers = vec![(exponential_delay(rng, arrival_rate), Wake::Arrival)];
                    if self.active.len() >= max_in_flight {
                        self.shed += 1;
                        return (Vec::new(), timers);
                    }
                    let id = self.spawn_session();
                    return (vec![id], timers);
                }
                let id = self.spawn_session();
                let timers = match self.cfg.driver {
                    SessionDriver::PartlyOpen { arrival_rate, .. } => {
                        vec![(exponential_delay(rng, arrival_rate), Wake::Arrival)]
                    }
                    SessionDriver::ClosedLoop { .. } | SessionDriver::OpenLoop { .. } => Vec::new(),
                };
                (vec![id], timers)
            }
        }
    }

    /// Handles a session completing its whole batch: decides whether the
    /// session continues (after thinking) or departs.
    pub fn on_batch_complete(
        &mut self,
        _now: SimTime,
        rng: &mut SmallRng,
        session: u64,
    ) -> Vec<(SimDuration, Wake)> {
        if !self.active.contains(&session) {
            return Vec::new();
        }
        match self.cfg.driver {
            SessionDriver::ClosedLoop { think_time, .. } => {
                vec![(think_time, Wake::Issue { session })]
            }
            SessionDriver::PartlyOpen { stay_probability, think_time, .. } => {
                if rng.gen_bool(stay_probability) {
                    vec![(think_time, Wake::Issue { session })]
                } else {
                    self.active.remove(&session);
                    Vec::new()
                }
            }
            // Open-loop sessions issue exactly one batch, then depart.
            SessionDriver::OpenLoop { .. } => {
                self.active.remove(&session);
                Vec::new()
            }
        }
    }
}

/// Draws an exponentially distributed inter-arrival delay for the given rate
/// (events per second).
fn exponential_delay(rng: &mut SmallRng, rate_per_sec: f64) -> SimDuration {
    let u: f64 = rng.gen_range(1e-12..1.0);
    let secs = -u.ln() / rate_per_sec;
    SimDuration::from_micros((secs * 1_000_000.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn closed_loop_spawns_all_sessions_with_jitter() {
        let mut s = SessionScheduler::new(
            SessionConfig::closed_loop(3, SimDuration::ZERO),
            SimTime::from_secs(10),
        );
        let mut r = rng();
        let timers = s.on_start(&mut r);
        assert_eq!(timers.len(), 3);
        assert_eq!(s.active_sessions(), 3);
        assert!(timers.iter().all(|(d, _)| *d < SimDuration::from_millis(1)));
        let (issue, more) = s.on_wake(SimTime::from_millis(1), &mut r, timers[0].1);
        assert_eq!(issue.len(), 1);
        assert!(more.is_empty());
        // After the batch completes, the session thinks then re-issues.
        let next = s.on_batch_complete(SimTime::from_millis(2), &mut r, issue[0]);
        assert_eq!(next.len(), 1);
    }

    #[test]
    fn stop_issuing_retires_sessions() {
        let mut s = SessionScheduler::new(
            SessionConfig::closed_loop(1, SimDuration::ZERO),
            SimTime::from_secs(1),
        );
        let mut r = rng();
        let timers = s.on_start(&mut r);
        let (issue, _) = s.on_wake(SimTime::from_secs(2), &mut r, timers[0].1);
        assert!(issue.is_empty(), "no batches after the cutoff");
        assert_eq!(s.active_sessions(), 0);
    }

    #[test]
    fn partly_open_arrivals_spawn_and_reschedule() {
        let mut s = SessionScheduler::new(
            SessionConfig::partly_open(10.0, 0.0, SimDuration::ZERO),
            SimTime::from_secs(10),
        );
        let mut r = rng();
        let timers = s.on_start(&mut r);
        assert_eq!(timers.len(), 1);
        let (issue, more) = s.on_wake(SimTime::from_millis(5), &mut r, Wake::Arrival);
        assert_eq!(issue.len(), 1);
        assert_eq!(more.len(), 1, "the next arrival is scheduled");
        // stay_probability 0: the session leaves after one batch.
        let next = s.on_batch_complete(SimTime::from_millis(6), &mut r, issue[0]);
        assert!(next.is_empty());
        assert_eq!(s.active_sessions(), 0);
    }

    #[test]
    fn open_loop_sessions_issue_once_and_depart() {
        let mut s = SessionScheduler::new(
            SessionConfig::open_loop(100.0, 8),
            SimTime::from_secs(10),
        );
        let mut r = rng();
        let timers = s.on_start(&mut r);
        assert_eq!(timers.len(), 1);
        let (issue, more) = s.on_wake(SimTime::from_millis(5), &mut r, Wake::Arrival);
        assert_eq!(issue.len(), 1);
        assert_eq!(more.len(), 1, "the next arrival is always scheduled");
        assert_eq!(s.arrivals(), 1);
        // One batch, then gone — no think timer, no re-issue.
        let next = s.on_batch_complete(SimTime::from_millis(6), &mut r, issue[0]);
        assert!(next.is_empty());
        assert_eq!(s.active_sessions(), 0);
        assert_eq!(s.shed(), 0);
    }

    #[test]
    fn open_loop_sheds_arrivals_over_the_cap() {
        let mut s = SessionScheduler::new(
            SessionConfig::open_loop(100.0, 2),
            SimTime::from_secs(10),
        );
        let mut r = rng();
        let _ = s.on_start(&mut r);
        let now = SimTime::from_millis(1);
        let (a, _) = s.on_wake(now, &mut r, Wake::Arrival);
        let (b, _) = s.on_wake(now, &mut r, Wake::Arrival);
        assert_eq!(a.len() + b.len(), 2);
        assert_eq!(s.active_sessions(), 2);
        // Third arrival while two are in flight: shed, but the arrival
        // process keeps going.
        let (c, more) = s.on_wake(now, &mut r, Wake::Arrival);
        assert!(c.is_empty());
        assert_eq!(more.len(), 1);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.arrivals(), 3);
        // A completion frees a slot; the next arrival is admitted again.
        let _ = s.on_batch_complete(now, &mut r, a.first().copied().unwrap_or(b[0]));
        let (d, _) = s.on_wake(now, &mut r, Wake::Arrival);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn zero_arrival_rate_schedules_nothing() {
        let mut s = SessionScheduler::new(
            SessionConfig::partly_open(0.0, 0.9, SimDuration::ZERO),
            SimTime::from_secs(10),
        );
        assert!(s.on_start(&mut rng()).is_empty());
    }
}
