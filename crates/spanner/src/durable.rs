//! WAL records and snapshot codec for a durable shard.
//!
//! Under `Durability::Wal` a shard logs every durable state transition —
//! prepares, 2PC coordinator steps, decisions, safe-time advances — as one of
//! these records, and checkpoints serialize the full durable state through
//! the same helpers. Crash recovery replays snapshot + records; nothing else
//! survives. The encodings are hand-rolled little-endian (the vendored
//! `serde` is derive-only) via [`regular_storage::codec`].

use regular_core::types::{Key, Value};
use regular_sim::engine::NodeId;
use regular_storage::codec::{Dec, Enc};
use regular_storage::device::NodeDisk;
use regular_storage::wal::Wal;
use regular_storage::MemDisk;

use crate::messages::{Ts, TxnId};
use crate::storage::MvccStore;

/// One durable state transition at a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardRecord {
    /// A transaction prepared here (participant role): its write locks are
    /// held and its writes buffered until the decision arrives.
    Prepare { txn: TxnId, t_prepare: Ts, t_ee: Ts, coordinator: NodeId, writes: Vec<(Key, Value)> },
    /// A commit/abort outcome became known here — as coordinator (decision
    /// log entry) or as participant (applying buffered writes).
    Decision { txn: TxnId, commit: bool, t_commit: Ts },
    /// This shard started coordinating a 2PC round.
    CoordBegin {
        txn: TxnId,
        client: NodeId,
        t_ee: Ts,
        writes_by_shard: Vec<(NodeId, Vec<(Key, Value)>)>,
    },
    /// A participant's vote arrived.
    CoordVote { txn: TxnId, shard: NodeId, t_prepare: Ts },
    /// The vote set completed: the commit timestamp is chosen and commit
    /// wait runs until `fire_at_us`. Recovery re-arms the release timer —
    /// without this record a recovered coordinator would hold a complete
    /// round forever (participant re-acks bounce off the duplicate guard).
    CoordTs { txn: TxnId, t_commit: Ts, fire_at_us: u64 },
    /// The safe time advanced to serve a read-only transaction. Losing this
    /// would let a post-recovery prepare slip under an answered read.
    SafeTime { ts: Ts },
}

const T_PREPARE_REC: u8 = 1;
const T_DECISION: u8 = 2;
const T_COORD_BEGIN: u8 = 3;
const T_COORD_VOTE: u8 = 4;
const T_COORD_TS: u8 = 5;
const T_SAFE_TIME: u8 = 6;

pub(crate) fn enc_txn(e: &mut Enc, txn: TxnId) {
    e.u64(txn.client as u64).u64(txn.seq);
}

pub(crate) fn dec_txn(d: &mut Dec) -> Option<TxnId> {
    Some(TxnId { client: d.u64()? as NodeId, seq: d.u64()? })
}

pub(crate) fn enc_writes(e: &mut Enc, writes: &[(Key, Value)]) {
    e.u32(writes.len() as u32);
    for (k, v) in writes {
        e.u64(k.0).u64(v.0);
    }
}

pub(crate) fn dec_writes(d: &mut Dec) -> Option<Vec<(Key, Value)>> {
    let n = d.u32()? as usize;
    let mut writes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        writes.push((Key(d.u64()?), Value(d.u64()?)));
    }
    Some(writes)
}

impl ShardRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ShardRecord::Prepare { txn, t_prepare, t_ee, coordinator, writes } => {
                e.u8(T_PREPARE_REC);
                enc_txn(&mut e, *txn);
                e.u64(*t_prepare).u64(*t_ee).u64(*coordinator as u64);
                enc_writes(&mut e, writes);
            }
            ShardRecord::Decision { txn, commit, t_commit } => {
                e.u8(T_DECISION);
                enc_txn(&mut e, *txn);
                e.bool(*commit).u64(*t_commit);
            }
            ShardRecord::CoordBegin { txn, client, t_ee, writes_by_shard } => {
                e.u8(T_COORD_BEGIN);
                enc_txn(&mut e, *txn);
                e.u64(*client as u64).u64(*t_ee);
                e.u32(writes_by_shard.len() as u32);
                for (node, writes) in writes_by_shard {
                    e.u64(*node as u64);
                    enc_writes(&mut e, writes);
                }
            }
            ShardRecord::CoordVote { txn, shard, t_prepare } => {
                e.u8(T_COORD_VOTE);
                enc_txn(&mut e, *txn);
                e.u64(*shard as u64).u64(*t_prepare);
            }
            ShardRecord::CoordTs { txn, t_commit, fire_at_us } => {
                e.u8(T_COORD_TS);
                enc_txn(&mut e, *txn);
                e.u64(*t_commit).u64(*fire_at_us);
            }
            ShardRecord::SafeTime { ts } => {
                e.u8(T_SAFE_TIME);
                e.u64(*ts);
            }
        }
        e.finish()
    }

    pub fn decode(bytes: &[u8]) -> Option<ShardRecord> {
        let mut d = Dec::new(bytes);
        let rec = match d.u8()? {
            T_PREPARE_REC => ShardRecord::Prepare {
                txn: dec_txn(&mut d)?,
                t_prepare: d.u64()?,
                t_ee: d.u64()?,
                coordinator: d.u64()? as NodeId,
                writes: dec_writes(&mut d)?,
            },
            T_DECISION => ShardRecord::Decision {
                txn: dec_txn(&mut d)?,
                commit: d.bool()?,
                t_commit: d.u64()?,
            },
            T_COORD_BEGIN => {
                let txn = dec_txn(&mut d)?;
                let client = d.u64()? as NodeId;
                let t_ee = d.u64()?;
                let n = d.u32()? as usize;
                let mut writes_by_shard = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let node = d.u64()? as NodeId;
                    writes_by_shard.push((node, dec_writes(&mut d)?));
                }
                ShardRecord::CoordBegin { txn, client, t_ee, writes_by_shard }
            }
            T_COORD_VOTE => ShardRecord::CoordVote {
                txn: dec_txn(&mut d)?,
                shard: d.u64()? as NodeId,
                t_prepare: d.u64()?,
            },
            T_COORD_TS => ShardRecord::CoordTs {
                txn: dec_txn(&mut d)?,
                t_commit: d.u64()?,
                fire_at_us: d.u64()?,
            },
            T_SAFE_TIME => ShardRecord::SafeTime { ts: d.u64()? },
            _ => return None,
        };
        if !d.is_empty() {
            return None;
        }
        Some(rec)
    }
}

/// Offline reconstruction of a shard's committed store from its device —
/// what the differential tests pin against the live shard's final state.
/// Replays the checkpoint snapshot, then every surviving record: prepares
/// buffer writes, commit decisions install them.
pub fn replay_store(disk: MemDisk) -> MvccStore {
    let mut node_disk = NodeDisk::Mem(disk);
    let log = Wal::read_log(&mut node_disk);
    let mut store = MvccStore::new();
    let mut prepared: Vec<(TxnId, Vec<(Key, Value)>)> = Vec::new();
    if let Some(snapshot) = &log.snapshot {
        if let Some(snap) = ShardSnapshot::decode(snapshot) {
            for (key, ts, value) in snap.versions {
                store.apply(key, ts, value);
            }
            for p in snap.prepared {
                prepared.push((p.txn, p.writes));
            }
        }
    }
    for bytes in &log.records {
        match ShardRecord::decode(bytes) {
            Some(ShardRecord::Prepare { txn, writes, .. })
                if !prepared.iter().any(|(t, _)| *t == txn) =>
            {
                prepared.push((txn, writes));
            }
            Some(ShardRecord::Decision { txn, commit, t_commit }) => {
                if let Some(pos) = prepared.iter().position(|(t, _)| *t == txn) {
                    let (_, writes) = prepared.remove(pos);
                    if commit {
                        for (k, v) in writes {
                            store.apply(k, t_commit, v);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    store
}

/// A prepared transaction as serialized into a checkpoint snapshot.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct SnapPrepared {
    pub txn: TxnId,
    pub writes: Vec<(Key, Value)>,
    pub t_prepare: Ts,
    pub t_ee: Ts,
    pub coordinator: NodeId,
}

/// A coordinator round as serialized into a checkpoint snapshot.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct SnapCoord {
    pub txn: TxnId,
    pub client: NodeId,
    pub t_ee: Ts,
    pub max_prepare: Ts,
    pub commit_fire_at_us: Option<u64>,
    pub writes_by_shard: Vec<(NodeId, Vec<(Key, Value)>)>,
    pub awaiting: Vec<NodeId>,
}

/// The full durable state of a shard at checkpoint time.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct ShardSnapshot {
    pub max_ts: Ts,
    pub versions: Vec<(Key, Ts, Value)>,
    pub prepared: Vec<SnapPrepared>,
    pub coordinating: Vec<SnapCoord>,
    pub decided: Vec<(TxnId, bool, Ts)>,
}

const SNAPSHOT_VERSION: u32 = 1;

impl ShardSnapshot {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(SNAPSHOT_VERSION);
        e.u64(self.max_ts);
        e.u32(self.versions.len() as u32);
        for (key, ts, value) in &self.versions {
            e.u64(key.0).u64(*ts).u64(value.0);
        }
        e.u32(self.prepared.len() as u32);
        for p in &self.prepared {
            enc_txn(&mut e, p.txn);
            e.u64(p.t_prepare).u64(p.t_ee).u64(p.coordinator as u64);
            enc_writes(&mut e, &p.writes);
        }
        e.u32(self.coordinating.len() as u32);
        for c in &self.coordinating {
            enc_txn(&mut e, c.txn);
            e.u64(c.client as u64).u64(c.t_ee).u64(c.max_prepare);
            match c.commit_fire_at_us {
                Some(at) => e.bool(true).u64(at),
                None => e.bool(false),
            };
            e.u32(c.writes_by_shard.len() as u32);
            for (node, writes) in &c.writes_by_shard {
                e.u64(*node as u64);
                enc_writes(&mut e, writes);
            }
            e.u32(c.awaiting.len() as u32);
            for node in &c.awaiting {
                e.u64(*node as u64);
            }
        }
        e.u32(self.decided.len() as u32);
        for (txn, commit, t_commit) in &self.decided {
            enc_txn(&mut e, *txn);
            e.bool(*commit).u64(*t_commit);
        }
        e.finish()
    }

    pub fn decode(bytes: &[u8]) -> Option<ShardSnapshot> {
        let mut d = Dec::new(bytes);
        if d.u32()? != SNAPSHOT_VERSION {
            return None;
        }
        let max_ts = d.u64()?;
        let n = d.u32()? as usize;
        let mut versions = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            versions.push((Key(d.u64()?), d.u64()?, Value(d.u64()?)));
        }
        let n = d.u32()? as usize;
        let mut prepared = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            prepared.push(SnapPrepared {
                txn: dec_txn(&mut d)?,
                t_prepare: d.u64()?,
                t_ee: d.u64()?,
                coordinator: d.u64()? as NodeId,
                writes: dec_writes(&mut d)?,
            });
        }
        let n = d.u32()? as usize;
        let mut coordinating = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let txn = dec_txn(&mut d)?;
            let client = d.u64()? as NodeId;
            let t_ee = d.u64()?;
            let max_prepare = d.u64()?;
            let commit_fire_at_us = if d.bool()? { Some(d.u64()?) } else { None };
            let shards = d.u32()? as usize;
            let mut writes_by_shard = Vec::with_capacity(shards.min(64));
            for _ in 0..shards {
                let node = d.u64()? as NodeId;
                writes_by_shard.push((node, dec_writes(&mut d)?));
            }
            let awaits = d.u32()? as usize;
            let mut awaiting = Vec::with_capacity(awaits.min(64));
            for _ in 0..awaits {
                awaiting.push(d.u64()? as NodeId);
            }
            coordinating.push(SnapCoord {
                txn,
                client,
                t_ee,
                max_prepare,
                commit_fire_at_us,
                writes_by_shard,
                awaiting,
            });
        }
        let n = d.u32()? as usize;
        let mut decided = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            decided.push((dec_txn(&mut d)?, d.bool()?, d.u64()?));
        }
        Some(ShardSnapshot { max_ts, versions, prepared, coordinating, decided })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(client: NodeId, seq: u64) -> TxnId {
        TxnId { client, seq }
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            ShardRecord::Prepare {
                txn: txn(9, 4),
                t_prepare: 1000,
                t_ee: 2000,
                coordinator: 2,
                writes: vec![(Key(1), Value(10)), (Key(4), Value(40))],
            },
            ShardRecord::Decision { txn: txn(9, 4), commit: true, t_commit: 1500 },
            ShardRecord::Decision { txn: txn(9, 5), commit: false, t_commit: 0 },
            ShardRecord::CoordBegin {
                txn: txn(7, 1),
                client: 7,
                t_ee: 900,
                writes_by_shard: vec![(0, vec![(Key(3), Value(30))]), (1, vec![])],
            },
            ShardRecord::CoordVote { txn: txn(7, 1), shard: 1, t_prepare: 1200 },
            ShardRecord::CoordTs { txn: txn(7, 1), t_commit: 1400, fire_at_us: 5000 },
            ShardRecord::SafeTime { ts: 7777 },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(ShardRecord::decode(&bytes), Some(rec.clone()), "round trip {rec:?}");
            // Truncations must decode to None, never panic.
            for cut in 0..bytes.len() {
                assert_eq!(ShardRecord::decode(&bytes[..cut]), None, "truncated {rec:?} at {cut}");
            }
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = ShardSnapshot {
            max_ts: 123456,
            versions: vec![
                (Key(1), 10, Value(100)),
                (Key(1), 20, Value(200)),
                (Key(2), 5, Value(50)),
            ],
            prepared: vec![SnapPrepared {
                txn: txn(3, 7),
                writes: vec![(Key(9), Value(90))],
                t_prepare: 30,
                t_ee: 40,
                coordinator: 1,
            }],
            coordinating: vec![SnapCoord {
                txn: txn(4, 2),
                client: 4,
                t_ee: 55,
                max_prepare: 60,
                commit_fire_at_us: Some(70),
                writes_by_shard: vec![(0, vec![(Key(2), Value(22))])],
                awaiting: vec![],
            }],
            decided: vec![(txn(5, 5), true, 99), (txn(5, 6), false, 0)],
        };
        let bytes = snap.encode();
        let back = ShardSnapshot::decode(&bytes).expect("decode");
        assert_eq!(back.max_ts, snap.max_ts);
        assert_eq!(back.versions, snap.versions);
        assert_eq!(back.prepared.len(), 1);
        assert_eq!(back.prepared[0].writes, snap.prepared[0].writes);
        assert_eq!(back.coordinating.len(), 1);
        assert_eq!(back.coordinating[0].commit_fire_at_us, Some(70));
        assert_eq!(back.decided, snap.decided);
        assert_eq!(ShardSnapshot::decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn offline_replay_builds_store_from_prepare_and_decision() {
        use regular_storage::{StorageRegistry, WalOptions};
        let registry = StorageRegistry::new();
        let (mut wal, _) =
            regular_storage::wal::Wal::open(&WalOptions::mem(registry.clone()), "shard-x");
        let t1 = txn(1, 1);
        let t2 = txn(1, 2);
        wal.append(
            &ShardRecord::Prepare {
                txn: t1,
                t_prepare: 10,
                t_ee: 20,
                coordinator: 0,
                writes: vec![(Key(5), Value(55))],
            }
            .encode(),
            0,
        );
        wal.append(
            &ShardRecord::Prepare {
                txn: t2,
                t_prepare: 12,
                t_ee: 22,
                coordinator: 0,
                writes: vec![(Key(6), Value(66))],
            }
            .encode(),
            0,
        );
        wal.append(&ShardRecord::Decision { txn: t1, commit: true, t_commit: 15 }.encode(), 0);
        wal.append(&ShardRecord::Decision { txn: t2, commit: false, t_commit: 0 }.encode(), 0);
        wal.sync();
        let store = replay_store(registry.disk("shard-x"));
        assert_eq!(store.read_at(Key(5), 100), (15, Value(55)));
        assert_eq!(store.read_at(Key(6), 100), (0, Value::NULL), "aborted write never lands");
    }
}
