//! Per-shard exclusive write locks with FIFO queuing.
//!
//! The simulated shards acquire exclusive locks on a transaction's written
//! keys at prepare time and hold them until the commit decision is applied,
//! exactly the window during which Spanner's read-only transactions may have
//! to block. Conflicting prepares queue in arrival order; cross-shard
//! deadlocks (possible with multi-shard transactions preparing in opposite
//! orders) are broken by a client-side commit timeout that aborts and retries
//! the transaction (see DESIGN.md for the discussion of this simplification
//! relative to Spanner's wound-wait).

use regular_core::hashing::FxHashMap;
use regular_core::types::Key;

use crate::messages::TxnId;

/// A pending lock request that could not be granted immediately.
#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnId,
    keys: Vec<Key>,
}

/// The lock table of one shard.
///
/// Owners live in an [`FxHashMap`] (cheap fixed-width probes, iteration a
/// pure function of the insert/remove sequence) rather than a dense
/// interned map: the map only ever holds *currently locked* keys, so
/// `release`'s retain stays O(held locks) instead of growing with every key
/// the shard has ever seen.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    owners: FxHashMap<Key, TxnId>,
    queue: Vec<Waiter>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire exclusive locks on `keys` for `txn`.
    ///
    /// Returns `true` if all locks were granted immediately; otherwise the
    /// request is queued and will be granted by a later [`LockTable::release`]
    /// (reported through its return value).
    pub fn acquire(&mut self, txn: TxnId, keys: &[Key]) -> bool {
        if keys.iter().all(|k| self.owners.get(k).map(|o| *o == txn).unwrap_or(true))
            && !self.queue.iter().any(|w| w.txn != txn && w.keys.iter().any(|k| keys.contains(k)))
        {
            for k in keys {
                self.owners.insert(*k, txn);
            }
            true
        } else {
            self.queue.push(Waiter { txn, keys: keys.to_vec() });
            false
        }
    }

    /// Releases all locks held by `txn` (and removes any queued request from
    /// it), then grants queued requests whose keys are now all free, in FIFO
    /// order. Returns the transactions whose queued requests were granted.
    pub fn release(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.owners.retain(|_, owner| *owner != txn);
        self.queue.retain(|w| w.txn != txn);
        let mut granted = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            let can_grant = {
                let w = &self.queue[i];
                // All keys free, and no earlier waiter wants any of them.
                w.keys.iter().all(|k| !self.owners.contains_key(k))
                    && !self.queue[..i].iter().any(|e| e.keys.iter().any(|k| w.keys.contains(k)))
            };
            if can_grant {
                let w = self.queue.remove(i);
                for k in &w.keys {
                    self.owners.insert(*k, w.txn);
                }
                granted.push(w.txn);
            } else {
                i += 1;
            }
        }
        granted
    }

    /// True if `txn` currently holds a lock on `key`.
    pub fn holds(&self, txn: TxnId, key: Key) -> bool {
        self.owners.get(&key) == Some(&txn)
    }

    /// Number of keys currently locked.
    pub fn locked_keys(&self) -> usize {
        self.owners.len()
    }

    /// Number of queued (waiting) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64) -> TxnId {
        TxnId { client: 9, seq }
    }

    #[test]
    fn grant_and_release() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(t(1), &[Key(1), Key(2)]));
        assert!(lt.holds(t(1), Key(1)));
        assert_eq!(lt.locked_keys(), 2);
        let granted = lt.release(t(1));
        assert!(granted.is_empty());
        assert_eq!(lt.locked_keys(), 0);
    }

    #[test]
    fn conflicting_request_queues_and_is_granted_in_fifo_order() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(t(1), &[Key(1)]));
        assert!(!lt.acquire(t(2), &[Key(1)]));
        assert!(!lt.acquire(t(3), &[Key(1)]));
        assert_eq!(lt.queued(), 2);
        let granted = lt.release(t(1));
        assert_eq!(granted, vec![t(2)]);
        assert!(lt.holds(t(2), Key(1)));
        let granted = lt.release(t(2));
        assert_eq!(granted, vec![t(3)]);
    }

    #[test]
    fn non_conflicting_waiters_can_be_granted_together() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(t(1), &[Key(1), Key(2)]));
        assert!(!lt.acquire(t(2), &[Key(1)]));
        assert!(!lt.acquire(t(3), &[Key(2)]));
        let granted = lt.release(t(1));
        assert_eq!(granted, vec![t(2), t(3)]);
    }

    #[test]
    fn queued_request_blocks_later_overlapping_grant() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(t(1), &[Key(1)]));
        // t2 waits for key 1 and key 2 (key 2 is free but must not be stolen).
        assert!(!lt.acquire(t(2), &[Key(1), Key(2)]));
        // t3 wants key 2 only; it must queue behind t2 to preserve fairness.
        assert!(!lt.acquire(t(3), &[Key(2)]));
        let granted = lt.release(t(1));
        assert_eq!(granted, vec![t(2)]);
        let granted = lt.release(t(2));
        assert_eq!(granted, vec![t(3)]);
    }

    #[test]
    fn reacquiring_own_lock_is_idempotent() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(t(1), &[Key(1)]));
        assert!(lt.acquire(t(1), &[Key(1)]));
        assert_eq!(lt.locked_keys(), 1);
    }

    #[test]
    fn releasing_a_waiter_removes_it_from_the_queue() {
        let mut lt = LockTable::new();
        assert!(lt.acquire(t(1), &[Key(1)]));
        assert!(!lt.acquire(t(2), &[Key(1)]));
        lt.release(t(2)); // the waiter gives up (client-side abort)
        let granted = lt.release(t(1));
        assert!(granted.is_empty());
        assert_eq!(lt.locked_keys(), 0);
    }
}
