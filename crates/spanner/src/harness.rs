//! Cluster assembly, execution, and result extraction.
//!
//! The harness builds a simulated cluster (shard leaders plus client nodes —
//! [`regular_session::SessionRunner`]s driving the [`SpannerService`] protocol
//! core), runs it, and turns the recorded [`CompletedRecord`]s into the
//! artifacts the evaluation and the conformance tests need: latency
//! distributions, throughput, a [`regular_core::History`] (via the shared
//! [`regular_session::HistoryRecorder`]), and a serialization witness derived
//! from the protocol's timestamps (commit timestamps and snapshot
//! timestamps), mirroring the construction in the paper's proof of
//! correctness (Appendix D.1).

use regular_core::checker::certificate::{check_witness, WitnessModel, WitnessViolation};
use regular_core::history::History;
use regular_core::types::{Key, OpId, Value};
use regular_session::{
    CompletedRecord, HistoryRecorder, SessionConfig, SessionRunner, SessionWorkload,
};
use regular_sim::engine::{Context, Engine, EngineConfig, Node, NodeId};
use regular_sim::metrics::{LatencyRecorder, MessageStats};
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_storage::StorageSummary;

use crate::client::{ClientConfig, ClientStats, SpannerService};
use crate::config::{Mode, SpannerConfig};
use crate::messages::{SpannerMsg, Ts};
use crate::shard::{ShardNode, ShardStats};

/// A client node: the protocol-agnostic session runner over the Spanner core.
pub type SpannerClient = SessionRunner<SpannerService>;

/// A node of the simulated cluster.
pub enum SpannerNode {
    /// A shard leader.
    Shard(Box<ShardNode>),
    /// A client / load generator.
    Client(Box<SpannerClient>),
}

impl Node<SpannerMsg> for SpannerNode {
    fn on_start(&mut self, ctx: &mut Context<SpannerMsg>) {
        match self {
            SpannerNode::Shard(s) => s.on_start(ctx),
            SpannerNode::Client(c) => c.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<SpannerMsg>, from: NodeId, msg: SpannerMsg) {
        match self {
            SpannerNode::Shard(s) => s.on_message(ctx, from, msg),
            SpannerNode::Client(c) => c.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<SpannerMsg>, tag: u64) {
        match self {
            SpannerNode::Shard(s) => s.on_timer(ctx, tag),
            SpannerNode::Client(c) => c.on_timer(ctx, tag),
        }
    }
    fn on_crash(&mut self, ctx: &mut Context<SpannerMsg>) {
        match self {
            SpannerNode::Shard(s) => s.on_crash(ctx),
            SpannerNode::Client(c) => c.on_crash(ctx),
        }
    }
    fn on_recover(&mut self, ctx: &mut Context<SpannerMsg>) {
        match self {
            SpannerNode::Shard(s) => s.on_recover(ctx),
            SpannerNode::Client(c) => c.on_recover(ctx),
        }
    }
}

/// Specification of one client (load generator) node.
pub struct ClientSpec {
    /// Region the node runs in.
    pub region: usize,
    /// Session arrival/pacing/batching model.
    pub sessions: SessionConfig,
    /// Workload generator.
    pub workload: Box<dyn SessionWorkload>,
}

/// Specification of a full cluster run.
pub struct ClusterSpec {
    /// Protocol and topology configuration.
    pub config: SpannerConfig,
    /// Wide-area network model.
    pub net: LatencyMatrix,
    /// Random seed (runs are deterministic for a given seed).
    pub seed: u64,
    /// Client nodes.
    pub clients: Vec<ClientSpec>,
    /// Clients stop issuing new transactions at this instant.
    pub stop_issuing_at: SimTime,
    /// Extra time to let in-flight transactions drain.
    pub drain: SimDuration,
    /// Latency/throughput measurements only cover completions at or after
    /// this instant (warm-up exclusion).
    pub measure_from: SimTime,
}

/// The outcome of a cluster run.
pub struct RunResult {
    /// Protocol variant that was run.
    pub mode: Mode,
    /// Read-write transaction latencies (measurement window only).
    pub rw_latencies: LatencyRecorder,
    /// Read-only transaction latencies (measurement window only).
    pub ro_latencies: LatencyRecorder,
    /// Completed transactions per client node (all, including warm-up).
    pub completed: Vec<(NodeId, Vec<CompletedRecord>)>,
    /// Aggregate throughput over the measurement window (txn/s).
    pub throughput: f64,
    /// Aggregated client statistics.
    pub client_stats: ClientStats,
    /// Per-shard statistics.
    pub shard_stats: Vec<ShardStats>,
    /// Simulated time when the run finished.
    pub finished_at: SimTime,
    /// Total messages delivered.
    pub messages: u64,
    /// Full message counters, including the fault plane's drops, duplicates,
    /// and expirations.
    pub net_stats: MessageStats,
    /// Aggregated write-ahead-log counters across every shard (all zeroes
    /// under `Durability::InMemory`).
    pub storage: StorageSummary,
    /// Final committed store contents per shard, sorted by (key, timestamp):
    /// the differential anchor for durability tests (recovered store must
    /// equal an in-memory reference, offline WAL replay must equal this).
    pub shard_stores: Vec<Vec<(Key, Ts, Value)>>,
}

/// Builds the [`ClientConfig`] every client node of a cluster shares.
pub fn client_config(
    config: &SpannerConfig,
    net: &LatencyMatrix,
    region: usize,
    shard_nodes: Vec<NodeId>,
    replication_delays: Vec<SimDuration>,
) -> ClientConfig {
    ClientConfig {
        mode: config.mode,
        region,
        shard_nodes,
        shard_regions: config.leader_regions.clone(),
        replication_delays,
        net: net.clone(),
        truetime_epsilon: config.truetime_epsilon,
        commit_timeout: config.commit_timeout,
        retry_backoff: config.retry_backoff,
        op_timeout: config.op_timeout,
    }
}

/// Builds and runs a cluster, returning the collected results.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (see
/// [`SpannerConfig::validate`]).
pub fn run_cluster(spec: ClusterSpec) -> RunResult {
    let ClusterSpec { config, net, seed, clients, stop_issuing_at, drain, measure_from } = spec;
    config.validate().expect("invalid Spanner configuration");
    let engine_cfg = EngineConfig {
        default_service_time: config.shard_service_time,
        max_time: stop_issuing_at + drain,
        truetime_epsilon: config.truetime_epsilon,
        queue: config.queue_kind,
    };
    let mut engine: Engine<SpannerMsg, SpannerNode> = Engine::new(engine_cfg, net.clone(), seed);
    if !config.faults.is_empty() {
        engine.install_faults(config.faults.clone());
    }

    // Shards first (node ids 0..num_shards).
    let mut shard_nodes = Vec::new();
    let mut replication_delays = Vec::new();
    for shard in 0..config.num_shards {
        let delay = config.replication_delay(shard, &net);
        replication_delays.push(delay);
        let node = SpannerNode::Shard(Box::new(ShardNode::new(&config, shard, delay)));
        let id =
            engine.add_node_with(node, config.leader_regions[shard], config.shard_service_time);
        shard_nodes.push(id);
    }
    // Then clients.
    let mut client_ids = Vec::new();
    for c in clients {
        let cfg =
            client_config(&config, &net, c.region, shard_nodes.clone(), replication_delays.clone());
        let runner =
            SessionRunner::new(SpannerService::new(cfg), c.sessions, stop_issuing_at, c.workload);
        let id = engine.add_node_with(
            SpannerNode::Client(Box::new(runner)),
            c.region,
            config.client_service_time,
        );
        client_ids.push(id);
    }

    let finished_at = engine.run();

    // Collect results.
    let mut rw = LatencyRecorder::new();
    let mut ro = LatencyRecorder::new();
    let mut completed = Vec::new();
    let mut client_stats = ClientStats::default();
    let mut window_count = 0u64;
    for &id in &client_ids {
        if let SpannerNode::Client(c) = engine.node(id) {
            for txn in &c.completed {
                if txn.finish >= measure_from && !txn.orphan && !txn.kind.is_fence() {
                    let latency = txn.latency();
                    if txn.kind.is_read_only() {
                        ro.record(latency);
                    } else {
                        rw.record(latency);
                    }
                    if txn.finish < stop_issuing_at {
                        window_count += 1;
                    }
                }
            }
            let s = &c.service.stats;
            client_stats.rw_completed += s.rw_completed;
            client_stats.ro_completed += s.ro_completed;
            client_stats.fences += s.fences;
            client_stats.aborted_attempts += s.aborted_attempts;
            client_stats.ro_waited_slow += s.ro_waited_slow;
            client_stats.timeout_retries += s.timeout_retries;
            completed.push((id, c.completed.clone()));
        }
    }
    let mut shard_stats = Vec::new();
    let mut storage = StorageSummary::default();
    let mut shard_stores = Vec::new();
    for &id in &shard_nodes {
        if let SpannerNode::Shard(s) = engine.node(id) {
            shard_stats.push(s.stats);
            storage.add_wal(&s.wal_stats());
            let mut dump = s.store().dump();
            dump.sort_unstable_by_key(|(k, ts, _)| (k.0, *ts));
            shard_stores.push(dump);
        }
    }
    let window = stop_issuing_at.since(measure_from).as_micros();
    let throughput =
        if window == 0 { 0.0 } else { window_count as f64 * 1_000_000.0 / window as f64 };
    RunResult {
        mode: config.mode,
        rw_latencies: rw,
        ro_latencies: ro,
        completed,
        throughput,
        client_stats,
        shard_stats,
        finished_at,
        messages: engine.delivered_messages(),
        net_stats: engine.message_stats(),
        storage,
        shard_stores,
    }
}

/// Witness sort rank: read-write transactions and fences order first among
/// timestamp ties, then read-only transactions. (Commit wait makes every
/// pre-fence timestamp strictly smaller than the fence's `t_f`, while a
/// session's post-fence read-only transaction may serialize at exactly `t_f`
/// and must follow the fence.)
fn witness_rank(rec: &CompletedRecord) -> u8 {
    u8::from(rec.kind.is_read_only())
}

/// Appends a client's records to the shared recorder and returns the
/// `(timestamp, rank, finish, op)` witness sort keys — the order used in the
/// paper's correctness proof (commit timestamps for read-write transactions,
/// snapshot timestamps for read-only ones, read-write first among equals).
pub fn record_with_witness_keys(
    recorder: &mut HistoryRecorder,
    client: u64,
    records: &[CompletedRecord],
) -> Vec<(u64, u8, u64, OpId)> {
    let mut keys = Vec::with_capacity(records.len());
    for rec in records {
        let id = recorder.record(client, rec);
        let ts = rec.witness_ts().unwrap_or_else(|| rec.finish.as_micros());
        keys.push((ts, witness_rank(rec), rec.finish.as_micros(), id));
    }
    keys
}

/// Builds a [`History`] and a serialization witness from a run.
///
/// Each `(client node, session, slot)` lane becomes one application process
/// (via the shared [`HistoryRecorder`]); the witness orders transactions by
/// their protocol timestamp.
pub fn build_history(result: &RunResult) -> (History, Vec<OpId>) {
    build_history_from(&result.completed)
}

/// [`build_history`] from bare per-client completion lists, for harnesses
/// (e.g. the live execution plane) that do not assemble a [`RunResult`].
pub fn build_history_from(completed: &[(NodeId, Vec<CompletedRecord>)]) -> (History, Vec<OpId>) {
    let mut recorder = HistoryRecorder::new();
    let mut witness_keys: Vec<(u64, u8, u64, OpId)> = Vec::new();
    for (client, txns) in completed {
        witness_keys.extend(record_with_witness_keys(&mut recorder, *client as u64, txns));
    }
    witness_keys.sort_unstable();
    let witness = witness_keys.into_iter().map(|(_, _, _, id)| id).collect();
    (recorder.into_history(), witness)
}

/// Verifies that a run satisfies its consistency model: strict serializability
/// for the Spanner baseline, RSS for Spanner-RSS.
pub fn verify_run(result: &RunResult) -> Result<(), WitnessViolation> {
    let (history, witness) = build_history(result);
    let model = match result.mode {
        Mode::Spanner => WitnessModel::RealTime,
        Mode::SpannerRss => WitnessModel::Regular,
    };
    check_witness(&history, &witness, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::UniformWorkload;

    fn small_cluster(mode: Mode, seed: u64, skewless_keys: u64) -> RunResult {
        small_cluster_batched(mode, seed, skewless_keys, 1)
    }

    fn small_cluster_batched(mode: Mode, seed: u64, skewless_keys: u64, batch: usize) -> RunResult {
        let config = SpannerConfig::wan(mode);
        let net = LatencyMatrix::spanner_wan();
        let clients = (0..3)
            .map(|i| ClientSpec {
                region: i % 3,
                sessions: SessionConfig::closed_loop(4, SimDuration::ZERO).with_batch(batch),
                workload: Box::new(UniformWorkload {
                    num_keys: skewless_keys,
                    ro_fraction: 0.5,
                    keys_per_txn: 2,
                }) as Box<dyn SessionWorkload>,
            })
            .collect();
        run_cluster(ClusterSpec {
            config,
            net,
            seed,
            clients,
            stop_issuing_at: SimTime::from_secs(20),
            drain: SimDuration::from_secs(5),
            measure_from: SimTime::from_secs(2),
        })
    }

    #[test]
    fn baseline_cluster_makes_progress_and_is_strictly_serializable() {
        let result = small_cluster(Mode::Spanner, 7, 1000);
        assert!(result.client_stats.rw_completed > 50, "read-write transactions should complete");
        assert!(result.client_stats.ro_completed > 50, "read-only transactions should complete");
        assert!(result.throughput > 0.0);
        verify_run(&result).expect("Spanner must be strictly serializable");
    }

    #[test]
    fn rss_cluster_makes_progress_and_satisfies_rss() {
        let result = small_cluster(Mode::SpannerRss, 7, 1000);
        assert!(result.client_stats.rw_completed > 50);
        assert!(result.client_stats.ro_completed > 50);
        verify_run(&result).expect("Spanner-RSS must satisfy RSS");
    }

    #[test]
    fn contended_rss_run_satisfies_rss() {
        // A tiny key space maximizes conflicts between read-only and prepared
        // read-write transactions, exercising the skip + slow-reply paths.
        let result = small_cluster(Mode::SpannerRss, 11, 20);
        assert!(result.client_stats.ro_completed > 50);
        verify_run(&result).expect("Spanner-RSS must satisfy RSS under contention");
        let skipped: u64 = result.shard_stats.iter().map(|s| s.ro_skipped_prepared).sum();
        assert!(skipped > 0, "the contended run should exercise the skip path");
    }

    #[test]
    fn contended_baseline_run_is_strictly_serializable() {
        let result = small_cluster(Mode::Spanner, 11, 20);
        assert!(result.client_stats.ro_completed > 50);
        verify_run(&result).expect("Spanner must be strictly serializable under contention");
        let blocked: u64 = result.shard_stats.iter().map(|s| s.ro_blocked).sum();
        assert!(blocked > 0, "the contended run should exercise the blocking path");
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let a = small_cluster(Mode::SpannerRss, 3, 100);
        let b = small_cluster(Mode::SpannerRss, 3, 100);
        assert_eq!(a.client_stats.rw_completed, b.client_stats.rw_completed);
        assert_eq!(a.client_stats.ro_completed, b.client_stats.ro_completed);
        assert_eq!(a.messages, b.messages);
        let mut x = a.ro_latencies.clone();
        let mut y = b.ro_latencies.clone();
        assert_eq!(x.percentile(99.0), y.percentile(99.0));
    }

    #[test]
    fn rw_latency_reflects_wide_area_round_trips() {
        let result = small_cluster(Mode::Spanner, 5, 1000);
        let mut rw = result.rw_latencies.clone();
        // A read-write transaction needs at least one cross-region round trip
        // (execute) plus commit: well above 60 ms in this topology.
        assert!(rw.percentile(50.0).unwrap() >= SimDuration::from_millis(60));
    }

    #[test]
    fn batched_sessions_pipeline_and_stay_consistent() {
        let serial = small_cluster_batched(Mode::SpannerRss, 13, 500, 1);
        let batched = small_cluster_batched(Mode::SpannerRss, 13, 500, 8);
        let total = |r: &RunResult| r.client_stats.rw_completed + r.client_stats.ro_completed;
        assert!(
            total(&batched) > 3 * total(&serial),
            "batch 8 should complete several times the closed-loop throughput \
             (batched {} vs serial {})",
            total(&batched),
            total(&serial)
        );
        verify_run(&batched).expect("batched Spanner-RSS must still satisfy RSS");
        // Lanes, not sessions, are the sequential processes.
        let (history, _) = build_history(&batched);
        history.validate().expect("pipelined lanes keep the history well-formed");
    }

    #[test]
    fn batched_baseline_is_strictly_serializable() {
        let result = small_cluster_batched(Mode::Spanner, 17, 500, 4);
        verify_run(&result).expect("batched Spanner must stay strictly serializable");
    }

    #[test]
    fn rss_survives_shard_crash_partition_and_lossy_links() {
        use regular_sim::fault::{FaultSchedule, LinkScope};
        use regular_sim::net::Region;

        // Shard 1 (Virginia) is down for 3 s, Ireland is partitioned away
        // for 2 s, and all links drop 2% / duplicate 2% of messages for a
        // stretch — all while clients keep issuing.
        let faults = FaultSchedule::new()
            .crash(1, SimTime::from_secs(4), SimTime::from_secs(7))
            .partition_region(Region(2), SimTime::from_secs(9), SimTime::from_secs(11))
            .drop_window(LinkScope::All, SimTime::from_secs(12), SimTime::from_secs(16), 0.02)
            .duplicate_window(LinkScope::All, SimTime::from_secs(12), SimTime::from_secs(16), 0.02);
        let config = SpannerConfig::wan(Mode::SpannerRss)
            .with_faults(faults, SimDuration::from_millis(1_500));
        let net = LatencyMatrix::spanner_wan();
        let clients = (0..3)
            .map(|i| ClientSpec {
                region: i % 3,
                sessions: SessionConfig::closed_loop(4, SimDuration::ZERO),
                workload: Box::new(UniformWorkload {
                    num_keys: 100,
                    ro_fraction: 0.5,
                    keys_per_txn: 2,
                }) as Box<dyn SessionWorkload>,
            })
            .collect();
        let result = run_cluster(ClusterSpec {
            config,
            net,
            seed: 23,
            clients,
            stop_issuing_at: SimTime::from_secs(20),
            drain: SimDuration::from_secs(8),
            measure_from: SimTime::from_secs(1),
        });
        let stats = result.net_stats;
        assert!(stats.dropped > 0, "the fault plane dropped messages ({stats:?})");
        assert!(stats.duplicated > 0, "the fault plane duplicated messages ({stats:?})");
        assert!(stats.expired > 0, "messages expired at the crashed shard ({stats:?})");
        assert!(
            result.client_stats.timeout_retries > 0,
            "clients observed timeouts and retried ({:?})",
            result.client_stats
        );
        assert!(
            result.client_stats.ro_completed > 50 && result.client_stats.rw_completed > 50,
            "the cluster kept serving through the faults ({:?})",
            result.client_stats
        );
        verify_run(&result).expect("Spanner-RSS must satisfy RSS through crashes and loss");
    }

    #[test]
    fn faulty_runs_are_deterministic_for_a_seed() {
        use regular_sim::fault::{FaultSchedule, LinkScope};

        let run = || {
            let faults = FaultSchedule::new()
                .crash(0, SimTime::from_secs(3), SimTime::from_secs(5))
                .drop_window(LinkScope::All, SimTime::from_secs(6), SimTime::from_secs(9), 0.05);
            let config = SpannerConfig::wan(Mode::SpannerRss)
                .with_faults(faults, SimDuration::from_millis(1_500));
            let clients = (0..2)
                .map(|i| ClientSpec {
                    region: i % 3,
                    sessions: SessionConfig::closed_loop(2, SimDuration::ZERO)
                        .with_workload_seed(77 + i as u64),
                    workload: Box::new(UniformWorkload {
                        num_keys: 50,
                        ro_fraction: 0.5,
                        keys_per_txn: 2,
                    }) as Box<dyn SessionWorkload>,
                })
                .collect();
            run_cluster(ClusterSpec {
                config,
                net: LatencyMatrix::spanner_wan(),
                seed: 5,
                clients,
                stop_issuing_at: SimTime::from_secs(12),
                drain: SimDuration::from_secs(6),
                measure_from: SimTime::from_secs(1),
            })
        };
        let a = run();
        let b = run();
        let (ha, _) = build_history(&a);
        let (hb, _) = build_history(&b);
        assert_eq!(ha, hb, "identical seed + schedule yields a byte-identical history");
        assert_eq!(a.net_stats, b.net_stats);
    }
}
