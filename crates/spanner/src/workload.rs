//! Workload abstraction for the Spanner client nodes.
//!
//! The evaluation harness (the `regular-bench` crate) plugs in the Retwis and
//! uniform workload generators from `regular-workloads`; this module defines
//! the interface the client nodes consume plus two simple built-in generators
//! used by the protocol's own tests.

use rand::rngs::SmallRng;
use rand::Rng;
use regular_core::types::Key;

/// One transaction to issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRequest {
    /// A read-write transaction writing the given keys (reads the same keys
    /// during its execute phase).
    ReadWrite {
        /// Keys written.
        keys: Vec<Key>,
    },
    /// A read-only transaction over the given keys.
    ReadOnly {
        /// Keys read.
        keys: Vec<Key>,
    },
}

impl TxnRequest {
    /// The keys accessed by the request.
    pub fn keys(&self) -> &[Key] {
        match self {
            TxnRequest::ReadWrite { keys } | TxnRequest::ReadOnly { keys } => keys,
        }
    }

    /// True for read-only requests.
    pub fn is_read_only(&self) -> bool {
        matches!(self, TxnRequest::ReadOnly { .. })
    }
}

/// A source of transaction requests for one client node.
pub trait SpannerWorkload: 'static {
    /// Produces the next transaction request.
    fn next_request(&mut self, rng: &mut SmallRng) -> TxnRequest;
}

/// A simple uniform workload: `ro_fraction` read-only transactions over
/// `keys_per_txn` uniformly random keys, the rest read-write.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    /// Size of the key space.
    pub num_keys: u64,
    /// Fraction of read-only transactions in `[0, 1]`.
    pub ro_fraction: f64,
    /// Keys accessed per transaction.
    pub keys_per_txn: usize,
}

impl SpannerWorkload for UniformWorkload {
    fn next_request(&mut self, rng: &mut SmallRng) -> TxnRequest {
        let mut keys = Vec::with_capacity(self.keys_per_txn);
        while keys.len() < self.keys_per_txn {
            let k = Key(rng.gen_range(0..self.num_keys));
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        if rng.gen_bool(self.ro_fraction) {
            TxnRequest::ReadOnly { keys }
        } else {
            TxnRequest::ReadWrite { keys }
        }
    }
}

/// A scripted workload replaying a fixed list of requests (used by the
/// Figure 4 scenario and by tests); afterwards it repeats the last request
/// type as read-only no-ops on key 0 — callers should size `stop_after` so
/// this never happens.
#[derive(Debug, Clone)]
pub struct ScriptedWorkload {
    requests: Vec<TxnRequest>,
    next: usize,
}

impl ScriptedWorkload {
    /// Creates a scripted workload from a fixed request list.
    pub fn new(requests: Vec<TxnRequest>) -> Self {
        ScriptedWorkload { requests, next: 0 }
    }
}

impl SpannerWorkload for ScriptedWorkload {
    fn next_request(&mut self, _rng: &mut SmallRng) -> TxnRequest {
        let req = self
            .requests
            .get(self.next)
            .cloned()
            .unwrap_or(TxnRequest::ReadOnly { keys: vec![Key(0)] });
        self.next += 1;
        req
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_workload_respects_parameters() {
        let mut w = UniformWorkload { num_keys: 100, ro_fraction: 0.5, keys_per_txn: 3 };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ro = 0;
        for _ in 0..1000 {
            let req = w.next_request(&mut rng);
            assert_eq!(req.keys().len(), 3);
            assert!(req.keys().iter().all(|k| k.0 < 100));
            // Keys within a transaction are distinct.
            let mut sorted = req.keys().to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
            if req.is_read_only() {
                ro += 1;
            }
        }
        assert!((400..600).contains(&ro), "read-only fraction should be near 50%, got {ro}");
    }

    #[test]
    fn scripted_workload_replays_in_order() {
        let mut w = ScriptedWorkload::new(vec![
            TxnRequest::ReadWrite { keys: vec![Key(1)] },
            TxnRequest::ReadOnly { keys: vec![Key(2)] },
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(w.next_request(&mut rng), TxnRequest::ReadWrite { keys: vec![Key(1)] });
        assert_eq!(w.next_request(&mut rng), TxnRequest::ReadOnly { keys: vec![Key(2)] });
        // Exhausted scripts degrade to harmless read-only requests.
        assert!(w.next_request(&mut rng).is_read_only());
    }
}
