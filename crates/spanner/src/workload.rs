//! Transaction requests and built-in workloads for the Spanner client.
//!
//! Clients consume the protocol-agnostic
//! [`regular_session::SessionWorkload`] interface; this module defines the
//! internal [`TxnRequest`] representation the protocol core executes, plus
//! the uniform generator the protocol's own tests and the overhead
//! experiments use. The Retwis generator lives in `regular-workloads`, and
//! scripted workloads in `regular-session`.

use rand::rngs::SmallRng;
use rand::Rng;
use regular_core::types::Key;
use regular_session::{SessionOp, SessionWorkload};

/// One transaction to execute (the protocol core's internal request form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRequest {
    /// A read-write transaction writing the given keys (reads the same keys
    /// during its execute phase).
    ReadWrite {
        /// Keys written.
        keys: Vec<Key>,
    },
    /// A read-only transaction over the given keys.
    ReadOnly {
        /// Keys read.
        keys: Vec<Key>,
    },
}

impl TxnRequest {
    /// The keys accessed by the request.
    pub fn keys(&self) -> &[Key] {
        match self {
            TxnRequest::ReadWrite { keys } | TxnRequest::ReadOnly { keys } => keys,
        }
    }

    /// True for read-only requests.
    pub fn is_read_only(&self) -> bool {
        matches!(self, TxnRequest::ReadOnly { .. })
    }
}

/// A simple uniform workload: `ro_fraction` read-only transactions over
/// `keys_per_txn` uniformly random keys, the rest read-write.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    /// Size of the key space.
    pub num_keys: u64,
    /// Fraction of read-only transactions in `[0, 1]`.
    pub ro_fraction: f64,
    /// Keys accessed per transaction.
    pub keys_per_txn: usize,
}

impl SessionWorkload for UniformWorkload {
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp {
        let mut keys = Vec::with_capacity(self.keys_per_txn);
        while keys.len() < self.keys_per_txn {
            let k = Key(rng.gen_range(0..self.num_keys));
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        if rng.gen_bool(self.ro_fraction) {
            SessionOp::RoTxn { keys }
        } else {
            SessionOp::RwTxn { keys }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_workload_respects_parameters() {
        let mut w = UniformWorkload { num_keys: 100, ro_fraction: 0.5, keys_per_txn: 3 };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ro = 0;
        for _ in 0..1000 {
            let (keys, read_only) = match w.next_op(&mut rng) {
                SessionOp::RoTxn { keys } => (keys, true),
                SessionOp::RwTxn { keys } => (keys, false),
                other => panic!("unexpected op {other:?}"),
            };
            assert_eq!(keys.len(), 3);
            assert!(keys.iter().all(|k| k.0 < 100));
            // Keys within a transaction are distinct.
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
            if read_only {
                ro += 1;
            }
        }
        assert!((400..600).contains(&ro), "read-only fraction should be near 50%, got {ro}");
    }
}
