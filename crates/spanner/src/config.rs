//! Configuration of a simulated Spanner / Spanner-RSS cluster.

use regular_sim::fault::FaultSchedule;
use regular_sim::net::LatencyMatrix;
use regular_sim::queue::QueueKind;
use regular_sim::time::SimDuration;
use regular_storage::Durability;

/// Which read-only transaction protocol the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The strictly serializable baseline: read-only transactions block on
    /// conflicting prepared read-write transactions (Section 5, "Spanner
    /// background").
    Spanner,
    /// The RSS variant: read-only transactions may skip prepared read-write
    /// transactions whose earliest end time has not passed and that are not
    /// required by the client's causal past (Algorithms 1 and 2).
    SpannerRss,
}

/// Static configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct SpannerConfig {
    /// Protocol variant.
    pub mode: Mode,
    /// Number of shards (each has one leader node in the simulation;
    /// replication to followers is modeled as a delay).
    pub num_shards: usize,
    /// Region of each shard's leader (index into the latency matrix).
    pub leader_regions: Vec<usize>,
    /// Regions of each shard's replicas (including the leader region).
    pub replica_regions: Vec<Vec<usize>>,
    /// TrueTime uncertainty bound ε.
    pub truetime_epsilon: SimDuration,
    /// Per-event CPU cost at shard leaders (drives throughput saturation).
    pub shard_service_time: SimDuration,
    /// Per-event CPU cost at client/load-generator nodes.
    pub client_service_time: SimDuration,
    /// Client-side timeout after which a stuck commit is aborted and retried.
    pub commit_timeout: SimDuration,
    /// Back-off before retrying an aborted read-write transaction.
    pub retry_backoff: SimDuration,
    /// Ablation switch: when true, Spanner-RSS read-only transactions do not
    /// use the earliest-end-time (`t_ee`) fast path and must wait for every
    /// conflicting prepared transaction, exactly like the baseline. Used by
    /// the ablation harness to isolate the contribution of the `t_ee`
    /// mechanism.
    pub disable_tee_skip: bool,
    /// Client-side timeout after which a transaction stuck *before* its
    /// commit phase (execute round, read-only round) is abandoned and
    /// re-issued. `None` (the default) disables the retry path — correct on
    /// a fault-free network, where every round eventually completes. Fault
    /// schedules that crash shards or drop messages must set it, or lanes
    /// whose requests were lost stall forever.
    pub op_timeout: Option<SimDuration>,
    /// Scripted faults installed into the engine for this cluster run:
    /// partitions, drop/duplicate windows, shard crashes. Empty by default.
    pub faults: FaultSchedule,
    /// Event-queue implementation the engine runs on. The default indexed
    /// queue and the reference heap replay identical histories; the knob
    /// exists for differential tests and the `engine_hotpath` benchmarks.
    pub queue_kind: QueueKind,
    /// Storage backing for shard leaders. `InMemory` (the default) keeps the
    /// pre-existing volatile behaviour — healthy-run histories are
    /// byte-identical to builds without the storage layer. `Wal` puts every
    /// durable state transition through a write-ahead log with group commit
    /// and rebuilds crashed shards from the log alone.
    pub durability: Durability,
}

impl SpannerConfig {
    /// The three-shard wide-area configuration of the paper's Section 6
    /// evaluation: leaders in California, Virginia, and Ireland; replicas in
    /// the other two regions; ε = 10 ms.
    pub fn wan(mode: Mode) -> Self {
        SpannerConfig {
            mode,
            num_shards: 3,
            leader_regions: vec![0, 1, 2],
            replica_regions: vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2]],
            truetime_epsilon: SimDuration::from_millis(10),
            shard_service_time: SimDuration::from_micros(30),
            client_service_time: SimDuration::from_micros(2),
            commit_timeout: SimDuration::from_secs(2),
            retry_backoff: SimDuration::from_millis(5),
            disable_tee_skip: false,
            op_timeout: None,
            faults: FaultSchedule::default(),
            queue_kind: QueueKind::Indexed,
            durability: Durability::InMemory,
        }
    }

    /// The single-data-center, eight-shard configuration of the overhead
    /// experiment (Section 6.2): TrueTime error zero, all leaders in one
    /// region.
    pub fn single_dc(mode: Mode, num_shards: usize) -> Self {
        SpannerConfig {
            mode,
            num_shards,
            leader_regions: vec![0; num_shards],
            replica_regions: vec![vec![0]; num_shards],
            truetime_epsilon: SimDuration::ZERO,
            shard_service_time: SimDuration::from_micros(30),
            client_service_time: SimDuration::from_micros(2),
            commit_timeout: SimDuration::from_secs(2),
            retry_backoff: SimDuration::from_millis(1),
            disable_tee_skip: false,
            op_timeout: None,
            faults: FaultSchedule::default(),
            queue_kind: QueueKind::Indexed,
            durability: Durability::InMemory,
        }
    }

    /// Installs a scripted fault schedule for the cluster run and enables
    /// the client-side operation timeout faults require.
    pub fn with_faults(mut self, faults: FaultSchedule, op_timeout: SimDuration) -> Self {
        self.faults = faults;
        self.op_timeout = Some(op_timeout);
        self
    }

    /// Selects the storage backing for shard leaders.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// The replication delay a shard leader pays before an entry is durable at
    /// a majority: one round trip to the nearest replica outside its region
    /// (zero when the shard is unreplicated or all replicas are local).
    pub fn replication_delay(&self, shard: usize, net: &LatencyMatrix) -> SimDuration {
        let leader = self.leader_regions[shard];
        self.replica_regions[shard]
            .iter()
            .filter(|&&r| r != leader)
            .map(|&r| net.rtt(regular_sim::net::Region(leader), regular_sim::net::Region(r)))
            .min()
            .unwrap_or(SimDuration::from_micros(100))
    }

    /// Shard responsible for a key.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.num_shards as u64) as usize
    }

    /// Validates internal consistency of the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_shards == 0 {
            return Err("num_shards must be positive".to_string());
        }
        if self.leader_regions.len() != self.num_shards {
            return Err("leader_regions must have one entry per shard".to_string());
        }
        if self.replica_regions.len() != self.num_shards {
            return Err("replica_regions must have one entry per shard".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wan_config_matches_paper_setup() {
        let cfg = SpannerConfig::wan(Mode::SpannerRss);
        assert_eq!(cfg.num_shards, 3);
        assert_eq!(cfg.truetime_epsilon, SimDuration::from_millis(10));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn single_dc_has_zero_epsilon() {
        let cfg = SpannerConfig::single_dc(Mode::Spanner, 8);
        assert_eq!(cfg.num_shards, 8);
        assert_eq!(cfg.truetime_epsilon, SimDuration::ZERO);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn replication_delay_uses_nearest_remote_replica() {
        let cfg = SpannerConfig::wan(Mode::Spanner);
        let net = LatencyMatrix::spanner_wan();
        // Shard 0's leader is in CA; its nearest remote replica is VA (62 ms).
        assert_eq!(cfg.replication_delay(0, &net), SimDuration::from_millis(62));
        // Shard 2's leader is in IR; nearest remote replica is VA (68 ms).
        assert_eq!(cfg.replication_delay(2, &net), SimDuration::from_millis(68));
        // Unreplicated single-DC shards pay a small local cost.
        let dc = SpannerConfig::single_dc(Mode::Spanner, 2);
        let local = LatencyMatrix::single_dc();
        assert!(dc.replication_delay(0, &local) < SimDuration::from_millis(1));
    }

    #[test]
    fn shard_mapping_covers_all_shards() {
        let cfg = SpannerConfig::wan(Mode::Spanner);
        let mut seen = vec![false; cfg.num_shards];
        for k in 0..100 {
            seen[cfg.shard_of(k)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn validation_rejects_malformed_configs() {
        let mut cfg = SpannerConfig::wan(Mode::Spanner);
        cfg.leader_regions.pop();
        assert!(cfg.validate().is_err());
        cfg.num_shards = 0;
        assert!(cfg.validate().is_err());
    }
}
