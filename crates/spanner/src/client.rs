//! The Spanner client protocol core: read-write transactions via two-phase
//! commit, the read-only transaction protocols of Spanner (blocking) and
//! Spanner-RSS (Algorithm 1), and a TrueTime-based real-time fence.
//!
//! The core implements [`regular_session::Service`]: session arrival, pacing,
//! and batching live in the protocol-agnostic
//! [`regular_session::SessionRunner`]; this module only executes operations.
//! Each *session* still owns the protocol state the paper attaches to it —
//! the minimum read timestamp `t_min` capturing its causal past — shared by
//! all of the session's pipeline slots.
//!
//! # Operation mapping
//!
//! Spanner is a transactional store, so the non-transactional session
//! operations are served as single-key transactions: `Read` as a read-only
//! transaction, `Write`/`Rmw` as a read-write transaction. `Fence` is a
//! client-side TrueTime barrier: it picks `t_f = TT.now().latest`, waits
//! until `t_f` has definitely passed (`TT.now().earliest > t_f`, the commit
//! wait argument), and raises the session's `t_min` to `t_f`, so every
//! transaction the session subsequently issues — at this or, via `libRSS`,
//! another service — is serialized after everything that committed before the
//! fence.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use regular_core::op::{OpKind, OpResult};
use regular_core::types::{Key, ServiceId, Value};
use regular_session::{service_tag, CompletedRecord, LaneId, Service, SessionOp, WitnessHint};
use regular_sim::engine::{Context, NodeId};
use regular_sim::net::{LatencyMatrix, Region};
use regular_sim::time::{SimDuration, SimTime};

use crate::config::Mode;
use crate::messages::{PreparedInfo, SpannerMsg, Ts, TxnId};
use crate::workload::TxnRequest;

/// Static client configuration (shared by every client node of a cluster).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Protocol variant.
    pub mode: Mode,
    /// Region this client runs in.
    pub region: usize,
    /// Node id of each shard leader, indexed by shard.
    pub shard_nodes: Vec<NodeId>,
    /// Region of each shard leader, indexed by shard.
    pub shard_regions: Vec<usize>,
    /// Replication delay of each shard, indexed by shard.
    pub replication_delays: Vec<SimDuration>,
    /// The network model, used to estimate the earliest end time `t_ee`.
    pub net: LatencyMatrix,
    /// TrueTime uncertainty bound (for the `t_ee` estimate).
    pub truetime_epsilon: SimDuration,
    /// Abort-and-retry timeout for the commit phase.
    pub commit_timeout: SimDuration,
    /// Back-off before retrying an aborted transaction.
    pub retry_backoff: SimDuration,
    /// Timeout after which a transaction stuck before its commit phase is
    /// abandoned and re-issued (see
    /// [`crate::config::SpannerConfig::op_timeout`]). `None` disables the
    /// retry path.
    pub op_timeout: Option<SimDuration>,
}

/// Aggregate client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Completed read-write transactions.
    pub rw_completed: u64,
    /// Completed read-only transactions.
    pub ro_completed: u64,
    /// Completed fences.
    pub fences: u64,
    /// Read-write attempts that aborted (timeout) and were retried.
    pub aborted_attempts: u64,
    /// Read-only transactions that had to wait for slow replies (Spanner-RSS).
    pub ro_waited_slow: u64,
    /// Transactions abandoned and re-issued after an operation timeout (a
    /// crashed shard or a lost message; fault runs only).
    pub timeout_retries: u64,
}

#[derive(Debug)]
struct Session {
    t_min: Ts,
}

#[derive(Debug)]
enum Phase {
    Execute {
        pending: HashSet<NodeId>,
    },
    Committing,
    RoFast {
        pending: HashSet<NodeId>,
    },
    RoSlow,
    /// A fence waiting out its TrueTime barrier.
    Fence,
}

#[derive(Debug)]
struct AbandonedTxn {
    lane: LaneId,
    invoke: SimTime,
    attempts: u32,
    writes: Vec<(Key, Value)>,
    /// The 2PC coordinator, probed for the outcome under fault schedules.
    coordinator: NodeId,
}

#[derive(Debug)]
struct ActiveTxn {
    lane: LaneId,
    request: TxnRequest,
    invoke: SimTime,
    phase: Phase,
    attempts: u32,
    // Read-write state.
    writes_by_shard: Vec<(NodeId, Vec<(Key, Value)>)>,
    coordinator: NodeId,
    t_ee: Ts,
    commit_timer: Option<u64>,
    // Read-only state.
    t_read: Ts,
    t_min_at_start: Ts,
    versions: HashMap<Key, Vec<(Ts, Value)>>,
    skipped: HashMap<TxnId, Ts>,
    resolved_early: HashSet<TxnId>,
    t_snap: Ts,
}

enum TimerAction {
    RetryTxn { seq: u64 },
    CommitTimeout { seq: u64 },
    OpTimeout { seq: u64 },
    ProbeAbandoned { seq: u64 },
    FinishRw { seq: u64, t_commit: Ts },
    FinishFence { seq: u64 },
}

/// The Spanner / Spanner-RSS client protocol core (a
/// [`regular_session::Service`]).
pub struct SpannerService {
    cfg: ClientConfig,
    service: ServiceId,
    sessions: HashMap<u64, Session>,
    txns: HashMap<u64, ActiveTxn>,
    abandoned: HashMap<u64, AbandonedTxn>,
    next_seq: u64,
    value_counter: u64,
    timers: HashMap<u64, TimerAction>,
    next_timer: u64,
    completed: Vec<CompletedRecord>,
    /// Aggregate statistics.
    pub stats: ClientStats,
}

impl SpannerService {
    /// One-line summary of in-flight client state, for diagnosing stuck
    /// lanes: active transactions with their phase and attempt count, plus
    /// abandoned commits still being probed.
    pub fn debug_inflight(&self) -> String {
        let active: Vec<String> = self
            .txns
            .iter()
            .map(|(seq, t)| {
                format!(
                    "seq {seq} lane {}/{} phase {:?} attempts {} invoke {:?}",
                    t.lane.session, t.lane.slot, t.phase, t.attempts, t.invoke
                )
            })
            .collect();
        let abandoned: Vec<u64> = self.abandoned.keys().copied().collect();
        format!("active: {active:?} abandoned: {abandoned:?} timers: {}", self.timers.len())
    }

    /// Creates a client protocol core with the given configuration.
    pub fn new(cfg: ClientConfig) -> Self {
        SpannerService {
            cfg,
            service: ServiceId::KV,
            sessions: HashMap::new(),
            txns: HashMap::new(),
            abandoned: HashMap::new(),
            next_seq: 0,
            value_counter: 0,
            timers: HashMap::new(),
            next_timer: 0,
            completed: Vec::new(),
            stats: ClientStats::default(),
        }
    }

    /// Sets the service id recorded on this core's operations (defaults to
    /// [`ServiceId::KV`]); composed deployments give each store its own id.
    pub fn with_service_id(mut self, service: ServiceId) -> Self {
        self.service = service;
        self
    }

    fn set_timer(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        delay: SimDuration,
        action: TimerAction,
    ) -> u64 {
        let tag = service_tag(&mut self.next_timer);
        self.timers.insert(tag, action);
        ctx.set_timer(delay, tag);
        tag
    }

    /// Retry delay after an aborted attempt: randomized exponential backoff.
    ///
    /// A fixed backoff livelocks conflicting transactions. Two lanes whose
    /// write sets overlap in opposite lock order deadlock in prepare, both
    /// hit the same commit timeout, abort, and — with identical backoff and
    /// (for co-located lanes) identical latencies — re-issue in lockstep and
    /// deadlock again, forever. Jitter drawn from the engine RNG breaks the
    /// symmetry while keeping runs seed-deterministic.
    fn retry_delay(&self, ctx: &mut Context<SpannerMsg>, attempts: u32) -> SimDuration {
        let base = self.cfg.retry_backoff.as_micros().max(1);
        // Window doubles per attempt, capped at 64x base.
        let window = base << attempts.saturating_sub(1).min(6);
        SimDuration::from_micros(base + ctx.rng().gen_range(0..window))
    }

    fn shard_of(&self, key: Key) -> usize {
        (key.0 % self.cfg.shard_nodes.len() as u64) as usize
    }

    fn shards_for(&self, keys: &[Key]) -> Vec<usize> {
        let mut shards: Vec<usize> = keys.iter().map(|k| self.shard_of(*k)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    fn fresh_value(&mut self, ctx: &Context<SpannerMsg>) -> Value {
        self.value_counter += 1;
        Value(((ctx.node_id() as u64 + 1) << 40) | self.value_counter)
    }

    fn t_min_of(&self, session: u64) -> Ts {
        self.sessions.get(&session).map(|s| s.t_min).unwrap_or(0)
    }

    fn raise_t_min(&mut self, session: u64, to: Ts) {
        let s = self.sessions.entry(session).or_insert(Session { t_min: 0 });
        s.t_min = s.t_min.max(to);
    }

    /// Estimated minimum commit latency (in microseconds) when using
    /// `coordinator` for a transaction spanning `participants`.
    fn estimate_commit_latency(&self, coordinator: usize, participants: &[usize]) -> u64 {
        let client = Region(self.cfg.region);
        let coord_region = Region(self.cfg.shard_regions[coordinator]);
        let one_way_client = self.cfg.net.one_way(client, coord_region).as_micros();
        let prepare = participants
            .iter()
            .map(|&p| {
                let pr = Region(self.cfg.shard_regions[p]);
                let net = if p == coordinator {
                    0
                } else {
                    2 * self.cfg.net.one_way(coord_region, pr).as_micros()
                };
                net + self.cfg.replication_delays[p].as_micros()
            })
            .max()
            .unwrap_or(0);
        let commit = self.cfg.replication_delays[coordinator].as_micros()
            + 2 * self.cfg.truetime_epsilon.as_micros();
        2 * one_way_client + prepare + commit
    }

    fn pick_coordinator(&self, participants: &[usize]) -> (usize, u64) {
        participants
            .iter()
            .map(|&c| (c, self.estimate_commit_latency(c, participants)))
            .min_by_key(|&(_, est)| est)
            .expect("transactions access at least one shard")
    }

    /// Issues (or re-issues, after an abort) the transaction `seq`. A stale
    /// retry timer may fire for a sequence number the operation timeout has
    /// already abandoned (and re-issued under a fresh number) — that retry
    /// must die here, not resurrect the old attempt.
    fn issue(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64) {
        let (request, session) = {
            let Some(t) = self.txns.get(&seq) else { return };
            (t.request.clone(), t.lane.session)
        };
        // Under a fault schedule the request (or every reply) may be lost:
        // watch the pre-commit phases with a timeout so the lane cannot
        // stall forever on a crashed shard.
        if let Some(timeout) = self.cfg.op_timeout {
            self.set_timer(ctx, timeout, TimerAction::OpTimeout { seq });
        }
        let txn_id = TxnId { client: ctx.node_id(), seq };
        match &request {
            TxnRequest::ReadWrite { keys } => {
                let shards = self.shards_for(keys);
                let pending: HashSet<NodeId> =
                    shards.iter().map(|&s| self.cfg.shard_nodes[s]).collect();
                for &s in &shards {
                    let shard_keys: Vec<Key> =
                        keys.iter().filter(|k| self.shard_of(**k) == s).copied().collect();
                    ctx.send(
                        self.cfg.shard_nodes[s],
                        SpannerMsg::ExecRead { txn: txn_id, keys: shard_keys },
                    );
                }
                let t = self.txns.get_mut(&seq).expect("transaction exists");
                t.phase = Phase::Execute { pending };
            }
            TxnRequest::ReadOnly { keys } => {
                let t_read = ctx.truetime_now().latest.as_micros();
                let t_min = match self.cfg.mode {
                    Mode::Spanner => 0,
                    Mode::SpannerRss => self.t_min_of(session),
                };
                let shards = self.shards_for(keys);
                let pending: HashSet<NodeId> =
                    shards.iter().map(|&s| self.cfg.shard_nodes[s]).collect();
                for &s in &shards {
                    let shard_keys: Vec<Key> =
                        keys.iter().filter(|k| self.shard_of(**k) == s).copied().collect();
                    ctx.send(
                        self.cfg.shard_nodes[s],
                        SpannerMsg::RoCommit { txn: txn_id, keys: shard_keys, t_read, t_min },
                    );
                }
                let t = self.txns.get_mut(&seq).expect("transaction exists");
                t.t_read = t_read;
                t.t_min_at_start = t_min;
                t.phase = Phase::RoFast { pending };
            }
        }
    }

    fn begin_commit(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64) {
        let keys: Vec<Key> = self.txns[&seq].request.keys().to_vec();
        let shards = self.shards_for(&keys);
        let (coordinator, est) = self.pick_coordinator(&shards);
        let t_ee = ctx.truetime_now().earliest.as_micros() + est;
        // Assign fresh, globally unique values to every written key and group
        // the writes by participant shard.
        let mut assigned: Vec<(NodeId, Vec<(Key, Value)>)> = Vec::new();
        for &s in &shards {
            let shard_keys: Vec<Key> =
                keys.iter().filter(|k| self.shard_of(**k) == s).copied().collect();
            let mut vs = Vec::with_capacity(shard_keys.len());
            for k in shard_keys {
                let v = self.fresh_value(ctx);
                vs.push((k, v));
            }
            assigned.push((self.cfg.shard_nodes[s], vs));
        }
        let txn_id = TxnId { client: ctx.node_id(), seq };
        let coord_node = self.cfg.shard_nodes[coordinator];
        ctx.send(
            coord_node,
            SpannerMsg::CommitRequest { txn: txn_id, writes_by_shard: assigned.clone(), t_ee },
        );
        let timeout = self.cfg.commit_timeout;
        let tag = self.set_timer(ctx, timeout, TimerAction::CommitTimeout { seq });
        let t = self.txns.get_mut(&seq).expect("transaction exists");
        t.phase = Phase::Committing;
        t.writes_by_shard = assigned;
        t.coordinator = coord_node;
        t.t_ee = t_ee;
        t.commit_timer = Some(tag);
    }

    fn finish_txn(&mut self, seq: u64, record: CompletedRecord) {
        self.txns.remove(&seq).expect("transaction exists");
        if record.kind.is_read_only() {
            self.stats.ro_completed += 1;
        } else if record.kind.is_fence() {
            self.stats.fences += 1;
        } else {
            self.stats.rw_completed += 1;
        }
        self.completed.push(record);
    }

    // ----- Read-only completion logic (Algorithm 1) -----

    fn ro_calculate_snapshot(&self, seq: u64) -> Ts {
        let txn = &self.txns[&seq];
        let mut t_snap = 0;
        for key in txn.request.keys() {
            let earliest = txn
                .versions
                .get(key)
                .and_then(|vs| vs.iter().map(|(ts, _)| *ts).min())
                .unwrap_or(0);
            t_snap = t_snap.max(earliest);
        }
        t_snap
    }

    fn ro_try_finish(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64) {
        let (t_snap, ready) = {
            let txn = &self.txns[&seq];
            let t_snap = if txn.t_snap == 0 { self.ro_calculate_snapshot(seq) } else { txn.t_snap };
            let min_prepared = txn.skipped.values().copied().min();
            let ready = match min_prepared {
                None => true,
                Some(tp) => tp > t_snap,
            };
            (t_snap, ready)
        };
        {
            let txn = self.txns.get_mut(&seq).expect("transaction exists");
            txn.t_snap = t_snap;
        }
        if !ready {
            let txn = self.txns.get_mut(&seq).expect("transaction exists");
            if !matches!(txn.phase, Phase::RoSlow) {
                txn.phase = Phase::RoSlow;
                self.stats.ro_waited_slow += 1;
            }
            return;
        }
        // Assemble the result: for each key, the latest version at or before
        // the snapshot timestamp.
        let (record, session, t_snap) = {
            let txn = &self.txns[&seq];
            let keys = txn.request.keys().to_vec();
            let mut results = Vec::new();
            for key in &keys {
                let v = txn
                    .versions
                    .get(key)
                    .and_then(|vs| {
                        vs.iter().filter(|(ts, _)| *ts <= t_snap).max_by_key(|(ts, _)| *ts).copied()
                    })
                    .map(|(_, v)| v)
                    .unwrap_or(Value::NULL);
                results.push((*key, v));
            }
            let timestamp = match self.cfg.mode {
                Mode::Spanner => txn.t_read,
                Mode::SpannerRss => t_snap.max(txn.t_min_at_start),
            };
            (
                CompletedRecord {
                    service: self.service,
                    kind: OpKind::RoTxn { keys },
                    result: OpResult::Values(results),
                    invoke: txn.invoke,
                    finish: ctx.now(),
                    session: txn.lane.session,
                    slot: txn.lane.slot,
                    attempts: txn.attempts,
                    rounds: 1,
                    orphan: false,
                    witness: WitnessHint::Timestamp { ts: timestamp },
                },
                txn.lane.session,
                t_snap,
            )
        };
        self.raise_t_min(session, t_snap);
        self.finish_txn(seq, record);
    }
}

impl Service for SpannerService {
    type Msg = SpannerMsg;

    fn service_id(&self) -> ServiceId {
        self.service
    }

    fn debug_inflight(&self) -> String {
        SpannerService::debug_inflight(self)
    }

    fn name(&self) -> &str {
        match self.cfg.mode {
            Mode::Spanner => "spanner",
            Mode::SpannerRss => "spanner-rss",
        }
    }

    fn submit(&mut self, ctx: &mut Context<SpannerMsg>, lane: LaneId, op: SessionOp) {
        self.sessions.entry(lane.session).or_insert(Session { t_min: 0 });
        let request = match op {
            SessionOp::RoTxn { keys } => TxnRequest::ReadOnly { keys },
            SessionOp::Read { key } => TxnRequest::ReadOnly { keys: vec![key] },
            SessionOp::RwTxn { keys } => TxnRequest::ReadWrite { keys },
            // A transactional store serves single-key mutations as
            // single-key read-write transactions.
            SessionOp::Write { key } | SessionOp::Rmw { key } => {
                TxnRequest::ReadWrite { keys: vec![key] }
            }
            SessionOp::Fence => {
                // TrueTime barrier: pick t_f = TT.now().latest and wait until
                // it has definitely passed; afterwards the session's t_min
                // covers everything serialized before the fence.
                let now = ctx.truetime_now();
                let t_f = now.latest.as_micros();
                let seq = self.next_seq;
                self.next_seq += 1;
                self.txns.insert(
                    seq,
                    ActiveTxn {
                        lane,
                        request: TxnRequest::ReadOnly { keys: Vec::new() },
                        invoke: ctx.now(),
                        phase: Phase::Fence,
                        attempts: 1,
                        writes_by_shard: Vec::new(),
                        coordinator: 0,
                        t_ee: 0,
                        commit_timer: None,
                        t_read: t_f,
                        t_min_at_start: 0,
                        versions: HashMap::new(),
                        skipped: HashMap::new(),
                        resolved_early: HashSet::new(),
                        t_snap: 0,
                    },
                );
                let wait =
                    SimDuration::from_micros(t_f.saturating_sub(now.earliest.as_micros()) + 1);
                self.set_timer(ctx, wait, TimerAction::FinishFence { seq });
                return;
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.txns.insert(
            seq,
            ActiveTxn {
                lane,
                request,
                invoke: ctx.now(),
                phase: Phase::Execute { pending: HashSet::new() },
                attempts: 1,
                writes_by_shard: Vec::new(),
                coordinator: 0,
                t_ee: 0,
                commit_timer: None,
                t_read: 0,
                t_min_at_start: 0,
                versions: HashMap::new(),
                skipped: HashMap::new(),
                resolved_early: HashSet::new(),
                t_snap: 0,
            },
        );
        self.issue(ctx, seq);
    }

    fn on_timer(&mut self, ctx: &mut Context<SpannerMsg>, tag: u64) {
        let Some(action) = self.timers.remove(&tag) else { return };
        match action {
            TimerAction::RetryTxn { seq } => self.issue(ctx, seq),
            TimerAction::OpTimeout { seq } => {
                let Some(txn) = self.txns.get(&seq) else { return };
                // Only the pre-commit phases are watched here: the commit
                // phase has its own timeout, and fences always complete
                // locally. Pre-commit phases have no visible effects, so the
                // attempt can be abandoned outright and re-issued fresh
                // (stale replies to the old sequence number are ignored).
                if !matches!(
                    txn.phase,
                    Phase::Execute { .. } | Phase::RoFast { .. } | Phase::RoSlow
                ) {
                    return;
                }
                self.stats.timeout_retries += 1;
                let old = self.txns.remove(&seq).expect("transaction exists");
                let new_seq = self.next_seq;
                self.next_seq += 1;
                self.txns.insert(
                    new_seq,
                    ActiveTxn {
                        lane: old.lane,
                        request: old.request,
                        invoke: old.invoke,
                        phase: Phase::Execute { pending: HashSet::new() },
                        attempts: old.attempts + 1,
                        writes_by_shard: Vec::new(),
                        coordinator: 0,
                        t_ee: 0,
                        commit_timer: None,
                        t_read: 0,
                        t_min_at_start: 0,
                        versions: HashMap::new(),
                        skipped: HashMap::new(),
                        resolved_early: HashSet::new(),
                        t_snap: 0,
                    },
                );
                self.issue(ctx, new_seq);
            }
            TimerAction::CommitTimeout { seq } => {
                let Some(txn) = self.txns.get(&seq) else { return };
                if !matches!(txn.phase, Phase::Committing) {
                    return;
                }
                self.stats.aborted_attempts += 1;
                let coordinator = txn.coordinator;
                let old_id = TxnId { client: ctx.node_id(), seq };
                ctx.send(coordinator, SpannerMsg::AbortRequest { txn: old_id });
                // Move the attempt to the abandoned set: if the commit still
                // lands, its writes become part of the history as an orphan.
                let old = self.txns.remove(&seq).expect("transaction exists");
                self.abandoned.insert(
                    seq,
                    AbandonedTxn {
                        lane: old.lane,
                        invoke: old.invoke,
                        attempts: old.attempts,
                        writes: old.writes_by_shard.iter().flat_map(|(_, w)| w.clone()).collect(),
                        coordinator,
                    },
                );
                // Under a fault schedule the abort/commit reply itself may be
                // lost, leaving the outcome unknown — and an unknowingly
                // committed write would be visible yet absent from the
                // recorded history. Probe the coordinator's durable decision
                // log until the outcome is learned (2PC cooperative
                // termination).
                if let Some(probe_after) = self.cfg.op_timeout {
                    self.set_timer(ctx, probe_after, TimerAction::ProbeAbandoned { seq });
                }
                // Re-issue under a fresh sequence number so stale replies are
                // not confused with the new attempt.
                let new_seq = self.next_seq;
                self.next_seq += 1;
                self.txns.insert(
                    new_seq,
                    ActiveTxn {
                        lane: old.lane,
                        request: old.request,
                        invoke: old.invoke,
                        phase: Phase::Execute { pending: HashSet::new() },
                        attempts: old.attempts + 1,
                        writes_by_shard: Vec::new(),
                        coordinator: 0,
                        t_ee: 0,
                        commit_timer: None,
                        t_read: 0,
                        t_min_at_start: 0,
                        versions: HashMap::new(),
                        skipped: HashMap::new(),
                        resolved_early: HashSet::new(),
                        t_snap: 0,
                    },
                );
                let backoff = self.retry_delay(ctx, old.attempts + 1);
                self.set_timer(ctx, backoff, TimerAction::RetryTxn { seq: new_seq });
            }
            TimerAction::ProbeAbandoned { seq } => {
                let Some(orphan) = self.abandoned.get(&seq) else { return };
                let coordinator = orphan.coordinator;
                ctx.send(
                    coordinator,
                    SpannerMsg::StatusRequest { txn: TxnId { client: ctx.node_id(), seq } },
                );
                let probe_after = self.cfg.op_timeout.expect("probing implies op_timeout");
                self.set_timer(ctx, probe_after, TimerAction::ProbeAbandoned { seq });
            }
            TimerAction::FinishRw { seq, t_commit } => {
                let Some(txn) = self.txns.get(&seq) else { return };
                let record = CompletedRecord {
                    service: self.service,
                    kind: OpKind::RwTxn {
                        read_keys: Vec::new(),
                        writes: txn.writes_by_shard.iter().flat_map(|(_, w)| w.clone()).collect(),
                    },
                    result: OpResult::Values(Vec::new()),
                    invoke: txn.invoke,
                    finish: ctx.now(),
                    session: txn.lane.session,
                    slot: txn.lane.slot,
                    attempts: txn.attempts,
                    rounds: 1,
                    orphan: false,
                    witness: WitnessHint::Timestamp { ts: t_commit },
                };
                let session = txn.lane.session;
                self.raise_t_min(session, t_commit);
                self.finish_txn(seq, record);
            }
            TimerAction::FinishFence { seq } => {
                let Some(txn) = self.txns.get(&seq) else { return };
                if !matches!(txn.phase, Phase::Fence) {
                    return;
                }
                let t_f = txn.t_read;
                let record = CompletedRecord {
                    service: self.service,
                    kind: OpKind::Fence,
                    result: OpResult::Ack,
                    invoke: txn.invoke,
                    finish: ctx.now(),
                    session: txn.lane.session,
                    slot: txn.lane.slot,
                    attempts: 1,
                    rounds: 0,
                    orphan: false,
                    witness: WitnessHint::Timestamp { ts: t_f },
                };
                let session = txn.lane.session;
                self.raise_t_min(session, t_f);
                self.finish_txn(seq, record);
            }
        }
    }

    fn end_session(&mut self, session: u64) {
        // The session issues no further transactions, so its causal floor
        // (t_min) is no longer needed. Long partly-open runs spawn a fresh
        // session per arrival; dropping the entry keeps the map bounded by
        // the number of *live* sessions.
        self.sessions.remove(&session);
    }

    fn session_floor(&self, session: u64) -> u64 {
        self.t_min_of(session)
    }

    fn raise_session_floor(&mut self, session: u64, floor: u64) {
        // An imported causal context behaves exactly like the session's own
        // causal past: subsequent read-only transactions must observe every
        // write at or below the floor (Algorithm 1's t_min).
        self.raise_t_min(session, floor);
    }

    fn on_message(&mut self, ctx: &mut Context<SpannerMsg>, from: NodeId, msg: SpannerMsg) {
        match msg {
            SpannerMsg::ExecReadReply { txn, .. } => {
                let seq = txn.seq;
                let ready = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    match &mut t.phase {
                        Phase::Execute { pending } => {
                            pending.remove(&from);
                            pending.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.begin_commit(ctx, seq);
                }
            }
            SpannerMsg::CommitReply { txn, commit, t_commit } => {
                let seq = txn.seq;
                if let Some(orphan) = self.abandoned.remove(&seq) {
                    // The client had already given up on this attempt; if the
                    // commit landed anyway, record its (visible) writes.
                    if commit {
                        self.completed.push(CompletedRecord {
                            service: self.service,
                            kind: OpKind::RwTxn { read_keys: Vec::new(), writes: orphan.writes },
                            result: OpResult::Values(Vec::new()),
                            invoke: orphan.invoke,
                            finish: ctx.now(),
                            session: orphan.lane.session,
                            slot: orphan.lane.slot,
                            attempts: orphan.attempts,
                            rounds: 1,
                            orphan: true,
                            witness: WitnessHint::Timestamp { ts: t_commit },
                        });
                    }
                    return;
                }
                let Some(t) = self.txns.get_mut(&seq) else {
                    return;
                };
                if !matches!(t.phase, Phase::Committing) {
                    return;
                }
                if let Some(tag) = t.commit_timer.take() {
                    self.timers.remove(&tag);
                }
                if commit {
                    let t_ee = t.t_ee;
                    // Ensure the earliest end time really is in the past
                    // before reporting completion (Section 5).
                    let now_earliest = ctx.truetime_now().earliest.as_micros();
                    let delay = if t_ee >= now_earliest {
                        SimDuration::from_micros(t_ee - now_earliest + 1)
                    } else {
                        SimDuration::ZERO
                    };
                    self.set_timer(ctx, delay, TimerAction::FinishRw { seq, t_commit });
                } else {
                    // Aborted by the coordinator; retry after a back-off.
                    let t = self.txns.get_mut(&seq).expect("transaction exists");
                    t.attempts += 1;
                    t.phase = Phase::Execute { pending: HashSet::new() };
                    let attempts = t.attempts;
                    self.stats.aborted_attempts += 1;
                    let backoff = self.retry_delay(ctx, attempts);
                    self.set_timer(ctx, backoff, TimerAction::RetryTxn { seq });
                }
            }
            SpannerMsg::RoReply { txn, values, .. } => {
                let seq = txn.seq;
                let ready = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    for (k, ts, v) in values {
                        t.versions.entry(k).or_default().push((ts, v));
                    }
                    match &mut t.phase {
                        Phase::RoFast { pending } => {
                            pending.remove(&from);
                            pending.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.ro_try_finish(ctx, seq);
                }
            }
            SpannerMsg::RoFastReply { txn, skipped, values, .. } => {
                let seq = txn.seq;
                let ready = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    for (k, ts, v) in values {
                        t.versions.entry(k).or_default().push((ts, v));
                    }
                    for PreparedInfo { txn: id, t_prepare } in skipped {
                        if !t.resolved_early.contains(&id) {
                            t.skipped.insert(id, t_prepare);
                        }
                    }
                    match &mut t.phase {
                        Phase::RoFast { pending } => {
                            pending.remove(&from);
                            pending.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.ro_try_finish(ctx, seq);
                }
            }
            SpannerMsg::RoSlowReply { txn, resolved, committed, t_commit, values, .. } => {
                let seq = txn.seq;
                let evaluate = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    t.skipped.remove(&resolved);
                    // Remember every resolution (not only early ones): a
                    // duplicated fast reply arriving after the slow reply
                    // must not resurrect the skipped transaction, or the
                    // read-only transaction waits on it forever.
                    t.resolved_early.insert(resolved);
                    if committed {
                        for (k, ts, v) in values {
                            let _ = t_commit;
                            t.versions.entry(k).or_default().push((ts, v));
                        }
                    }
                    matches!(t.phase, Phase::RoSlow)
                };
                if evaluate {
                    self.ro_try_finish(ctx, seq);
                }
            }
            _ => {}
        }
    }

    fn drain_completed(&mut self) -> Vec<CompletedRecord> {
        std::mem::take(&mut self.completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_request_accessors() {
        let rw = TxnRequest::ReadWrite { keys: vec![Key(1), Key(2)] };
        let ro = TxnRequest::ReadOnly { keys: vec![Key(3)] };
        assert!(!rw.is_read_only());
        assert!(ro.is_read_only());
        assert_eq!(rw.keys().len(), 2);
    }

    #[test]
    fn completed_record_carries_core_kinds() {
        let c = CompletedRecord {
            service: ServiceId::KV,
            kind: OpKind::RoTxn { keys: vec![Key(1)] },
            result: OpResult::Values(vec![(Key(1), Value(5))]),
            invoke: SimTime::from_millis(1),
            finish: SimTime::from_millis(2),
            session: 0,
            slot: 0,
            attempts: 1,
            rounds: 1,
            orphan: false,
            witness: WitnessHint::Timestamp { ts: 100 },
        };
        let d = c.clone();
        assert!(d.kind.is_read_only());
        assert_eq!(d.witness_ts(), Some(100));
        assert_eq!(d.latency(), SimDuration::from_millis(1));
    }
}
