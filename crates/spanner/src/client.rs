//! The client (load generator) node: read-write transactions via two-phase
//! commit, and the read-only transaction protocols of Spanner (blocking) and
//! Spanner-RSS (Algorithm 1).
//!
//! A single client node drives many logical *sessions* — the unit the paper
//! uses for the partly-open workload model (Section 6): sessions arrive
//! according to a Poisson process, issue transactions back-to-back, and leave
//! with probability `1 - p` after each transaction. Each session carries its
//! own minimum read timestamp `t_min`, capturing its causal past.

use std::collections::{HashMap, HashSet};

use rand::Rng;
use regular_core::types::{Key, Value};
use regular_sim::engine::{Context, NodeId};
use regular_sim::net::{LatencyMatrix, Region};
use regular_sim::time::{SimDuration, SimTime};

use crate::config::Mode;
use crate::messages::{PreparedInfo, SpannerMsg, Ts, TxnId};
use crate::workload::{SpannerWorkload, TxnRequest};

/// How a client node generates load.
#[derive(Debug, Clone)]
pub enum Driver {
    /// A fixed number of closed-loop sessions issuing transactions
    /// back-to-back with the given think time (Figure 6 and the overhead
    /// experiments).
    ClosedLoop {
        /// Number of concurrent sessions.
        sessions: usize,
        /// Think time between transactions.
        think_time: SimDuration,
    },
    /// The partly-open model of Section 6: sessions arrive at `arrival_rate`
    /// per second, continue with probability `stay_probability` after each
    /// transaction, and think for `think_time` in between.
    PartlyOpen {
        /// Session arrival rate (sessions per second) at this node.
        arrival_rate: f64,
        /// Probability a session issues another transaction.
        stay_probability: f64,
        /// Think time between a session's transactions.
        think_time: SimDuration,
    },
}

/// Static client configuration (shared by every client node of a cluster).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Protocol variant.
    pub mode: Mode,
    /// Load-generation model.
    pub driver: Driver,
    /// Region this client runs in.
    pub region: usize,
    /// Node id of each shard leader, indexed by shard.
    pub shard_nodes: Vec<NodeId>,
    /// Region of each shard leader, indexed by shard.
    pub shard_regions: Vec<usize>,
    /// Replication delay of each shard, indexed by shard.
    pub replication_delays: Vec<SimDuration>,
    /// The network model, used to estimate the earliest end time `t_ee`.
    pub net: LatencyMatrix,
    /// TrueTime uncertainty bound (for the `t_ee` estimate).
    pub truetime_epsilon: SimDuration,
    /// Stop issuing new transactions after this instant (the run then drains).
    pub stop_issuing_at: SimTime,
    /// Abort-and-retry timeout for the commit phase.
    pub commit_timeout: SimDuration,
    /// Back-off before retrying an aborted transaction.
    pub retry_backoff: SimDuration,
}

/// A finished transaction, as recorded for metrics and conformance checking.
#[derive(Debug, Clone)]
pub struct CompletedTxn {
    /// True for read-only transactions.
    pub is_ro: bool,
    /// Keys read by a read-only transaction (empty for read-write).
    pub read_keys: Vec<Key>,
    /// Values observed by a read-only transaction.
    pub read_results: Vec<(Key, Value)>,
    /// Writes installed by a read-write transaction.
    pub writes: Vec<(Key, Value)>,
    /// Invocation instant (first attempt).
    pub invoke: SimTime,
    /// Completion instant.
    pub finish: SimTime,
    /// Serialization timestamp: the commit timestamp for read-write
    /// transactions, `max(t_snap, t_min at start)` for Spanner-RSS read-only
    /// transactions, and `t_read` for baseline read-only transactions.
    pub timestamp: Ts,
    /// The session that issued the transaction.
    pub session: u64,
    /// Number of attempts (1 = committed on the first try).
    pub attempts: u32,
    /// True if the client had already given up on this attempt (commit
    /// timeout) when the commit acknowledgement arrived. Orphaned commits are
    /// part of the execution history (their writes are visible) but are
    /// excluded from latency measurements and are not ordered after the
    /// session's subsequent transactions.
    pub orphan: bool,
}

/// Aggregate client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    /// Completed read-write transactions.
    pub rw_completed: u64,
    /// Completed read-only transactions.
    pub ro_completed: u64,
    /// Read-write attempts that aborted (timeout) and were retried.
    pub aborted_attempts: u64,
    /// Read-only transactions that had to wait for slow replies (Spanner-RSS).
    pub ro_waited_slow: u64,
}

#[derive(Debug)]
struct Session {
    t_min: Ts,
}

#[derive(Debug)]
enum Phase {
    Execute { pending: HashSet<NodeId> },
    Committing,
    RoFast { pending: HashSet<NodeId> },
    RoSlow,
}

#[derive(Debug)]
struct AbandonedTxn {
    session: u64,
    invoke: SimTime,
    attempts: u32,
    writes: Vec<(Key, Value)>,
}

#[derive(Debug)]
struct ActiveTxn {
    session: u64,
    request: TxnRequest,
    invoke: SimTime,
    phase: Phase,
    attempts: u32,
    // Read-write state.
    writes_by_shard: Vec<(NodeId, Vec<(Key, Value)>)>,
    coordinator: NodeId,
    t_ee: Ts,
    commit_timer: Option<u64>,
    // Read-only state.
    t_read: Ts,
    t_min_at_start: Ts,
    versions: HashMap<Key, Vec<(Ts, Value)>>,
    skipped: HashMap<TxnId, Ts>,
    resolved_early: HashSet<TxnId>,
    t_snap: Ts,
}

enum TimerAction {
    StartTxn { session: u64 },
    RetryTxn { seq: u64 },
    SessionArrival,
    CommitTimeout { seq: u64 },
    FinishRw { seq: u64, t_commit: Ts },
}

/// The client node.
pub struct ClientNode {
    cfg: ClientConfig,
    workload: Box<dyn SpannerWorkload>,
    sessions: HashMap<u64, Session>,
    next_session: u64,
    txns: HashMap<u64, ActiveTxn>,
    abandoned: HashMap<u64, AbandonedTxn>,
    next_seq: u64,
    value_counter: u64,
    timers: HashMap<u64, TimerAction>,
    next_timer: u64,
    /// All transactions completed by this node.
    pub completed: Vec<CompletedTxn>,
    /// Aggregate statistics.
    pub stats: ClientStats,
}

impl ClientNode {
    /// Creates a client node with the given configuration and workload.
    pub fn new(cfg: ClientConfig, workload: Box<dyn SpannerWorkload>) -> Self {
        ClientNode {
            cfg,
            workload,
            sessions: HashMap::new(),
            next_session: 0,
            txns: HashMap::new(),
            abandoned: HashMap::new(),
            next_seq: 0,
            value_counter: 0,
            timers: HashMap::new(),
            next_timer: 0,
            completed: Vec::new(),
            stats: ClientStats::default(),
        }
    }

    fn set_timer(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        delay: SimDuration,
        action: TimerAction,
    ) -> u64 {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(tag, action);
        ctx.set_timer(delay, tag);
        tag
    }

    fn shard_of(&self, key: Key) -> usize {
        (key.0 % self.cfg.shard_nodes.len() as u64) as usize
    }

    fn shards_for(&self, keys: &[Key]) -> Vec<usize> {
        let mut shards: Vec<usize> = keys.iter().map(|k| self.shard_of(*k)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    fn fresh_value(&mut self, ctx: &Context<SpannerMsg>) -> Value {
        self.value_counter += 1;
        Value(((ctx.node_id() as u64 + 1) << 40) | self.value_counter)
    }

    /// Estimated minimum commit latency (in microseconds) when using
    /// `coordinator` for a transaction spanning `participants`.
    fn estimate_commit_latency(&self, coordinator: usize, participants: &[usize]) -> u64 {
        let client = Region(self.cfg.region);
        let coord_region = Region(self.cfg.shard_regions[coordinator]);
        let one_way_client = self.cfg.net.one_way(client, coord_region).as_micros();
        let prepare = participants
            .iter()
            .map(|&p| {
                let pr = Region(self.cfg.shard_regions[p]);
                let net = if p == coordinator {
                    0
                } else {
                    2 * self.cfg.net.one_way(coord_region, pr).as_micros()
                };
                net + self.cfg.replication_delays[p].as_micros()
            })
            .max()
            .unwrap_or(0);
        let commit = self.cfg.replication_delays[coordinator].as_micros()
            + 2 * self.cfg.truetime_epsilon.as_micros();
        2 * one_way_client + prepare + commit
    }

    fn pick_coordinator(&self, participants: &[usize]) -> (usize, u64) {
        participants
            .iter()
            .map(|&c| (c, self.estimate_commit_latency(c, participants)))
            .min_by_key(|&(_, est)| est)
            .expect("transactions access at least one shard")
    }

    fn start_txn(&mut self, ctx: &mut Context<SpannerMsg>, session: u64) {
        if ctx.now() >= self.cfg.stop_issuing_at {
            self.sessions.remove(&session);
            return;
        }
        if !self.sessions.contains_key(&session) {
            return;
        }
        let request = self.workload.next_request(ctx.rng());
        let seq = self.next_seq;
        self.next_seq += 1;
        let txn = ActiveTxn {
            session,
            request,
            invoke: ctx.now(),
            phase: Phase::Execute { pending: HashSet::new() },
            attempts: 1,
            writes_by_shard: Vec::new(),
            coordinator: 0,
            t_ee: 0,
            commit_timer: None,
            t_read: 0,
            t_min_at_start: 0,
            versions: HashMap::new(),
            skipped: HashMap::new(),
            resolved_early: HashSet::new(),
            t_snap: 0,
        };
        self.txns.insert(seq, txn);
        self.issue(ctx, seq);
    }

    /// Issues (or re-issues, after an abort) the transaction `seq`.
    fn issue(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64) {
        let (request, session) = {
            let t = &self.txns[&seq];
            (t.request.clone(), t.session)
        };
        let txn_id = TxnId { client: ctx.node_id(), seq };
        match &request {
            TxnRequest::ReadWrite { keys } => {
                let shards = self.shards_for(keys);
                let pending: HashSet<NodeId> =
                    shards.iter().map(|&s| self.cfg.shard_nodes[s]).collect();
                for &s in &shards {
                    let shard_keys: Vec<Key> =
                        keys.iter().filter(|k| self.shard_of(**k) == s).copied().collect();
                    ctx.send(
                        self.cfg.shard_nodes[s],
                        SpannerMsg::ExecRead { txn: txn_id, keys: shard_keys },
                    );
                }
                let t = self.txns.get_mut(&seq).expect("transaction exists");
                t.phase = Phase::Execute { pending };
            }
            TxnRequest::ReadOnly { keys } => {
                let t_read = ctx.truetime_now().latest.as_micros();
                let t_min = match self.cfg.mode {
                    Mode::Spanner => 0,
                    Mode::SpannerRss => self.sessions.get(&session).map(|s| s.t_min).unwrap_or(0),
                };
                let shards = self.shards_for(keys);
                let pending: HashSet<NodeId> =
                    shards.iter().map(|&s| self.cfg.shard_nodes[s]).collect();
                for &s in &shards {
                    let shard_keys: Vec<Key> =
                        keys.iter().filter(|k| self.shard_of(**k) == s).copied().collect();
                    ctx.send(
                        self.cfg.shard_nodes[s],
                        SpannerMsg::RoCommit { txn: txn_id, keys: shard_keys, t_read, t_min },
                    );
                }
                let t = self.txns.get_mut(&seq).expect("transaction exists");
                t.t_read = t_read;
                t.t_min_at_start = t_min;
                t.phase = Phase::RoFast { pending };
            }
        }
    }

    fn begin_commit(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64) {
        let keys: Vec<Key> = self.txns[&seq].request.keys().to_vec();
        let shards = self.shards_for(&keys);
        let (coordinator, est) = self.pick_coordinator(&shards);
        let t_ee = ctx.truetime_now().earliest.as_micros() + est;
        // Assign fresh, globally unique values to every written key and group
        // the writes by participant shard.
        let mut assigned: Vec<(NodeId, Vec<(Key, Value)>)> = Vec::new();
        for &s in &shards {
            let shard_keys: Vec<Key> =
                keys.iter().filter(|k| self.shard_of(**k) == s).copied().collect();
            let mut vs = Vec::with_capacity(shard_keys.len());
            for k in shard_keys {
                let v = self.fresh_value(ctx);
                vs.push((k, v));
            }
            assigned.push((self.cfg.shard_nodes[s], vs));
        }
        let txn_id = TxnId { client: ctx.node_id(), seq };
        let coord_node = self.cfg.shard_nodes[coordinator];
        ctx.send(
            coord_node,
            SpannerMsg::CommitRequest { txn: txn_id, writes_by_shard: assigned.clone(), t_ee },
        );
        let timeout = self.cfg.commit_timeout;
        let tag = self.set_timer(ctx, timeout, TimerAction::CommitTimeout { seq });
        let t = self.txns.get_mut(&seq).expect("transaction exists");
        t.phase = Phase::Committing;
        t.writes_by_shard = assigned;
        t.coordinator = coord_node;
        t.t_ee = t_ee;
        t.commit_timer = Some(tag);
    }

    fn finish_txn(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64, record: CompletedTxn) {
        let txn = self.txns.remove(&seq).expect("transaction exists");
        if record.is_ro {
            self.stats.ro_completed += 1;
        } else {
            self.stats.rw_completed += 1;
        }
        self.completed.push(record);
        self.continue_session(ctx, txn.session);
    }

    fn continue_session(&mut self, ctx: &mut Context<SpannerMsg>, session: u64) {
        if !self.sessions.contains_key(&session) {
            return;
        }
        match self.cfg.driver.clone() {
            Driver::ClosedLoop { think_time, .. } => {
                self.set_timer(ctx, think_time, TimerAction::StartTxn { session });
            }
            Driver::PartlyOpen { stay_probability, think_time, .. } => {
                if ctx.rng().gen_bool(stay_probability) {
                    self.set_timer(ctx, think_time, TimerAction::StartTxn { session });
                } else {
                    self.sessions.remove(&session);
                }
            }
        }
    }

    // ----- Read-only completion logic (Algorithm 1) -----

    fn ro_calculate_snapshot(&self, seq: u64) -> Ts {
        let txn = &self.txns[&seq];
        let mut t_snap = 0;
        for key in txn.request.keys() {
            let earliest = txn
                .versions
                .get(key)
                .and_then(|vs| vs.iter().map(|(ts, _)| *ts).min())
                .unwrap_or(0);
            t_snap = t_snap.max(earliest);
        }
        t_snap
    }

    fn ro_try_finish(&mut self, ctx: &mut Context<SpannerMsg>, seq: u64) {
        let (t_snap, ready) = {
            let txn = &self.txns[&seq];
            let t_snap = if txn.t_snap == 0 { self.ro_calculate_snapshot(seq) } else { txn.t_snap };
            let min_prepared = txn.skipped.values().copied().min();
            let ready = match min_prepared {
                None => true,
                Some(tp) => tp > t_snap,
            };
            (t_snap, ready)
        };
        {
            let txn = self.txns.get_mut(&seq).expect("transaction exists");
            txn.t_snap = t_snap;
        }
        if !ready {
            let txn = self.txns.get_mut(&seq).expect("transaction exists");
            if !matches!(txn.phase, Phase::RoSlow) {
                txn.phase = Phase::RoSlow;
                self.stats.ro_waited_slow += 1;
            }
            return;
        }
        // Assemble the result: for each key, the latest version at or before
        // the snapshot timestamp.
        let (record, session, t_snap) = {
            let txn = &self.txns[&seq];
            let keys = txn.request.keys().to_vec();
            let mut results = Vec::new();
            for key in &keys {
                let v = txn
                    .versions
                    .get(key)
                    .and_then(|vs| {
                        vs.iter().filter(|(ts, _)| *ts <= t_snap).max_by_key(|(ts, _)| *ts).copied()
                    })
                    .map(|(_, v)| v)
                    .unwrap_or(Value::NULL);
                results.push((*key, v));
            }
            let timestamp = match self.cfg.mode {
                Mode::Spanner => txn.t_read,
                Mode::SpannerRss => t_snap.max(txn.t_min_at_start),
            };
            (
                CompletedTxn {
                    is_ro: true,
                    read_keys: keys,
                    read_results: results,
                    writes: Vec::new(),
                    invoke: txn.invoke,
                    finish: ctx.now(),
                    timestamp,
                    session: txn.session,
                    attempts: txn.attempts,
                    orphan: false,
                },
                txn.session,
                t_snap,
            )
        };
        if let Some(s) = self.sessions.get_mut(&session) {
            s.t_min = s.t_min.max(t_snap);
        }
        self.finish_txn(ctx, seq, record);
    }
}

impl regular_sim::engine::Node<SpannerMsg> for ClientNode {
    fn on_start(&mut self, ctx: &mut Context<SpannerMsg>) {
        match self.cfg.driver.clone() {
            Driver::ClosedLoop { sessions, .. } => {
                for _ in 0..sessions {
                    let id = self.next_session;
                    self.next_session += 1;
                    self.sessions.insert(id, Session { t_min: 0 });
                    // Stagger session starts slightly to avoid a thundering herd
                    // at time zero.
                    let jitter = SimDuration::from_micros(ctx.rng().gen_range(0..1_000));
                    self.set_timer(ctx, jitter, TimerAction::StartTxn { session: id });
                }
            }
            Driver::PartlyOpen { arrival_rate, .. } => {
                if arrival_rate > 0.0 {
                    let delay = exponential_delay(ctx, arrival_rate);
                    self.set_timer(ctx, delay, TimerAction::SessionArrival);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<SpannerMsg>, tag: u64) {
        let Some(action) = self.timers.remove(&tag) else { return };
        match action {
            TimerAction::StartTxn { session } => self.start_txn(ctx, session),
            TimerAction::RetryTxn { seq } => self.issue(ctx, seq),
            TimerAction::SessionArrival => {
                if ctx.now() < self.cfg.stop_issuing_at {
                    let id = self.next_session;
                    self.next_session += 1;
                    self.sessions.insert(id, Session { t_min: 0 });
                    self.start_txn(ctx, id);
                    if let Driver::PartlyOpen { arrival_rate, .. } = self.cfg.driver {
                        let delay = exponential_delay(ctx, arrival_rate);
                        self.set_timer(ctx, delay, TimerAction::SessionArrival);
                    }
                }
            }
            TimerAction::CommitTimeout { seq } => {
                let Some(txn) = self.txns.get(&seq) else { return };
                if !matches!(txn.phase, Phase::Committing) {
                    return;
                }
                self.stats.aborted_attempts += 1;
                let coordinator = txn.coordinator;
                let old_id = TxnId { client: ctx.node_id(), seq };
                ctx.send(coordinator, SpannerMsg::AbortRequest { txn: old_id });
                // Move the attempt to the abandoned set: if the commit still
                // lands, its writes become part of the history as an orphan.
                let old = self.txns.remove(&seq).expect("transaction exists");
                self.abandoned.insert(
                    seq,
                    AbandonedTxn {
                        session: old.session,
                        invoke: old.invoke,
                        attempts: old.attempts,
                        writes: old.writes_by_shard.iter().flat_map(|(_, w)| w.clone()).collect(),
                    },
                );
                // Re-issue under a fresh sequence number so stale replies are
                // not confused with the new attempt.
                let new_seq = self.next_seq;
                self.next_seq += 1;
                self.txns.insert(
                    new_seq,
                    ActiveTxn {
                        session: old.session,
                        request: old.request,
                        invoke: old.invoke,
                        phase: Phase::Execute { pending: HashSet::new() },
                        attempts: old.attempts + 1,
                        writes_by_shard: Vec::new(),
                        coordinator: 0,
                        t_ee: 0,
                        commit_timer: None,
                        t_read: 0,
                        t_min_at_start: 0,
                        versions: HashMap::new(),
                        skipped: HashMap::new(),
                        resolved_early: HashSet::new(),
                        t_snap: 0,
                    },
                );
                let backoff = self.cfg.retry_backoff;
                self.set_timer(ctx, backoff, TimerAction::RetryTxn { seq: new_seq });
            }
            TimerAction::FinishRw { seq, t_commit } => {
                let Some(txn) = self.txns.get(&seq) else { return };
                let record = CompletedTxn {
                    is_ro: false,
                    read_keys: Vec::new(),
                    read_results: Vec::new(),
                    writes: txn.writes_by_shard.iter().flat_map(|(_, w)| w.clone()).collect(),
                    invoke: txn.invoke,
                    finish: ctx.now(),
                    timestamp: t_commit,
                    session: txn.session,
                    attempts: txn.attempts,
                    orphan: false,
                };
                if let Some(s) = self.sessions.get_mut(&txn.session) {
                    s.t_min = s.t_min.max(t_commit);
                }
                self.finish_txn(ctx, seq, record);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<SpannerMsg>, from: NodeId, msg: SpannerMsg) {
        match msg {
            SpannerMsg::ExecReadReply { txn, .. } => {
                let seq = txn.seq;
                let ready = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    match &mut t.phase {
                        Phase::Execute { pending } => {
                            pending.remove(&from);
                            pending.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.begin_commit(ctx, seq);
                }
            }
            SpannerMsg::CommitReply { txn, commit, t_commit } => {
                let seq = txn.seq;
                if let Some(orphan) = self.abandoned.remove(&seq) {
                    // The client had already given up on this attempt; if the
                    // commit landed anyway, record its (visible) writes.
                    if commit {
                        self.completed.push(CompletedTxn {
                            is_ro: false,
                            read_keys: Vec::new(),
                            read_results: Vec::new(),
                            writes: orphan.writes,
                            invoke: orphan.invoke,
                            finish: ctx.now(),
                            timestamp: t_commit,
                            session: orphan.session,
                            attempts: orphan.attempts,
                            orphan: true,
                        });
                    }
                    return;
                }
                let Some(t) = self.txns.get_mut(&seq) else {
                    return;
                };
                if !matches!(t.phase, Phase::Committing) {
                    return;
                }
                if let Some(tag) = t.commit_timer.take() {
                    self.timers.remove(&tag);
                }
                if commit {
                    let t_ee = t.t_ee;
                    // Ensure the earliest end time really is in the past
                    // before reporting completion (Section 5).
                    let now_earliest = ctx.truetime_now().earliest.as_micros();
                    let delay = if t_ee >= now_earliest {
                        SimDuration::from_micros(t_ee - now_earliest + 1)
                    } else {
                        SimDuration::ZERO
                    };
                    self.set_timer(ctx, delay, TimerAction::FinishRw { seq, t_commit });
                } else {
                    // Aborted by the coordinator; retry after a back-off.
                    let t = self.txns.get_mut(&seq).expect("transaction exists");
                    t.attempts += 1;
                    t.phase = Phase::Execute { pending: HashSet::new() };
                    self.stats.aborted_attempts += 1;
                    let backoff = self.cfg.retry_backoff;
                    self.set_timer(ctx, backoff, TimerAction::RetryTxn { seq });
                }
            }
            SpannerMsg::RoReply { txn, values, .. } => {
                let seq = txn.seq;
                let ready = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    for (k, ts, v) in values {
                        t.versions.entry(k).or_default().push((ts, v));
                    }
                    match &mut t.phase {
                        Phase::RoFast { pending } => {
                            pending.remove(&from);
                            pending.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.ro_try_finish(ctx, seq);
                }
            }
            SpannerMsg::RoFastReply { txn, skipped, values, .. } => {
                let seq = txn.seq;
                let ready = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    for (k, ts, v) in values {
                        t.versions.entry(k).or_default().push((ts, v));
                    }
                    for PreparedInfo { txn: id, t_prepare } in skipped {
                        if !t.resolved_early.contains(&id) {
                            t.skipped.insert(id, t_prepare);
                        }
                    }
                    match &mut t.phase {
                        Phase::RoFast { pending } => {
                            pending.remove(&from);
                            pending.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.ro_try_finish(ctx, seq);
                }
            }
            SpannerMsg::RoSlowReply { txn, resolved, committed, t_commit, values, .. } => {
                let seq = txn.seq;
                let evaluate = {
                    let Some(t) = self.txns.get_mut(&seq) else { return };
                    if t.skipped.remove(&resolved).is_none() {
                        t.resolved_early.insert(resolved);
                    }
                    if committed {
                        for (k, ts, v) in values {
                            let _ = t_commit;
                            t.versions.entry(k).or_default().push((ts, v));
                        }
                    }
                    matches!(t.phase, Phase::RoSlow)
                };
                if evaluate {
                    self.ro_try_finish(ctx, seq);
                }
            }
            _ => {}
        }
    }
}

/// Draws an exponentially distributed inter-arrival delay for the given rate
/// (events per second).
fn exponential_delay(ctx: &mut Context<SpannerMsg>, rate_per_sec: f64) -> SimDuration {
    let u: f64 = ctx.rng().gen_range(1e-12..1.0);
    let secs = -u.ln() / rate_per_sec;
    SimDuration::from_micros((secs * 1_000_000.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_request_accessors() {
        let rw = TxnRequest::ReadWrite { keys: vec![Key(1), Key(2)] };
        let ro = TxnRequest::ReadOnly { keys: vec![Key(3)] };
        assert!(!rw.is_read_only());
        assert!(ro.is_read_only());
        assert_eq!(rw.keys().len(), 2);
    }

    #[test]
    fn completed_txn_is_cloneable() {
        let c = CompletedTxn {
            is_ro: true,
            read_keys: vec![Key(1)],
            read_results: vec![(Key(1), Value(5))],
            writes: vec![],
            invoke: SimTime::from_millis(1),
            finish: SimTime::from_millis(2),
            timestamp: 100,
            session: 0,
            attempts: 1,
            orphan: false,
        };
        let d = c.clone();
        assert_eq!(d.read_results[0].1, Value(5));
    }
}
