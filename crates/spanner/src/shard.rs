//! The shard leader node: two-phase commit participant/coordinator and the
//! read-only transaction server (Algorithm 2).
//!
//! Each shard is simulated as its leader; replication of prepare and commit
//! records to a majority is modeled as a fixed delay (the round-trip time to
//! the nearest replica), and the Paxos safe time is advanced eagerly as the
//! leader-lease optimization in the paper permits.

use regular_core::hashing::{FxHashMap, FxHashSet};

use regular_core::types::{Key, Value};
use regular_sim::engine::{Context, NodeId};
use regular_sim::time::SimDuration;
use regular_storage::wal::{RecoveredLog, Wal, WalStats};
use regular_storage::Durability;

use crate::config::{Mode, SpannerConfig};
use crate::durable::{ShardRecord, ShardSnapshot, SnapCoord, SnapPrepared};
use crate::locks::LockTable;
use crate::messages::{PreparedInfo, SpannerMsg, Ts, TxnId};
use crate::storage::MvccStore;

/// A prepared-but-undecided read-write transaction at this shard.
#[derive(Debug, Clone)]
struct PreparedTxn {
    writes: Vec<(Key, Value)>,
    t_prepare: Ts,
    t_ee: Ts,
    /// The coordinator to re-ack after a crash (recovery re-drives 2PC).
    coordinator: NodeId,
}

/// A prepare request still waiting for its write locks.
#[derive(Debug, Clone)]
struct PendingPrepare {
    writes: Vec<(Key, Value)>,
    t_ee: Ts,
    coordinator: NodeId,
}

/// Coordinator-side state of a two-phase commit this shard is driving.
///
/// In Spanner the coordinator is itself a Paxos group, so this state (like
/// the decision log) survives leader crashes; recovery re-sends `Prepare` to
/// the participants still awaited.
#[derive(Debug, Clone)]
struct CoordState {
    client: NodeId,
    participants: Vec<NodeId>,
    awaiting: FxHashSet<NodeId>,
    max_prepare: Ts,
    /// The prepared writes per participant, kept so a recovered coordinator
    /// can re-drive the prepare round.
    writes_by_shard: Vec<(NodeId, Vec<(Key, Value)>)>,
    t_ee: Ts,
    /// When the vote set is complete: the simulated time at which the
    /// commit-wait timer releases the decision. Durable (checkpointed and
    /// WAL-logged via `CoordTs`) so a recovered coordinator re-arms the
    /// release instead of holding a complete round forever.
    commit_fire_at_us: Option<u64>,
}

/// A baseline read-only transaction blocked on conflicting prepared
/// transactions (Spanner) or a Spanner-RSS read-only transaction blocked on
/// its must-observe set `B` (Algorithm 2, line 7).
#[derive(Debug, Clone)]
struct BlockedRo {
    client: NodeId,
    txn: TxnId,
    keys: Vec<Key>,
    t_read: Ts,
    blockers: FxHashSet<TxnId>,
}

/// A Spanner-RSS read-only transaction for which this shard still owes slow
/// replies about skipped prepared transactions (Algorithm 2, lines 11-18).
#[derive(Debug, Clone)]
struct RssWatcher {
    client: NodeId,
    txn: TxnId,
    keys: Vec<Key>,
    pending: FxHashSet<TxnId>,
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Read-only requests answered without blocking.
    pub ro_immediate: u64,
    /// Read-only requests that had to block (baseline) or wait for their `B`
    /// set (Spanner-RSS).
    pub ro_blocked: u64,
    /// Prepared transactions skipped by Spanner-RSS fast replies.
    pub ro_skipped_prepared: u64,
    /// Slow replies sent (Spanner-RSS only).
    pub ro_slow_replies: u64,
    /// Transactions prepared.
    pub prepares: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
}

/// The shard leader node.
pub struct ShardNode {
    mode: Mode,
    disable_tee_skip: bool,
    shard_index: usize,
    replication_delay: SimDuration,
    store: MvccStore,
    locks: LockTable,
    prepared: FxHashMap<TxnId, PreparedTxn>,
    pending_prepares: FxHashMap<TxnId, PendingPrepare>,
    coordinating: FxHashMap<TxnId, CoordState>,
    /// Commit/abort decisions this shard coordinated (the durable decision
    /// log): lets a recovered participant re-learn an outcome it missed.
    decided: FxHashMap<TxnId, (bool, Ts)>,
    blocked_ros: Vec<BlockedRo>,
    rss_watchers: Vec<RssWatcher>,
    /// Floor for prepare and commit timestamps chosen at this shard; also
    /// plays the role of the Paxos safe time.
    max_ts: Ts,
    /// Commit-wait timers: tag -> transaction.
    timers: FxHashMap<u64, TxnId>,
    /// Decision-probe timers (tag -> transaction): a prepared participant
    /// that has not learned its outcome re-acks `PrepareOk` so the
    /// coordinator re-answers from the decision log (2PC cooperative
    /// termination). Without it, one dropped `CommitDecision` leaves the
    /// participant's write locks held forever and every later transaction
    /// touching those keys livelocks.
    probe_timers: FxHashMap<u64, TxnId>,
    /// Prepare re-drive timers (tag -> transaction): a coordinator whose
    /// vote set is still incomplete re-sends `Prepare` to the awaited
    /// participants, exactly as crash recovery does. Without it, one
    /// dropped `Prepare` leaves the round open forever — and the
    /// cooperative-termination `StatusRequest` stays silent while a round
    /// is open, so the client's probe loop never terminates either.
    redrive_timers: FxHashMap<u64, TxnId>,
    /// Interval between decision probes for prepared-but-undecided
    /// transactions and prepare re-drives for open coordinator rounds.
    decision_probe: SimDuration,
    next_timer: u64,
    /// Statistics for the harness.
    pub stats: ShardStats,
    /// The write-ahead log under `Durability::Wal`; `None` keeps the
    /// pre-existing in-memory behaviour on every path.
    wal: Option<Wal>,
    /// Outbound messages held back until the records they depend on are
    /// synced (group commit): releasing an ack before its record is durable
    /// would let a torn tail contradict something the world already saw.
    wal_pending: Vec<(NodeId, SimDuration, SpannerMsg)>,
    /// Armed group-commit flush timer, if any.
    flush_timer: Option<u64>,
}

impl ShardNode {
    /// Creates a shard leader for `shard_index` under the given configuration.
    pub fn new(cfg: &SpannerConfig, shard_index: usize, replication_delay: SimDuration) -> Self {
        let (wal, recovered) = match &cfg.durability {
            Durability::InMemory => (None, None),
            Durability::Wal(opts) => {
                let (wal, log) = Wal::open(opts, &format!("spanner-shard-{shard_index}"));
                (Some(wal), Some(log))
            }
        };
        let mut node = ShardNode {
            mode: cfg.mode,
            disable_tee_skip: cfg.disable_tee_skip,
            shard_index,
            replication_delay,
            store: MvccStore::new(),
            locks: LockTable::new(),
            prepared: FxHashMap::default(),
            pending_prepares: FxHashMap::default(),
            coordinating: FxHashMap::default(),
            decided: FxHashMap::default(),
            blocked_ros: Vec::new(),
            rss_watchers: Vec::new(),
            max_ts: 0,
            timers: FxHashMap::default(),
            probe_timers: FxHashMap::default(),
            redrive_timers: FxHashMap::default(),
            decision_probe: cfg.commit_timeout,
            next_timer: 0,
            stats: ShardStats::default(),
            wal,
            wal_pending: Vec::new(),
            flush_timer: None,
        };
        // A pre-existing log (a live-plane process restart) replays into the
        // initial state; fresh simulation runs start from an empty device.
        if let Some(log) = recovered {
            node.apply_replay(log);
        }
        node
    }

    /// WAL counters for this shard (zeroes under `Durability::InMemory`).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// Whether this shard runs on a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends a durable state transition to the WAL (no-op when in-memory).
    fn log(&mut self, ctx: &Context<SpannerMsg>, rec: &ShardRecord) {
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&rec.encode(), ctx.now().as_micros());
        }
    }

    /// Sends `msg` to `to` (after `extra` delay), holding it back while the
    /// WAL has unsynced records: a message must never reveal state the log
    /// could still lose. FIFO order with earlier held messages is preserved.
    fn send_d(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        to: NodeId,
        extra: SimDuration,
        msg: SpannerMsg,
    ) {
        let gated =
            self.wal.as_ref().is_some_and(|w| w.wants_sync()) || !self.wal_pending.is_empty();
        if gated {
            self.wal_pending.push((to, extra, msg));
        } else if extra == SimDuration::ZERO {
            ctx.send(to, msg);
        } else {
            ctx.send_after(to, extra, msg);
        }
    }

    fn release_pending(&mut self, ctx: &mut Context<SpannerMsg>) {
        for (to, extra, msg) in std::mem::take(&mut self.wal_pending) {
            if extra == SimDuration::ZERO {
                ctx.send(to, msg);
            } else {
                ctx.send_after(to, extra, msg);
            }
        }
    }

    /// Group-commit bookkeeping at the end of every handler turn: write a
    /// due checkpoint, sync immediately (window 0 or expired) or arm the
    /// flush timer, and release held messages once nothing is unsynced.
    fn turn_end(&mut self, ctx: &mut Context<SpannerMsg>) {
        if self.wal.is_none() {
            debug_assert!(self.wal_pending.is_empty());
            return;
        }
        if self.wal.as_ref().unwrap().checkpoint_due() {
            let snapshot = self.encode_snapshot();
            self.wal.as_mut().unwrap().checkpoint(&snapshot);
        }
        let now = ctx.now().as_micros();
        let wal = self.wal.as_mut().unwrap();
        if wal.wants_sync() {
            let deadline = wal.deadline_us().expect("dirty log has a deadline");
            if wal.group_commit_us() == 0 || deadline <= now {
                wal.sync();
            } else if self.flush_timer.is_none() {
                let tag = self.next_timer;
                self.next_timer += 1;
                self.flush_timer = Some(tag);
                ctx.set_timer(SimDuration::from_micros(deadline - now), tag);
            }
        }
        if !self.wal.as_ref().unwrap().wants_sync() {
            self.release_pending(ctx);
        }
    }

    /// Serializes the durable state for a checkpoint, deterministically.
    fn encode_snapshot(&self) -> Vec<u8> {
        let mut versions = self.store.dump();
        versions.sort_unstable_by_key(|(k, ts, _)| (k.0, *ts));
        let mut prepared: Vec<SnapPrepared> = self
            .prepared
            .iter()
            .map(|(txn, p)| SnapPrepared {
                txn: *txn,
                writes: p.writes.clone(),
                t_prepare: p.t_prepare,
                t_ee: p.t_ee,
                coordinator: p.coordinator,
            })
            .collect();
        prepared.sort_unstable_by_key(|p| p.txn);
        let mut coordinating: Vec<SnapCoord> = self
            .coordinating
            .iter()
            .map(|(txn, s)| {
                let mut awaiting: Vec<NodeId> = s.awaiting.iter().copied().collect();
                awaiting.sort_unstable();
                SnapCoord {
                    txn: *txn,
                    client: s.client,
                    t_ee: s.t_ee,
                    max_prepare: s.max_prepare,
                    commit_fire_at_us: s.commit_fire_at_us,
                    writes_by_shard: s.writes_by_shard.clone(),
                    awaiting,
                }
            })
            .collect();
        coordinating.sort_unstable_by_key(|c| c.txn);
        let mut decided: Vec<(TxnId, bool, Ts)> =
            self.decided.iter().map(|(txn, &(c, t))| (*txn, c, t)).collect();
        decided.sort_unstable_by_key(|d| d.0);
        ShardSnapshot { max_ts: self.max_ts, versions, prepared, coordinating, decided }.encode()
    }

    /// Rebuilds durable state from a recovered snapshot + log tail. Volatile
    /// state (pending prepares, parked reads, timers) stays empty; the
    /// recovery hook re-arms what protocol liveness needs.
    fn apply_replay(&mut self, log: RecoveredLog) {
        if let Some(snap) = log.snapshot.as_deref().and_then(ShardSnapshot::decode) {
            self.max_ts = self.max_ts.max(snap.max_ts);
            for (key, ts, value) in snap.versions {
                self.store.apply(key, ts, value);
            }
            for p in snap.prepared {
                let keys: Vec<Key> = p.writes.iter().map(|(k, _)| *k).collect();
                let granted = self.locks.acquire(p.txn, &keys);
                debug_assert!(granted, "prepared transactions hold disjoint locks");
                self.prepared.insert(
                    p.txn,
                    PreparedTxn {
                        writes: p.writes,
                        t_prepare: p.t_prepare,
                        t_ee: p.t_ee,
                        coordinator: p.coordinator,
                    },
                );
            }
            for c in snap.coordinating {
                let participants: Vec<NodeId> = c.writes_by_shard.iter().map(|(n, _)| *n).collect();
                self.coordinating.insert(
                    c.txn,
                    CoordState {
                        client: c.client,
                        participants,
                        awaiting: c.awaiting.into_iter().collect(),
                        max_prepare: c.max_prepare,
                        writes_by_shard: c.writes_by_shard,
                        t_ee: c.t_ee,
                        commit_fire_at_us: c.commit_fire_at_us,
                    },
                );
            }
            for (txn, commit, t_commit) in snap.decided {
                self.decided.insert(txn, (commit, t_commit));
            }
        }
        for bytes in &log.records {
            let Some(rec) = ShardRecord::decode(bytes) else {
                debug_assert!(false, "crc-valid record failed to decode");
                continue;
            };
            self.replay_record(rec);
        }
    }

    fn replay_record(&mut self, rec: ShardRecord) {
        match rec {
            ShardRecord::Prepare { txn, t_prepare, t_ee, coordinator, writes } => {
                let keys: Vec<Key> = writes.iter().map(|(k, _)| *k).collect();
                let granted = self.locks.acquire(txn, &keys);
                debug_assert!(granted, "replayed prepares hold disjoint locks");
                self.max_ts = self.max_ts.max(t_prepare);
                self.prepared.insert(txn, PreparedTxn { writes, t_prepare, t_ee, coordinator });
            }
            ShardRecord::Decision { txn, commit, t_commit } => {
                self.decided.insert(txn, (commit, t_commit));
                self.coordinating.remove(&txn);
                if let Some(p) = self.prepared.remove(&txn) {
                    if commit {
                        for (k, v) in &p.writes {
                            self.store.apply(*k, t_commit, *v);
                        }
                        self.max_ts = self.max_ts.max(t_commit);
                    }
                    let _ = self.locks.release(txn);
                }
            }
            ShardRecord::CoordBegin { txn, client, t_ee, writes_by_shard } => {
                let participants: Vec<NodeId> = writes_by_shard.iter().map(|(n, _)| *n).collect();
                self.coordinating.insert(
                    txn,
                    CoordState {
                        client,
                        participants: participants.clone(),
                        awaiting: participants.into_iter().collect(),
                        max_prepare: 0,
                        writes_by_shard,
                        t_ee,
                        commit_fire_at_us: None,
                    },
                );
            }
            ShardRecord::CoordVote { txn, shard, t_prepare } => {
                if let Some(state) = self.coordinating.get_mut(&txn) {
                    state.awaiting.remove(&shard);
                    state.max_prepare = state.max_prepare.max(t_prepare);
                }
            }
            ShardRecord::CoordTs { txn, t_commit, fire_at_us } => {
                self.max_ts = self.max_ts.max(t_commit);
                if let Some(state) = self.coordinating.get_mut(&txn) {
                    state.max_prepare = t_commit;
                    state.commit_fire_at_us = Some(fire_at_us);
                }
            }
            ShardRecord::SafeTime { ts } => {
                self.max_ts = self.max_ts.max(ts);
            }
        }
    }

    /// The shard index this leader serves.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Read access to the multi-version store (for tests and harnesses).
    pub fn store(&self) -> &MvccStore {
        &self.store
    }

    /// One-line summary of in-flight 2PC state, for diagnosing stuck runs:
    /// prepared-but-undecided transactions (their write locks are held),
    /// prepares queued on locks, open coordinator rounds, and parked
    /// read-only work.
    pub fn debug_inflight(&self) -> String {
        let undriven: Vec<_> = self
            .coordinating
            .iter()
            .filter(|(_, s)| !s.awaiting.is_empty())
            .map(|(t, s)| (*t, s.awaiting.len()))
            .collect();
        format!(
            "shard {}: prepared={:?} pending={:?} coordinating(awaiting)={:?} blocked_ros={} watchers={}",
            self.shard_index,
            self.prepared.keys().collect::<Vec<_>>(),
            self.pending_prepares.keys().collect::<Vec<_>>(),
            undriven,
            self.blocked_ros.len(),
            self.rss_watchers.len(),
        )
    }

    fn read_values(&self, keys: &[Key], t_read: Ts) -> Vec<(Key, Ts, Value)> {
        keys.iter()
            .map(|k| {
                let (ts, v) = self.store.read_at(*k, t_read);
                (*k, ts, v)
            })
            .collect()
    }

    fn conflicting_prepared(&self, keys: &[Key], t_read: Ts) -> Vec<(TxnId, Ts, Ts)> {
        self.prepared
            .iter()
            .filter(|(_, p)| {
                p.t_prepare <= t_read && p.writes.iter().any(|(k, _)| keys.contains(k))
            })
            .map(|(id, p)| (*id, p.t_prepare, p.t_ee))
            .collect()
    }

    fn finish_prepare(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        txn: TxnId,
        writes: Vec<(Key, Value)>,
        t_ee: Ts,
        coordinator: NodeId,
    ) {
        let tt = ctx.truetime_now();
        let t_prepare = (self.max_ts + 1).max(tt.latest.as_micros());
        self.max_ts = t_prepare;
        self.prepared
            .insert(txn, PreparedTxn { writes: writes.clone(), t_prepare, t_ee, coordinator });
        self.stats.prepares += 1;
        self.log(ctx, &ShardRecord::Prepare { txn, t_prepare, t_ee, coordinator, writes });
        // The prepare record is durable at a majority after one replication
        // round trip; only then may the participant vote yes.
        self.send_d(
            ctx,
            coordinator,
            self.replication_delay,
            SpannerMsg::PrepareOk { txn, shard: ctx.node_id(), t_prepare },
        );
        self.arm_decision_probe(ctx, txn);
    }

    /// Arms the cooperative-termination probe for a prepared transaction:
    /// while the outcome is unknown, periodically re-ack `PrepareOk` so the
    /// coordinator (or its decision log) re-sends the decision this shard
    /// may have missed.
    fn arm_decision_probe(&mut self, ctx: &mut Context<SpannerMsg>, txn: TxnId) {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.probe_timers.insert(tag, txn);
        ctx.set_timer(self.decision_probe, tag);
    }

    /// Arms the prepare re-drive for a coordinator round still awaiting
    /// votes; the timer keeps re-arming until the vote set completes or the
    /// round is aborted.
    fn arm_prepare_redrive(&mut self, ctx: &mut Context<SpannerMsg>, txn: TxnId) {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.redrive_timers.insert(tag, txn);
        ctx.set_timer(self.decision_probe, tag);
    }

    fn handle_prepare(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        txn: TxnId,
        writes: Vec<(Key, Value)>,
        t_ee: Ts,
        coordinator: NodeId,
    ) {
        // Duplicate Prepare (a recovered coordinator re-driving its round,
        // or a duplicated message): the prepare record is durable, so
        // re-ack with the original timestamp instead of preparing twice.
        if let Some(p) = self.prepared.get(&txn) {
            let t_prepare = p.t_prepare;
            let reply = SpannerMsg::PrepareOk { txn, shard: ctx.node_id(), t_prepare };
            self.send_d(ctx, coordinator, SimDuration::ZERO, reply);
            return;
        }
        if self.pending_prepares.contains_key(&txn) {
            return;
        }
        let keys: Vec<Key> = writes.iter().map(|(k, _)| *k).collect();
        if self.locks.acquire(txn, &keys) {
            self.finish_prepare(ctx, txn, writes, t_ee, coordinator);
        } else {
            self.pending_prepares.insert(txn, PendingPrepare { writes, t_ee, coordinator });
        }
    }

    /// Applies a commit/abort decision locally: installs writes, releases
    /// locks, wakes queued prepares, and resolves read-only transactions that
    /// were blocked on (or watching) this transaction.
    fn apply_decision(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        txn: TxnId,
        commit: bool,
        t_commit: Ts,
    ) {
        let prepared = self.prepared.remove(&txn);
        let pending = self.pending_prepares.remove(&txn);
        // The participant-side durable transition: a prepared transaction
        // learned its outcome (its buffered writes install or evaporate).
        if prepared.is_some() {
            self.log(ctx, &ShardRecord::Decision { txn, commit, t_commit });
        }
        let written: Vec<(Key, Value)> = match (&prepared, commit) {
            (Some(p), true) => {
                for (k, v) in &p.writes {
                    self.store.apply(*k, t_commit, *v);
                }
                self.max_ts = self.max_ts.max(t_commit);
                self.stats.commits += 1;
                p.writes.clone()
            }
            _ => {
                if prepared.is_some() || pending.is_some() {
                    self.stats.aborts += 1;
                }
                Vec::new()
            }
        };
        let _ = written;
        // Release locks and grant queued prepares.
        let granted = self.locks.release(txn);
        for g in granted {
            if let Some(p) = self.pending_prepares.remove(&g) {
                self.finish_prepare(ctx, g, p.writes, p.t_ee, p.coordinator);
            }
        }
        // Wake blocked read-only transactions.
        let mut ready = Vec::new();
        for (i, b) in self.blocked_ros.iter_mut().enumerate() {
            if b.blockers.remove(&txn) && b.blockers.is_empty() {
                ready.push(i);
            }
        }
        for i in ready.into_iter().rev() {
            let b = self.blocked_ros.remove(i);
            self.answer_ro(ctx, b.client, b.txn, &b.keys, b.t_read);
        }
        // Send slow replies for RSS watchers (collected first: sends go
        // through the WAL gate, which needs `&mut self`).
        let mut done = Vec::new();
        let mut slow_replies = Vec::new();
        for (i, w) in self.rss_watchers.iter_mut().enumerate() {
            if w.pending.remove(&txn) {
                let values = if commit {
                    let relevant: Vec<(Key, Ts, Value)> = prepared
                        .as_ref()
                        .map(|p| {
                            p.writes
                                .iter()
                                .filter(|(k, _)| w.keys.contains(k))
                                .map(|(k, v)| (*k, t_commit, *v))
                                .collect()
                        })
                        .unwrap_or_default();
                    relevant
                } else {
                    Vec::new()
                };
                self.stats.ro_slow_replies += 1;
                slow_replies.push((
                    w.client,
                    SpannerMsg::RoSlowReply {
                        txn: w.txn,
                        shard: ctx.node_id(),
                        resolved: txn,
                        committed: commit,
                        t_commit,
                        values,
                    },
                ));
                if w.pending.is_empty() {
                    done.push(i);
                }
            }
        }
        for (client, reply) in slow_replies {
            self.send_d(ctx, client, SimDuration::ZERO, reply);
        }
        for i in done.into_iter().rev() {
            self.rss_watchers.remove(i);
        }
    }

    /// Answers a read-only request whose blocking requirement has been met:
    /// baseline replies with the snapshot at `t_read`; Spanner-RSS sends a
    /// fast reply listing any still-prepared conflicting transactions it
    /// skipped and registers a watcher for their outcomes.
    fn answer_ro(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        client: NodeId,
        txn: TxnId,
        keys: &[Key],
        t_read: Ts,
    ) {
        let values = self.read_values(keys, t_read);
        match self.mode {
            Mode::Spanner => {
                let reply = SpannerMsg::RoReply { txn, shard: ctx.node_id(), values };
                self.send_d(ctx, client, SimDuration::ZERO, reply);
            }
            Mode::SpannerRss => {
                let skipped: Vec<PreparedInfo> = self
                    .conflicting_prepared(keys, t_read)
                    .into_iter()
                    .map(|(id, t_prepare, _)| PreparedInfo { txn: id, t_prepare })
                    .collect();
                self.stats.ro_skipped_prepared += skipped.len() as u64;
                if !skipped.is_empty() {
                    self.rss_watchers.push(RssWatcher {
                        client,
                        txn,
                        keys: keys.to_vec(),
                        pending: skipped.iter().map(|p| p.txn).collect(),
                    });
                }
                let reply = SpannerMsg::RoFastReply { txn, shard: ctx.node_id(), skipped, values };
                self.send_d(ctx, client, SimDuration::ZERO, reply);
            }
        }
    }

    fn handle_ro(
        &mut self,
        ctx: &mut Context<SpannerMsg>,
        from: NodeId,
        txn: TxnId,
        keys: Vec<Key>,
        t_read: Ts,
        t_min: Ts,
    ) {
        // Advance the safe time so every later prepare gets a timestamp above
        // t_read; this is what lets the reply remain valid at t_read. The
        // advance is durable: a recovered leader must not hand out a prepare
        // timestamp below a snapshot it already served.
        if t_read > self.max_ts {
            self.log(ctx, &ShardRecord::SafeTime { ts: t_read });
        }
        self.max_ts = self.max_ts.max(t_read);
        let conflicting = self.conflicting_prepared(&keys, t_read);
        let blockers: FxHashSet<TxnId> = match self.mode {
            // Baseline: block on every conflicting prepared transaction.
            Mode::Spanner => conflicting.iter().map(|(id, _, _)| *id).collect(),
            // Spanner-RSS: block only on the must-observe set B
            // (t_p ≤ t_min, or the transaction could have finished before the
            // read-only transaction started: t_ee ≤ t_read).
            Mode::SpannerRss => conflicting
                .iter()
                .filter(|(_, t_p, t_ee)| self.disable_tee_skip || *t_p <= t_min || *t_ee <= t_read)
                .map(|(id, _, _)| *id)
                .collect(),
        };
        if blockers.is_empty() {
            self.stats.ro_immediate += 1;
            self.answer_ro(ctx, from, txn, &keys, t_read);
        } else {
            self.stats.ro_blocked += 1;
            self.blocked_ros.push(BlockedRo { client: from, txn, keys, t_read, blockers });
        }
    }
}

impl ShardNode {
    fn dispatch_message(&mut self, ctx: &mut Context<SpannerMsg>, from: NodeId, msg: SpannerMsg) {
        match msg {
            SpannerMsg::ExecRead { txn, keys } => {
                let values = keys
                    .iter()
                    .map(|k| {
                        let (_, v) = self.store.read_at(*k, Ts::MAX);
                        (*k, v)
                    })
                    .collect();
                self.send_d(
                    ctx,
                    from,
                    SimDuration::ZERO,
                    SpannerMsg::ExecReadReply { txn, values },
                );
            }
            SpannerMsg::CommitRequest { txn, writes_by_shard, t_ee } => {
                // A duplicated request must not reset in-flight (or decided)
                // coordination state.
                if self.coordinating.contains_key(&txn) || self.decided.contains_key(&txn) {
                    return;
                }
                let participants: Vec<NodeId> = writes_by_shard.iter().map(|(n, _)| *n).collect();
                self.coordinating.insert(
                    txn,
                    CoordState {
                        client: from,
                        participants: participants.clone(),
                        awaiting: participants.iter().copied().collect(),
                        max_prepare: 0,
                        writes_by_shard: writes_by_shard.clone(),
                        t_ee,
                        commit_fire_at_us: None,
                    },
                );
                // The coordinator state is Paxos-replicated in Spanner; here
                // the round is opened in the log before any Prepare leaves.
                self.log(
                    ctx,
                    &ShardRecord::CoordBegin {
                        txn,
                        client: from,
                        t_ee,
                        writes_by_shard: writes_by_shard.clone(),
                    },
                );
                let coordinator = ctx.node_id();
                for (node, writes) in writes_by_shard {
                    self.send_d(
                        ctx,
                        node,
                        SimDuration::ZERO,
                        SpannerMsg::Prepare { txn, writes, t_ee, coordinator },
                    );
                }
                self.arm_prepare_redrive(ctx, txn);
            }
            SpannerMsg::Prepare { txn, writes, t_ee, coordinator } => {
                self.handle_prepare(ctx, txn, writes, t_ee, coordinator);
            }
            SpannerMsg::PrepareOk { txn, shard, t_prepare } => {
                let Some(state) = self.coordinating.get_mut(&txn) else {
                    // A recovered participant re-acking a transaction whose
                    // outcome was already decided: answer from the durable
                    // decision log so it can release its prepared state.
                    if let Some(&(commit, t_commit)) = self.decided.get(&txn) {
                        self.send_d(
                            ctx,
                            shard,
                            SimDuration::ZERO,
                            SpannerMsg::CommitDecision { txn, commit, t_commit },
                        );
                    }
                    return;
                };
                // Once the vote set is complete the commit timestamp is
                // chosen and its commit wait is running; a duplicated ack
                // must not re-run the decision with a fresh timestamp.
                if state.awaiting.is_empty() {
                    return;
                }
                state.awaiting.remove(&shard);
                state.max_prepare = state.max_prepare.max(t_prepare);
                let complete = state.awaiting.is_empty();
                let max_prepare = state.max_prepare;
                self.log(ctx, &ShardRecord::CoordVote { txn, shard, t_prepare });
                if complete {
                    let tt = ctx.truetime_now();
                    let t_commit = max_prepare.max(self.max_ts + 1).max(tt.latest.as_micros());
                    self.max_ts = self.max_ts.max(t_commit);
                    // The commit record must be replicated, then commit wait
                    // must elapse before the outcome is released.
                    let commit_wait = regular_sim::time::SimTime::from_micros(t_commit)
                        .since(tt.earliest)
                        + SimDuration::from_micros(1);
                    let delay = self.replication_delay + commit_wait;
                    let fire_at = ctx.now().as_micros() + delay.as_micros();
                    // The chosen timestamp and its release time are durable:
                    // a recovered coordinator must re-arm the commit-wait
                    // release, or a complete round would hang forever (the
                    // participants' re-acks bounce off the duplicate guard).
                    self.log(ctx, &ShardRecord::CoordTs { txn, t_commit, fire_at_us: fire_at });
                    let state = self.coordinating.get_mut(&txn).expect("round still open");
                    // Stash the commit timestamp in max_prepare for the timer.
                    state.max_prepare = t_commit;
                    state.commit_fire_at_us = Some(fire_at);
                    let tag = self.next_timer;
                    self.next_timer += 1;
                    self.timers.insert(tag, txn);
                    ctx.set_timer(delay, tag);
                }
            }
            SpannerMsg::CommitDecision { txn, commit, t_commit } => {
                self.apply_decision(ctx, txn, commit, t_commit);
            }
            SpannerMsg::CommitReply { .. } | SpannerMsg::ExecReadReply { .. } => {
                // Client-bound messages; a shard never receives them.
            }
            SpannerMsg::AbortRequest { txn } => {
                if let Some(state) = self.coordinating.remove(&txn) {
                    // Record the abort in the durable decision log and drop
                    // the coordinator state: later re-acks from probing
                    // participants are answered from the log (the old
                    // tombstoned-in-place entry silently swallowed them,
                    // leaving participant locks held forever).
                    self.decided.insert(txn, (false, 0));
                    self.log(ctx, &ShardRecord::Decision { txn, commit: false, t_commit: 0 });
                    for p in state.participants {
                        self.send_d(
                            ctx,
                            p,
                            SimDuration::ZERO,
                            SpannerMsg::CommitDecision { txn, commit: false, t_commit: 0 },
                        );
                    }
                    self.send_d(
                        ctx,
                        state.client,
                        SimDuration::ZERO,
                        SpannerMsg::CommitReply { txn, commit: false, t_commit: 0 },
                    );
                } else {
                    // Not coordinating this transaction (any more). If the
                    // durable decision log says it committed, the abort lost
                    // the race with the decision — a late abort must not
                    // discard prepared writes the commit still has to apply.
                    // Otherwise tombstone the abort (as StatusRequest does)
                    // so a delayed CommitRequest cannot resurrect a
                    // transaction its client already gave up on.
                    match self.decided.get(&txn) {
                        Some(&(true, t_commit)) => self.apply_decision(ctx, txn, true, t_commit),
                        _ => {
                            self.decided.insert(txn, (false, 0));
                            self.log(
                                ctx,
                                &ShardRecord::Decision { txn, commit: false, t_commit: 0 },
                            );
                            self.apply_decision(ctx, txn, false, 0);
                        }
                    }
                }
            }
            SpannerMsg::StatusRequest { txn } => {
                // 2PC cooperative termination: answer from the durable
                // decision log. An unknown transaction is tombstoned as
                // aborted so a delayed CommitRequest arriving later cannot
                // resurrect it (the client has already given up).
                if let Some(&(commit, t_commit)) = self.decided.get(&txn) {
                    self.send_d(
                        ctx,
                        from,
                        SimDuration::ZERO,
                        SpannerMsg::CommitReply { txn, commit, t_commit },
                    );
                } else if !self.coordinating.contains_key(&txn) {
                    self.decided.insert(txn, (false, 0));
                    self.log(ctx, &ShardRecord::Decision { txn, commit: false, t_commit: 0 });
                    self.send_d(
                        ctx,
                        from,
                        SimDuration::ZERO,
                        SpannerMsg::CommitReply { txn, commit: false, t_commit: 0 },
                    );
                }
                // Still coordinating: stay silent; the client probes again.
            }
            SpannerMsg::RoCommit { txn, keys, t_read, t_min } => {
                self.handle_ro(ctx, from, txn, keys, t_read, t_min);
            }
            SpannerMsg::RoReply { .. }
            | SpannerMsg::RoFastReply { .. }
            | SpannerMsg::RoSlowReply { .. } => {
                // Client-bound messages; a shard never receives them.
            }
        }
    }

    fn dispatch_timer(&mut self, ctx: &mut Context<SpannerMsg>, tag: u64) {
        if let Some(txn) = self.probe_timers.remove(&tag) {
            // Decision probe: if the transaction is still prepared with no
            // outcome, re-ack the coordinator (idempotent — it re-answers
            // from the decision log once decided) and keep probing.
            if let Some(p) = self.prepared.get(&txn) {
                let (coordinator, t_prepare) = (p.coordinator, p.t_prepare);
                let reply = SpannerMsg::PrepareOk { txn, shard: ctx.node_id(), t_prepare };
                self.send_d(ctx, coordinator, SimDuration::ZERO, reply);
                self.arm_decision_probe(ctx, txn);
            }
            return;
        }
        if let Some(txn) = self.redrive_timers.remove(&tag) {
            // Prepare re-drive: if this coordinator round is still missing
            // votes, re-send Prepare to the awaited participants (they
            // re-ack idempotently) and keep the timer armed.
            if let Some(state) = self.coordinating.get(&txn) {
                if !state.awaiting.is_empty() {
                    let resend: Vec<(NodeId, Vec<(Key, Value)>)> = state
                        .writes_by_shard
                        .iter()
                        .filter(|(node, _)| state.awaiting.contains(node))
                        .cloned()
                        .collect();
                    let t_ee = state.t_ee;
                    let coordinator = ctx.node_id();
                    for (node, writes) in resend {
                        self.send_d(
                            ctx,
                            node,
                            SimDuration::ZERO,
                            SpannerMsg::Prepare { txn, writes, t_ee, coordinator },
                        );
                    }
                    self.arm_prepare_redrive(ctx, txn);
                }
            }
            return;
        }
        let Some(txn) = self.timers.remove(&tag) else { return };
        let Some(state) = self.coordinating.remove(&txn) else { return };
        let t_commit = state.max_prepare;
        self.decided.insert(txn, (true, t_commit));
        // The coordinator-side commit point: commit wait elapsed, the
        // decision enters the durable decision log and is released.
        self.log(ctx, &ShardRecord::Decision { txn, commit: true, t_commit });
        for p in &state.participants {
            self.send_d(
                ctx,
                *p,
                SimDuration::ZERO,
                SpannerMsg::CommitDecision { txn, commit: true, t_commit },
            );
        }
        self.send_d(
            ctx,
            state.client,
            SimDuration::ZERO,
            SpannerMsg::CommitReply { txn, commit: true, t_commit },
        );
    }
}

impl regular_sim::engine::Node<SpannerMsg> for ShardNode {
    fn on_message(&mut self, ctx: &mut Context<SpannerMsg>, from: NodeId, msg: SpannerMsg) {
        self.dispatch_message(ctx, from, msg);
        self.turn_end(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<SpannerMsg>, tag: u64) {
        if self.flush_timer == Some(tag) {
            // Group-commit window expired: sync the log and release every
            // message the gate held back.
            self.flush_timer = None;
            if let Some(wal) = self.wal.as_mut() {
                if wal.wants_sync() {
                    wal.sync();
                }
            }
            self.release_pending(ctx);
            return;
        }
        self.dispatch_timer(ctx, tag);
        self.turn_end(ctx);
    }

    fn on_crash(&mut self, _ctx: &mut Context<SpannerMsg>) {
        if let Some(wal) = self.wal.as_mut() {
            // Machine-wipe semantics: the crash destroys everything volatile,
            // and the device applies its own crash semantics to unsynced
            // bytes (truncation, possibly a torn tail). Recovery rebuilds
            // exclusively from what the log can prove.
            wal.on_crash();
            self.wal_pending.clear();
            self.flush_timer = None;
            self.store = MvccStore::new();
            self.locks = LockTable::new();
            self.prepared.clear();
            self.pending_prepares.clear();
            self.coordinating.clear();
            self.decided.clear();
            self.blocked_ros.clear();
            self.rss_watchers.clear();
            self.max_ts = 0;
            self.timers.clear();
            self.probe_timers.clear();
            self.redrive_timers.clear();
            // `next_timer` is deliberately NOT reset: engine timers armed
            // before the crash are deferred and still fire with their old
            // tags after recovery; a reused tag would collide with a timer
            // armed fresh during recovery. Stats stay — they are harness
            // counters, not protocol state.
            return;
        }
        // Durable (Paxos-replicated) state survives: the versioned store,
        // prepared transactions and their locks, coordinator state, the
        // decision log, and the safe time. Volatile leader state is lost:
        //
        // * prepares still waiting for locks never voted and are forgotten —
        //   the coordinator (or the client's commit timeout) aborts them;
        // * blocked read-only transactions and RSS watchers are client-facing
        //   read sessions — the clients re-issue after their operation
        //   timeout.
        let waiting: Vec<TxnId> = self.pending_prepares.drain().map(|(txn, _)| txn).collect();
        for txn in waiting {
            // Dropped waiters hold no locks; release removes their queue
            // entries (grants can only go to other queued waiters, which are
            // dropped here too).
            let _ = self.locks.release(txn);
        }
        self.blocked_ros.clear();
        self.rss_watchers.clear();
    }

    fn on_recover(&mut self, ctx: &mut Context<SpannerMsg>) {
        if self.wal.is_some() {
            // Rebuild durable state from the device: last checkpoint snapshot
            // plus the log tail that survived the crash.
            let log = self.wal.as_mut().unwrap().recover();
            self.apply_replay(log);
            // Volatile timers died with the machine; re-arm what liveness
            // needs, in deterministic (TxnId) order.
            let mut prepared_txns: Vec<TxnId> = self.prepared.keys().copied().collect();
            prepared_txns.sort_unstable();
            for txn in prepared_txns {
                self.arm_decision_probe(ctx, txn);
            }
            let now = ctx.now().as_micros();
            let mut coord: Vec<TxnId> = self.coordinating.keys().copied().collect();
            coord.sort_unstable();
            for txn in coord {
                let state = &self.coordinating[&txn];
                if !state.awaiting.is_empty() {
                    self.arm_prepare_redrive(ctx, txn);
                } else if let Some(fire_at) = state.commit_fire_at_us {
                    // A complete round mid-commit-wait: re-arm the release
                    // (participant re-acks bounce off the duplicate guard,
                    // so nothing else would ever finish this round).
                    let tag = self.next_timer;
                    self.next_timer += 1;
                    self.timers.insert(tag, txn);
                    ctx.set_timer(SimDuration::from_micros(fire_at.saturating_sub(now)), tag);
                }
            }
        }
        // Re-drive 2PC from durable state, in deterministic (TxnId) order.
        //
        // As coordinator: votes may have been lost while down — re-send
        // Prepare to every participant still awaited (they re-ack
        // idempotently with their original timestamps).
        let mut coordinating: Vec<TxnId> = self
            .coordinating
            .iter()
            .filter(|(_, s)| !s.awaiting.is_empty())
            .map(|(txn, _)| *txn)
            .collect();
        coordinating.sort_unstable();
        for txn in coordinating {
            let state = &self.coordinating[&txn];
            let resend: Vec<(NodeId, Vec<(Key, Value)>)> = state
                .writes_by_shard
                .iter()
                .filter(|(node, _)| state.awaiting.contains(node))
                .cloned()
                .collect();
            let t_ee = state.t_ee;
            let coordinator = ctx.node_id();
            for (node, writes) in resend {
                self.send_d(
                    ctx,
                    node,
                    SimDuration::ZERO,
                    SpannerMsg::Prepare { txn, writes, t_ee, coordinator },
                );
            }
        }
        // As participant: the commit/abort decision may have expired at our
        // door — re-ack every prepared transaction so the coordinator
        // answers from its decision log (or completes its vote set).
        let mut prepared: Vec<(TxnId, Ts, NodeId)> =
            self.prepared.iter().map(|(txn, p)| (*txn, p.t_prepare, p.coordinator)).collect();
        prepared.sort_unstable();
        for (txn, t_prepare, coordinator) in prepared {
            let reply = SpannerMsg::PrepareOk { txn, shard: ctx.node_id(), t_prepare };
            self.send_d(ctx, coordinator, SimDuration::ZERO, reply);
        }
        self.turn_end(ctx);
    }
}
