//! Spanner and Spanner-RSS on the `regular-sim` discrete-event substrate.
//!
//! This crate reproduces Section 5 of the paper: Google Spanner's strictly
//! serializable transaction protocol (two-phase locking at prepare time,
//! two-phase commit, TrueTime commit wait, snapshot reads at `TT.now().latest`)
//! and the paper's Spanner-RSS variant, whose read-only transactions avoid
//! blocking on conflicting prepared read-write transactions by exploiting
//! regular sequential serializability (Algorithms 1 and 2).
//!
//! Clients are built on the protocol-agnostic session layer
//! (`regular-session`): the protocol core ([`client::SpannerService`])
//! implements [`regular_session::Service`], and the harness drives it with
//! [`regular_session::SessionRunner`]s configured through
//! [`regular_session::SessionConfig`] — the same interface Gryff uses, so a
//! composed deployment can run both stores in one simulation (see the
//! `multi_service` integration test).
//!
//! The cluster is simulated: each shard is represented by its leader, Paxos
//! replication is a configurable delay, and clients/load generators drive the
//! workloads of the paper's evaluation (Retwis over a wide-area topology,
//! uniform workloads in a single data center). See `DESIGN.md` at the
//! repository root for the full list of substitutions and simplifications.
//!
//! # Example
//!
//! ```
//! use regular_spanner::prelude::*;
//! use regular_sim::{LatencyMatrix, SimDuration, SimTime};
//!
//! let result = run_cluster(ClusterSpec {
//!     config: SpannerConfig::wan(Mode::SpannerRss),
//!     net: LatencyMatrix::spanner_wan(),
//!     seed: 1,
//!     clients: vec![ClientSpec {
//!         region: 0,
//!         sessions: SessionConfig::closed_loop(2, SimDuration::ZERO),
//!         workload: Box::new(UniformWorkload { num_keys: 100, ro_fraction: 0.5, keys_per_txn: 2 }),
//!     }],
//!     stop_issuing_at: SimTime::from_secs(5),
//!     drain: SimDuration::from_secs(2),
//!     measure_from: SimTime::from_secs(1),
//! });
//! assert!(result.client_stats.ro_completed > 0);
//! verify_run(&result).expect("the run satisfies RSS");
//! ```

pub mod client;
pub mod config;
pub mod durable;
pub mod harness;
pub mod locks;
pub mod messages;
pub mod shard;
pub mod storage;
pub mod workload;

/// Convenient re-exports for harnesses, examples, and benches.
pub mod prelude {
    pub use crate::client::{ClientConfig, ClientStats, SpannerService};
    pub use crate::config::{Mode, SpannerConfig};
    pub use crate::harness::{
        build_history, build_history_from, client_config, record_with_witness_keys, run_cluster,
        verify_run, ClientSpec, ClusterSpec, RunResult, SpannerClient, SpannerNode,
    };
    pub use crate::messages::{SpannerMsg, TxnId};
    pub use crate::shard::ShardNode;
    pub use crate::workload::{TxnRequest, UniformWorkload};
    pub use regular_session::{
        ScriptedSessionWorkload, SessionConfig, SessionDriver, SessionOp, SessionWorkload,
    };
}

pub use prelude::*;
