//! Multi-versioned key-value storage for a shard.
//!
//! Spanner is a multi-version store: committed writes are tagged with their
//! commit timestamp, and reads return the latest version at or before the
//! read timestamp. Versions per key stay sorted by commit timestamp, which is
//! guaranteed by the locking protocol (conflicting transactions serialize, and
//! prepare/commit timestamps are monotone per key).
//!
//! Version chains live in a [`DenseKeyMap`]: each key is interned once and
//! its chain lands in a dense slot, so the simulator's hottest storage path
//! (one read per key per read-only round) is an FxHash probe plus a vector
//! index instead of a SipHash `HashMap` walk.

use regular_core::densemap::DenseKeyMap;
use regular_core::types::{Key, Value};

use crate::messages::Ts;

/// A multi-version store mapping keys to version chains.
#[derive(Debug, Clone, Default)]
pub struct MvccStore {
    versions: DenseKeyMap<Vec<(Ts, Value)>>,
}

impl MvccStore {
    /// Creates an empty store (every key reads as null at every timestamp).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a committed version of `key` at timestamp `ts`.
    pub fn apply(&mut self, key: Key, ts: Ts, value: Value) {
        let chain = self.versions.get_or_insert_with(key, Vec::new);
        chain.push((ts, value));
        // Keep the chain sorted; out-of-order installs are possible when
        // non-conflicting transactions commit with out-of-order timestamps.
        let mut i = chain.len() - 1;
        while i > 0 && chain[i - 1].0 > chain[i].0 {
            chain.swap(i - 1, i);
            i -= 1;
        }
    }

    /// Reads the latest version of `key` at or before `ts`, returning the
    /// version's commit timestamp and value (timestamp 0 and null when no
    /// version qualifies).
    pub fn read_at(&self, key: Key, ts: Ts) -> (Ts, Value) {
        match self.versions.get(key) {
            None => (0, Value::NULL),
            Some(chain) => {
                chain.iter().rev().find(|(t, _)| *t <= ts).copied().unwrap_or((0, Value::NULL))
            }
        }
    }

    /// The latest committed timestamp for `key` (0 if none).
    pub fn latest_ts(&self, key: Key) -> Ts {
        self.versions.get(key).and_then(|c| c.last()).map(|(t, _)| *t).unwrap_or(0)
    }

    /// Total number of stored versions (for diagnostics).
    pub fn version_count(&self) -> usize {
        self.versions.values().map(|c| c.len()).sum()
    }

    /// Every stored version, for checkpoint snapshots and differential
    /// tests. Unordered; callers sort as needed.
    pub fn dump(&self) -> Vec<(Key, Ts, Value)> {
        self.versions
            .iter()
            .flat_map(|(k, chain)| chain.iter().map(move |(ts, v)| (k, *ts, *v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_reads_null() {
        let s = MvccStore::new();
        assert_eq!(s.read_at(Key(1), 100), (0, Value::NULL));
        assert_eq!(s.latest_ts(Key(1)), 0);
        assert_eq!(s.version_count(), 0);
    }

    #[test]
    fn reads_respect_timestamps() {
        let mut s = MvccStore::new();
        s.apply(Key(1), 10, Value(100));
        s.apply(Key(1), 20, Value(200));
        assert_eq!(s.read_at(Key(1), 5), (0, Value::NULL));
        assert_eq!(s.read_at(Key(1), 10), (10, Value(100)));
        assert_eq!(s.read_at(Key(1), 15), (10, Value(100)));
        assert_eq!(s.read_at(Key(1), 25), (20, Value(200)));
        assert_eq!(s.latest_ts(Key(1)), 20);
        assert_eq!(s.version_count(), 2);
    }

    #[test]
    fn out_of_order_installs_are_sorted() {
        let mut s = MvccStore::new();
        s.apply(Key(1), 30, Value(300));
        s.apply(Key(1), 10, Value(100));
        s.apply(Key(1), 20, Value(200));
        assert_eq!(s.read_at(Key(1), 12), (10, Value(100)));
        assert_eq!(s.read_at(Key(1), 22), (20, Value(200)));
        assert_eq!(s.read_at(Key(1), 35), (30, Value(300)));
    }

    #[test]
    fn keys_are_independent() {
        let mut s = MvccStore::new();
        s.apply(Key(1), 10, Value(1));
        assert_eq!(s.read_at(Key(2), 100), (0, Value::NULL));
    }
}
