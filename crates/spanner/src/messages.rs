//! Wire messages of the simulated Spanner / Spanner-RSS protocols.

use regular_core::types::{Key, Value};
use regular_sim::engine::NodeId;

/// Timestamps used by the protocol (TrueTime-derived, in simulated
/// microseconds).
pub type Ts = u64;

/// A globally unique transaction identifier: (client node, per-client
/// sequence number). The sequence number is also used as the wound-wait
/// priority in configurations that enable it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// The client (load generator) node that issued the transaction.
    pub client: NodeId,
    /// Per-client sequence number.
    pub seq: u64,
}

/// A prepared-but-uncommitted read-write transaction, as tracked by a shard
/// and reported to RSS read-only transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedInfo {
    /// The transaction's identifier.
    pub txn: TxnId,
    /// Its prepare timestamp at this shard.
    pub t_prepare: Ts,
}

/// Messages exchanged between clients and shard leaders.
#[derive(Debug, Clone, PartialEq)]
pub enum SpannerMsg {
    // ----- Read-write transactions: execute phase -----
    /// Client reads the current values of `keys` at a shard (execute phase).
    ExecRead {
        /// Issuing transaction.
        txn: TxnId,
        /// Keys to read on this shard.
        keys: Vec<Key>,
    },
    /// Shard reply to [`SpannerMsg::ExecRead`].
    ExecReadReply {
        /// Issuing transaction.
        txn: TxnId,
        /// Values read.
        values: Vec<(Key, Value)>,
    },

    // ----- Read-write transactions: two-phase commit -----
    /// Client asks `coordinator` to commit the transaction; carries the full
    /// write set partitioned by shard and the client's earliest end time.
    CommitRequest {
        /// Issuing transaction.
        txn: TxnId,
        /// Write set per shard: `(shard node, writes)`.
        writes_by_shard: Vec<(NodeId, Vec<(Key, Value)>)>,
        /// Earliest possible client-side end time (Spanner-RSS only; ignored
        /// by the baseline).
        t_ee: Ts,
    },
    /// Coordinator asks a participant to prepare.
    Prepare {
        /// Transaction being prepared.
        txn: TxnId,
        /// Writes on the participant shard.
        writes: Vec<(Key, Value)>,
        /// Earliest possible client-side end time.
        t_ee: Ts,
        /// Coordinator shard node.
        coordinator: NodeId,
    },
    /// Participant has prepared (locks held, prepare record replicated).
    PrepareOk {
        /// Transaction.
        txn: TxnId,
        /// Responding participant.
        shard: NodeId,
        /// Chosen prepare timestamp.
        t_prepare: Ts,
    },
    /// Coordinator's decision, sent to participants.
    CommitDecision {
        /// Transaction.
        txn: TxnId,
        /// True to commit, false to abort.
        commit: bool,
        /// Commit timestamp (meaningful when `commit` is true).
        t_commit: Ts,
    },
    /// Client asks the coordinator for the outcome of a transaction it gave
    /// up on (2PC cooperative termination, used by fault runs): the
    /// coordinator answers from its durable decision log with a
    /// [`SpannerMsg::CommitReply`], tombstoning the transaction as aborted
    /// if it never heard of it.
    StatusRequest {
        /// Transaction whose outcome is unknown to the client.
        txn: TxnId,
    },
    /// Coordinator's reply to the client.
    CommitReply {
        /// Transaction.
        txn: TxnId,
        /// True if the transaction committed.
        commit: bool,
        /// Commit timestamp.
        t_commit: Ts,
    },
    /// Client-initiated abort (commit timeout); releases locks and any
    /// prepared state for the transaction.
    AbortRequest {
        /// Transaction to abort.
        txn: TxnId,
    },

    // ----- Read-only transactions -----
    /// Read-only transaction request (both variants). `t_min` is meaningful
    /// only for Spanner-RSS.
    RoCommit {
        /// Issuing transaction.
        txn: TxnId,
        /// Keys to read on this shard.
        keys: Vec<Key>,
        /// Read timestamp (`TT.now().latest` at the client).
        t_read: Ts,
        /// Minimum read timestamp capturing the client's causal past.
        t_min: Ts,
    },
    /// Baseline Spanner reply: sent only once all conflicting prepared
    /// transactions with `t_p ≤ t_read` have resolved.
    RoReply {
        /// Transaction.
        txn: TxnId,
        /// Responding shard.
        shard: NodeId,
        /// For each requested key, the latest version at or before `t_read`.
        values: Vec<(Key, Ts, Value)>,
    },
    /// Spanner-RSS fast reply (Algorithm 2, line 10).
    RoFastReply {
        /// Transaction.
        txn: TxnId,
        /// Responding shard.
        shard: NodeId,
        /// Conflicting transactions that were skipped: still prepared, with
        /// `t_p ≤ t_read`, not required by `t_min` or `t_ee`.
        skipped: Vec<PreparedInfo>,
        /// For each requested key, the latest version at or before `t_read`.
        values: Vec<(Key, Ts, Value)>,
    },
    /// Spanner-RSS slow reply (Algorithm 2, lines 13-17): the outcome of one
    /// previously skipped transaction.
    RoSlowReply {
        /// The read-only transaction this reply belongs to.
        txn: TxnId,
        /// Responding shard.
        shard: NodeId,
        /// The skipped read-write transaction that has now resolved.
        resolved: TxnId,
        /// True if it committed.
        committed: bool,
        /// Its commit timestamp (when committed).
        t_commit: Ts,
        /// The values it wrote to the keys requested by the read-only
        /// transaction (when committed).
        values: Vec<(Key, Ts, Value)>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_ordering_is_by_client_then_seq() {
        let a = TxnId { client: 1, seq: 5 };
        let b = TxnId { client: 1, seq: 6 };
        let c = TxnId { client: 2, seq: 0 };
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a, TxnId { client: 1, seq: 5 });
    }

    #[test]
    fn messages_are_cloneable() {
        let m = SpannerMsg::RoCommit {
            txn: TxnId { client: 3, seq: 1 },
            keys: vec![Key(1), Key(2)],
            t_read: 100,
            t_min: 50,
        };
        let m2 = m.clone();
        match m2 {
            SpannerMsg::RoCommit { keys, t_read, .. } => {
                assert_eq!(keys.len(), 2);
                assert_eq!(t_read, 100);
            }
            _ => panic!("clone changed the variant"),
        }
    }
}
