//! `libRSS`: the composition meta-library (Section 4.1, Figure 3).
//!
//! A set of RSS (RSC) services only guarantees a *global* RSS (RSC) order if
//! clients issue a real-time fence at the previous service before their first
//! transaction at a different service. `libRSS` automates this: each
//! service's client library registers itself (with a fence callback) and
//! notifies the meta-library before starting a transaction; the meta-library
//! invokes the previous service's fence exactly when the client switches
//! services. No application changes are required.
//!
//! Service names are interned to dense [`ServiceIdx`] ids at registration, so
//! the transaction-start hot path performs no allocation: the last service is
//! tracked as an index, and callers that hold on to the [`ServiceIdx`]
//! returned by [`LibRss::register_service`] can use
//! [`LibRss::start_transaction_at`] to skip the name lookup entirely.
//!
//! The crate also provides the causal-context propagation helper of
//! Section 4.2: when application processes interact out of band (e.g. a Web
//! server responding to a browser that then talks to a different server), the
//! serialized [`CausalContext`] carries the minimum-read-timestamp metadata and
//! the name of the last service so the receiving process's `libRSS` instance
//! can continue enforcing causality.
//!
//! For simulated deployments where a fence is an asynchronous protocol
//! operation rather than a synchronous callback, [`planner::FencePlanner`]
//! exposes the same decision logic (fence the previous service exactly on a
//! service switch) in a pure form; the `regular-session` crate's composed
//! session runner drives it.
//!
//! # Example
//!
//! ```
//! use regular_librss::LibRss;
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let kv_fences = Arc::new(AtomicU32::new(0));
//! let mut librss = LibRss::new();
//! let counter = kv_fences.clone();
//! librss.register_service("kv", move || {
//!     counter.fetch_add(1, Ordering::SeqCst);
//! });
//! librss.register_service("queue", || {});
//!
//! librss.start_transaction("kv").unwrap();     // first transaction: no fence
//! librss.start_transaction("kv").unwrap();     // same service: no fence
//! librss.start_transaction("queue").unwrap();  // switch: fence the kv store
//! assert_eq!(kv_fences.load(Ordering::SeqCst), 1);
//! ```

use std::collections::HashMap;

use parking_lot::Mutex;
use regular_core::fence::{FenceStats, FencedService};

pub mod planner;

pub use planner::FencePlanner;

/// Dense identifier of a registered service, assigned by
/// [`LibRss::register_service`] in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceIdx(pub usize);

/// Errors returned by the meta-library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibRssError {
    /// `start_transaction` named a service that was never registered (or was
    /// unregistered).
    UnknownService(String),
}

/// One registered service: its name and fence callback. Unregistered slots
/// keep their name (indices stay stable) but lose the callback.
struct ServiceSlot {
    name: String,
    fence: Option<Box<dyn FnMut() + Send>>,
}

/// The per-process composition meta-library (Figure 3).
#[derive(Default)]
pub struct LibRss {
    slots: Vec<ServiceSlot>,
    /// Name → dense index; entries are removed on unregistration.
    lookup: HashMap<String, usize>,
    /// The service the last transaction was started at, as a dense index.
    last_service: Option<usize>,
    stats: FenceStats,
}

impl LibRss {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `RegisterService(name, fence_f)`: registers a service's fence callback
    /// and returns its dense id. Re-registering a name replaces the callback
    /// and keeps the id.
    pub fn register_service(
        &mut self,
        name: impl Into<String>,
        fence: impl FnMut() + Send + 'static,
    ) -> ServiceIdx {
        let name = name.into();
        if let Some(&idx) = self.lookup.get(&name) {
            self.slots[idx].fence = Some(Box::new(fence));
            return ServiceIdx(idx);
        }
        let idx = self.slots.len();
        self.lookup.insert(name.clone(), idx);
        self.slots.push(ServiceSlot { name, fence: Some(Box::new(fence)) });
        ServiceIdx(idx)
    }

    /// Registers a [`FencedService`] implementation by wrapping it in the
    /// callback form (the service is moved into the registry).
    pub fn register_fenced_service<S: FencedService + Send + 'static>(
        &mut self,
        mut service: S,
    ) -> ServiceIdx {
        let name = service.service_name().to_string();
        self.register_service(name, move || service.fence())
    }

    /// `UnregisterService(name)`: removes a service from the registry.
    pub fn unregister_service(&mut self, name: &str) -> bool {
        let Some(idx) = self.lookup.remove(name) else { return false };
        self.slots[idx].fence = None;
        if self.last_service == Some(idx) {
            self.last_service = None;
        }
        true
    }

    /// Resolves a service name to its dense id, if registered.
    pub fn service_idx(&self, name: &str) -> Option<ServiceIdx> {
        self.lookup.get(name).copied().map(ServiceIdx)
    }

    /// `StartTransaction(name)`: must be called by a service's client library
    /// before starting a transaction. If the previous transaction went to a
    /// different service, that service's real-time fence is invoked first.
    pub fn start_transaction(&mut self, name: &str) -> Result<(), LibRssError> {
        match self.lookup.get(name).copied() {
            Some(idx) => {
                self.start_at(idx);
                Ok(())
            }
            None => Err(LibRssError::UnknownService(name.to_string())),
        }
    }

    /// [`LibRss::start_transaction`] by dense id, skipping the name lookup —
    /// the allocation- and hash-free hot path for callers that kept the id
    /// returned by [`LibRss::register_service`].
    pub fn start_transaction_at(&mut self, service: ServiceIdx) -> Result<(), LibRssError> {
        let idx = service.0;
        if idx >= self.slots.len() || self.slots[idx].fence.is_none() {
            let name =
                self.slots.get(idx).map(|s| s.name.clone()).unwrap_or_else(|| format!("#{idx}"));
            return Err(LibRssError::UnknownService(name));
        }
        self.start_at(idx);
        Ok(())
    }

    fn start_at(&mut self, idx: usize) {
        match self.last_service {
            Some(prev) if prev != idx => {
                if let Some(fence) = self.slots[prev].fence.as_mut() {
                    fence();
                    self.stats.record_executed();
                } else {
                    // The previous service was unregistered; there is nothing
                    // left to fence.
                    self.stats.record_elided();
                }
            }
            _ => self.stats.record_elided(),
        }
        self.last_service = Some(idx);
    }

    /// The registered service names, sorted.
    pub fn services(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.slots.iter().filter(|s| s.fence.is_some()).map(|s| s.name.clone()).collect();
        names.sort();
        names
    }

    /// The service the last transaction was started at.
    pub fn last_service(&self) -> Option<&str> {
        self.last_service.map(|idx| self.slots[idx].name.as_str())
    }

    /// Fence statistics (how many transaction starts required a fence).
    pub fn stats(&self) -> FenceStats {
        self.stats
    }

    /// Exports the causal context to send to another process (Section 4.2).
    pub fn export_context(&self, min_timestamp: u64) -> CausalContext {
        CausalContext { last_service: self.last_service().map(str::to_string), min_timestamp }
    }

    /// Imports a causal context received from another process: the next
    /// transaction will fence the sender's last service if it differs.
    pub fn import_context(&mut self, ctx: &CausalContext) {
        if let Some(svc) = &ctx.last_service {
            if let Some(&idx) = self.lookup.get(svc) {
                self.last_service = Some(idx);
            }
        }
    }
}

/// Causality metadata propagated between application processes out of band
/// (Section 4.2), e.g. through a context-propagation framework.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CausalContext {
    /// The last RSS service the sending process interacted with.
    pub last_service: Option<String>,
    /// The sender's minimum read timestamp (service-specific meaning, e.g.
    /// Spanner-RSS's `t_min`).
    pub min_timestamp: u64,
}

/// A thread-safe wrapper for sharing one registry between application threads,
/// exposing the full Section 4.1/4.2 workflow.
#[derive(Default)]
pub struct SharedLibRss {
    inner: Mutex<LibRss>,
}

impl SharedLibRss {
    /// Creates an empty shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`LibRss::register_service`].
    pub fn register_service(
        &self,
        name: impl Into<String>,
        fence: impl FnMut() + Send + 'static,
    ) -> ServiceIdx {
        self.inner.lock().register_service(name, fence)
    }

    /// See [`LibRss::register_fenced_service`].
    pub fn register_fenced_service<S: FencedService + Send + 'static>(
        &self,
        service: S,
    ) -> ServiceIdx {
        self.inner.lock().register_fenced_service(service)
    }

    /// See [`LibRss::unregister_service`].
    pub fn unregister_service(&self, name: &str) -> bool {
        self.inner.lock().unregister_service(name)
    }

    /// See [`LibRss::start_transaction`].
    pub fn start_transaction(&self, name: &str) -> Result<(), LibRssError> {
        self.inner.lock().start_transaction(name)
    }

    /// See [`LibRss::start_transaction_at`].
    pub fn start_transaction_at(&self, service: ServiceIdx) -> Result<(), LibRssError> {
        self.inner.lock().start_transaction_at(service)
    }

    /// See [`LibRss::export_context`].
    pub fn export_context(&self, min_timestamp: u64) -> CausalContext {
        self.inner.lock().export_context(min_timestamp)
    }

    /// See [`LibRss::import_context`].
    pub fn import_context(&self, ctx: &CausalContext) {
        self.inner.lock().import_context(ctx)
    }

    /// See [`LibRss::last_service`]. Returns an owned name because the lock is
    /// released before returning.
    pub fn last_service(&self) -> Option<String> {
        self.inner.lock().last_service().map(str::to_string)
    }

    /// See [`LibRss::stats`].
    pub fn stats(&self) -> FenceStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn counting_registry() -> (LibRss, Arc<AtomicU32>, Arc<AtomicU32>) {
        let kv_fences = Arc::new(AtomicU32::new(0));
        let mq_fences = Arc::new(AtomicU32::new(0));
        let mut lib = LibRss::new();
        let k = kv_fences.clone();
        lib.register_service("kv", move || {
            k.fetch_add(1, Ordering::SeqCst);
        });
        let m = mq_fences.clone();
        lib.register_service("queue", move || {
            m.fetch_add(1, Ordering::SeqCst);
        });
        (lib, kv_fences, mq_fences)
    }

    #[test]
    fn fences_only_on_service_switch() {
        let (mut lib, kv, mq) = counting_registry();
        lib.start_transaction("kv").unwrap();
        lib.start_transaction("kv").unwrap();
        lib.start_transaction("queue").unwrap();
        lib.start_transaction("queue").unwrap();
        lib.start_transaction("kv").unwrap();
        assert_eq!(kv.load(Ordering::SeqCst), 1, "kv fenced once, when switching to the queue");
        assert_eq!(mq.load(Ordering::SeqCst), 1, "queue fenced once, when switching back");
        let stats = lib.stats();
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.elided, 3);
    }

    #[test]
    fn dense_ids_skip_the_name_lookup() {
        let (mut lib, kv, _) = counting_registry();
        let kv_idx = lib.service_idx("kv").unwrap();
        let queue_idx = lib.service_idx("queue").unwrap();
        assert_eq!(kv_idx, ServiceIdx(0));
        assert_eq!(queue_idx, ServiceIdx(1));
        lib.start_transaction_at(kv_idx).unwrap();
        lib.start_transaction_at(queue_idx).unwrap();
        assert_eq!(kv.load(Ordering::SeqCst), 1);
        assert_eq!(lib.last_service(), Some("queue"));
        assert!(lib.start_transaction_at(ServiceIdx(99)).is_err());
    }

    #[test]
    fn reregistering_a_name_keeps_its_id() {
        let (mut lib, _, _) = counting_registry();
        let again = lib.register_service("kv", || {});
        assert_eq!(again, ServiceIdx(0));
        assert_eq!(lib.services(), vec!["kv".to_string(), "queue".to_string()]);
    }

    #[test]
    fn unknown_service_is_rejected() {
        let (mut lib, _, _) = counting_registry();
        assert_eq!(
            lib.start_transaction("blob"),
            Err(LibRssError::UnknownService("blob".to_string()))
        );
    }

    #[test]
    fn unregister_removes_service() {
        let (mut lib, _, _) = counting_registry();
        assert_eq!(lib.services(), vec!["kv".to_string(), "queue".to_string()]);
        assert!(lib.unregister_service("kv"));
        assert!(!lib.unregister_service("kv"));
        assert_eq!(lib.services(), vec!["queue".to_string()]);
        assert!(lib.start_transaction("kv").is_err());
    }

    #[test]
    fn unregistered_previous_service_is_not_fenced() {
        let (mut lib, kv, _) = counting_registry();
        lib.start_transaction("kv").unwrap();
        assert!(lib.unregister_service("kv"));
        // The switch to the queue has nothing left to fence; it must not panic
        // or invoke the dropped callback.
        lib.start_transaction("queue").unwrap();
        assert_eq!(kv.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn context_propagation_transfers_last_service() {
        let (mut sender, kv, _) = counting_registry();
        sender.start_transaction("kv").unwrap();
        let ctx = sender.export_context(42);
        assert_eq!(ctx.last_service.as_deref(), Some("kv"));
        assert_eq!(ctx.min_timestamp, 42);

        let (mut receiver, rkv, _) = counting_registry();
        receiver.import_context(&ctx);
        // The receiver's first transaction goes to the queue, so the kv fence
        // (inherited from the sender's context) must run in the receiver.
        receiver.start_transaction("queue").unwrap();
        assert_eq!(rkv.load(Ordering::SeqCst), 1);
        // The sender's own callback is untouched by the receiver's fence.
        assert_eq!(kv.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn context_roundtrips_through_serde() {
        let ctx = CausalContext { last_service: Some("kv".to_string()), min_timestamp: 7 };
        let json = serde_json_like(&ctx);
        assert!(json.contains("kv"));
    }

    /// Minimal serialization smoke test without pulling in serde_json: uses
    /// the Debug representation, which is stable enough for the assertion.
    fn serde_json_like(ctx: &CausalContext) -> String {
        format!("{ctx:?}")
    }

    #[test]
    fn fenced_service_trait_registration() {
        struct Svc {
            fences: u32,
        }
        impl FencedService for Svc {
            fn service_name(&self) -> &str {
                "svc"
            }
            fn fence(&mut self) {
                self.fences += 1;
            }
        }
        let mut lib = LibRss::new();
        lib.register_fenced_service(Svc { fences: 0 });
        lib.register_service("other", || {});
        lib.start_transaction("svc").unwrap();
        lib.start_transaction("other").unwrap();
        assert_eq!(lib.stats().executed, 1);
        assert_eq!(lib.last_service(), Some("other"));
    }

    #[test]
    fn shared_registry_is_thread_safe() {
        let shared = Arc::new(SharedLibRss::new());
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        shared.register_service("kv", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        shared.register_service("queue", || {});
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.start_transaction("kv").unwrap();
                    s.start_transaction("queue").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = shared.stats();
        assert_eq!(stats.executed + stats.elided, 800);
        assert!(count.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn shared_registry_full_workflow_passthroughs() {
        let sender = SharedLibRss::new();
        sender.register_service("kv", || {});
        sender.register_service("queue", || {});
        sender.start_transaction("kv").unwrap();
        assert_eq!(sender.last_service().as_deref(), Some("kv"));
        let ctx = sender.export_context(7);

        let fenced = Arc::new(AtomicU32::new(0));
        let receiver = SharedLibRss::new();
        let f = fenced.clone();
        receiver.register_service("kv", move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        receiver.register_service("queue", || {});
        receiver.import_context(&ctx);
        receiver.start_transaction("queue").unwrap();
        assert_eq!(fenced.load(Ordering::SeqCst), 1, "imported context forces the kv fence");

        assert!(receiver.unregister_service("kv"));
        assert!(receiver.start_transaction("kv").is_err());
    }
}
