//! `libRSS`: the composition meta-library (Section 4.1, Figure 3).
//!
//! A set of RSS (RSC) services only guarantees a *global* RSS (RSC) order if
//! clients issue a real-time fence at the previous service before their first
//! transaction at a different service. `libRSS` automates this: each
//! service's client library registers itself (with a fence callback) and
//! notifies the meta-library before starting a transaction; the meta-library
//! invokes the previous service's fence exactly when the client switches
//! services. No application changes are required.
//!
//! The crate also provides the causal-context propagation helper of
//! Section 4.2: when application processes interact out of band (e.g. a Web
//! server responding to a browser that then talks to a different server), the
//! serialized [`CausalContext`] carries the minimum-read-timestamp metadata and
//! the name of the last service so the receiving process's `libRSS` instance
//! can continue enforcing causality.
//!
//! # Example
//!
//! ```
//! use regular_librss::LibRss;
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let kv_fences = Arc::new(AtomicU32::new(0));
//! let mut librss = LibRss::new();
//! let counter = kv_fences.clone();
//! librss.register_service("kv", move || {
//!     counter.fetch_add(1, Ordering::SeqCst);
//! });
//! librss.register_service("queue", || {});
//!
//! librss.start_transaction("kv").unwrap();     // first transaction: no fence
//! librss.start_transaction("kv").unwrap();     // same service: no fence
//! librss.start_transaction("queue").unwrap();  // switch: fence the kv store
//! assert_eq!(kv_fences.load(Ordering::SeqCst), 1);
//! ```

use std::collections::HashMap;

use parking_lot::Mutex;
use regular_core::fence::{FenceStats, FencedService};

/// Errors returned by the meta-library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibRssError {
    /// `start_transaction` named a service that was never registered.
    UnknownService(String),
}

/// The per-process composition meta-library (Figure 3).
#[derive(Default)]
pub struct LibRss {
    services: HashMap<String, Box<dyn FnMut() + Send>>,
    last_service: Option<String>,
    stats: FenceStats,
}

impl LibRss {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `RegisterService(name, fence_f)`: registers a service's fence callback.
    pub fn register_service(
        &mut self,
        name: impl Into<String>,
        fence: impl FnMut() + Send + 'static,
    ) -> &mut Self {
        let name = name.into();
        self.services.insert(name, Box::new(fence));
        self
    }

    /// Registers a [`FencedService`] implementation by wrapping it in the
    /// callback form (the service is moved into the registry).
    pub fn register_fenced_service<S: FencedService + Send + 'static>(&mut self, mut service: S) {
        let name = service.service_name().to_string();
        self.register_service(name, move || service.fence());
    }

    /// `UnregisterService(name)`: removes a service from the registry.
    pub fn unregister_service(&mut self, name: &str) -> bool {
        let removed = self.services.remove(name).is_some();
        if self.last_service.as_deref() == Some(name) {
            self.last_service = None;
        }
        removed
    }

    /// `StartTransaction(name)`: must be called by a service's client library
    /// before starting a transaction. If the previous transaction went to a
    /// different service, that service's real-time fence is invoked first.
    pub fn start_transaction(&mut self, name: &str) -> Result<(), LibRssError> {
        if !self.services.contains_key(name) {
            return Err(LibRssError::UnknownService(name.to_string()));
        }
        match self.last_service.clone() {
            Some(prev) if prev != name => {
                if let Some(fence) = self.services.get_mut(&prev) {
                    fence();
                    self.stats.record_executed();
                }
            }
            _ => self.stats.record_elided(),
        }
        self.last_service = Some(name.to_string());
        Ok(())
    }

    /// The registered service names, sorted.
    pub fn services(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.keys().cloned().collect();
        names.sort();
        names
    }

    /// The service the last transaction was started at.
    pub fn last_service(&self) -> Option<&str> {
        self.last_service.as_deref()
    }

    /// Fence statistics (how many transaction starts required a fence).
    pub fn stats(&self) -> FenceStats {
        self.stats
    }

    /// Exports the causal context to send to another process (Section 4.2).
    pub fn export_context(&self, min_timestamp: u64) -> CausalContext {
        CausalContext { last_service: self.last_service.clone(), min_timestamp }
    }

    /// Imports a causal context received from another process: the next
    /// transaction will fence the sender's last service if it differs.
    pub fn import_context(&mut self, ctx: &CausalContext) {
        if let Some(svc) = &ctx.last_service {
            if self.services.contains_key(svc) {
                self.last_service = Some(svc.clone());
            }
        }
    }
}

/// Causality metadata propagated between application processes out of band
/// (Section 4.2), e.g. through a context-propagation framework.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CausalContext {
    /// The last RSS service the sending process interacted with.
    pub last_service: Option<String>,
    /// The sender's minimum read timestamp (service-specific meaning, e.g.
    /// Spanner-RSS's `t_min`).
    pub min_timestamp: u64,
}

/// A thread-safe wrapper for sharing one registry between application threads.
#[derive(Default)]
pub struct SharedLibRss {
    inner: Mutex<LibRss>,
}

impl SharedLibRss {
    /// Creates an empty shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`LibRss::register_service`].
    pub fn register_service(&self, name: impl Into<String>, fence: impl FnMut() + Send + 'static) {
        self.inner.lock().register_service(name, fence);
    }

    /// See [`LibRss::start_transaction`].
    pub fn start_transaction(&self, name: &str) -> Result<(), LibRssError> {
        self.inner.lock().start_transaction(name)
    }

    /// See [`LibRss::stats`].
    pub fn stats(&self) -> FenceStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn counting_registry() -> (LibRss, Arc<AtomicU32>, Arc<AtomicU32>) {
        let kv_fences = Arc::new(AtomicU32::new(0));
        let mq_fences = Arc::new(AtomicU32::new(0));
        let mut lib = LibRss::new();
        let k = kv_fences.clone();
        lib.register_service("kv", move || {
            k.fetch_add(1, Ordering::SeqCst);
        });
        let m = mq_fences.clone();
        lib.register_service("queue", move || {
            m.fetch_add(1, Ordering::SeqCst);
        });
        (lib, kv_fences, mq_fences)
    }

    #[test]
    fn fences_only_on_service_switch() {
        let (mut lib, kv, mq) = counting_registry();
        lib.start_transaction("kv").unwrap();
        lib.start_transaction("kv").unwrap();
        lib.start_transaction("queue").unwrap();
        lib.start_transaction("queue").unwrap();
        lib.start_transaction("kv").unwrap();
        assert_eq!(kv.load(Ordering::SeqCst), 1, "kv fenced once, when switching to the queue");
        assert_eq!(mq.load(Ordering::SeqCst), 1, "queue fenced once, when switching back");
        let stats = lib.stats();
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.elided, 3);
    }

    #[test]
    fn unknown_service_is_rejected() {
        let (mut lib, _, _) = counting_registry();
        assert_eq!(
            lib.start_transaction("blob"),
            Err(LibRssError::UnknownService("blob".to_string()))
        );
    }

    #[test]
    fn unregister_removes_service() {
        let (mut lib, _, _) = counting_registry();
        assert_eq!(lib.services(), vec!["kv".to_string(), "queue".to_string()]);
        assert!(lib.unregister_service("kv"));
        assert!(!lib.unregister_service("kv"));
        assert_eq!(lib.services(), vec!["queue".to_string()]);
        assert!(lib.start_transaction("kv").is_err());
    }

    #[test]
    fn context_propagation_transfers_last_service() {
        let (mut sender, kv, _) = counting_registry();
        sender.start_transaction("kv").unwrap();
        let ctx = sender.export_context(42);
        assert_eq!(ctx.last_service.as_deref(), Some("kv"));
        assert_eq!(ctx.min_timestamp, 42);

        let (mut receiver, rkv, _) = counting_registry();
        receiver.import_context(&ctx);
        // The receiver's first transaction goes to the queue, so the kv fence
        // (inherited from the sender's context) must run in the receiver.
        receiver.start_transaction("queue").unwrap();
        assert_eq!(rkv.load(Ordering::SeqCst), 1);
        // The sender's own callback is untouched by the receiver's fence.
        assert_eq!(kv.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn context_roundtrips_through_serde() {
        let ctx = CausalContext { last_service: Some("kv".to_string()), min_timestamp: 7 };
        let json = serde_json_like(&ctx);
        assert!(json.contains("kv"));
    }

    /// Minimal serialization smoke test without pulling in serde_json: uses
    /// the Debug representation, which is stable enough for the assertion.
    fn serde_json_like(ctx: &CausalContext) -> String {
        format!("{ctx:?}")
    }

    #[test]
    fn fenced_service_trait_registration() {
        struct Svc {
            fences: u32,
        }
        impl FencedService for Svc {
            fn service_name(&self) -> &str {
                "svc"
            }
            fn fence(&mut self) {
                self.fences += 1;
            }
        }
        let mut lib = LibRss::new();
        lib.register_fenced_service(Svc { fences: 0 });
        lib.register_service("other", || {});
        lib.start_transaction("svc").unwrap();
        lib.start_transaction("other").unwrap();
        assert_eq!(lib.stats().executed, 1);
        assert_eq!(lib.last_service(), Some("other"));
    }

    #[test]
    fn shared_registry_is_thread_safe() {
        let shared = Arc::new(SharedLibRss::new());
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        shared.register_service("kv", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        shared.register_service("queue", || {});
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.start_transaction("kv").unwrap();
                    s.start_transaction("queue").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = shared.stats();
        assert_eq!(stats.executed + stats.elided, 800);
        assert!(count.load(Ordering::SeqCst) > 0);
    }
}
