//! The fence *decision* logic of `libRSS` in pure form.
//!
//! [`crate::LibRss`] executes fences through synchronous callbacks, which fits
//! application threads. Inside a discrete-event simulation a fence is itself
//! an asynchronous protocol operation (a message exchange or a TrueTime wait),
//! so the driver needs the decision — *which service must be fenced before
//! this transaction, if any* — separated from the execution. [`FencePlanner`]
//! is that decision core: per session, it answers Figure 3's question ("did
//! this client switch services since its previous transaction?") and keeps the
//! executed/elided fence statistics.

use std::collections::HashMap;

use regular_core::fence::FenceStats;

/// Per-session service-switch tracking: the pure core of `libRSS`'s
/// `StartTransaction`, for drivers that execute fences asynchronously.
#[derive(Debug, Default)]
pub struct FencePlanner {
    /// The service index of each session's previous transaction.
    last: HashMap<u64, usize>,
    stats: FenceStats,
}

impl FencePlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `session` is about to start a transaction at `service`
    /// (a dense index chosen by the caller). Returns the service that must be
    /// fenced *first*, which is `Some(previous)` exactly when the session
    /// switches services.
    pub fn on_transaction(&mut self, session: u64, service: usize) -> Option<usize> {
        match self.last.insert(session, service) {
            Some(prev) if prev != service => {
                self.stats.record_executed();
                Some(prev)
            }
            _ => {
                self.stats.record_elided();
                None
            }
        }
    }

    /// The service of `session`'s previous transaction, if any.
    pub fn last_service(&self, session: u64) -> Option<usize> {
        self.last.get(&session).copied()
    }

    /// Exports `session`'s causal position for out-of-band propagation to
    /// another process (Section 4.2): the dense index of its last service.
    /// The caller attaches the service *name* and the causal floor when
    /// building a [`crate::CausalContext`].
    pub fn export_context(&self, session: u64) -> Option<usize> {
        self.last_service(session)
    }

    /// Imports a causal position received from another process: `session`'s
    /// next transaction fences `last_service` exactly as if the session had
    /// issued its previous transaction there (Figure 3 across processes).
    pub fn import_context(&mut self, session: u64, last_service: usize) {
        self.last.insert(session, last_service);
    }

    /// Forgets a finished session.
    pub fn end_session(&mut self, session: u64) {
        self.last.remove(&session);
    }

    /// Fence statistics across all sessions.
    pub fn stats(&self) -> FenceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fences_exactly_on_switches() {
        let mut p = FencePlanner::new();
        assert_eq!(p.on_transaction(1, 0), None, "first transaction never fences");
        assert_eq!(p.on_transaction(1, 0), None, "same service: elided");
        assert_eq!(p.on_transaction(1, 1), Some(0), "switch: fence the previous service");
        assert_eq!(p.on_transaction(1, 0), Some(1));
        let s = p.stats();
        assert_eq!(s.executed, 2);
        assert_eq!(s.elided, 2);
    }

    #[test]
    fn imported_contexts_force_the_inherited_fence() {
        let mut sender = FencePlanner::new();
        sender.on_transaction(1, 0);
        let exported = sender.export_context(1).expect("sender has a causal past");

        let mut receiver = FencePlanner::new();
        // The receiving process's session inherits the sender's last service:
        // its first transaction at a *different* service fences it, even
        // though this session never used it.
        receiver.import_context(7, exported);
        assert_eq!(receiver.on_transaction(7, 1), Some(0));
        // Same service: nothing to fence.
        let mut receiver2 = FencePlanner::new();
        receiver2.import_context(9, exported);
        assert_eq!(receiver2.on_transaction(9, 0), None);
        assert_eq!(FencePlanner::new().export_context(5), None);
    }

    #[test]
    fn sessions_are_independent() {
        let mut p = FencePlanner::new();
        assert_eq!(p.on_transaction(1, 0), None);
        assert_eq!(p.on_transaction(2, 1), None, "another session's history is separate");
        assert_eq!(p.on_transaction(1, 1), Some(0));
        assert_eq!(p.last_service(2), Some(1));
        p.end_session(1);
        assert_eq!(p.on_transaction(1, 0), None, "a restarted session has no causal past");
    }
}
