//! A scaled-down Figure 7: Gryff vs Gryff-RSC p99 read latency under a
//! conflict-heavy YCSB workload over the five-region topology of Table 2.
//!
//! Run with: `cargo run --release --example gryff_reads`

use regular_seq::gryff::prelude::*;
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};

fn run(mode: Mode) -> GryffRunResult {
    let clients = (0..16)
        .map(|i| GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(1, SimDuration::ZERO),
            workload: Box::new(ConflictWorkload::ycsb(0.5, 0.25, i as u64))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    run_gryff(GryffClusterSpec {
        config: GryffConfig::wan(mode),
        net: LatencyMatrix::gryff_wan(),
        seed: 3,
        clients,
        stop_issuing_at: SimTime::from_secs(40),
        drain: SimDuration::from_secs(10),
        measure_from: SimTime::from_secs(5),
    })
}

fn main() {
    println!("YCSB, 25% conflicts, 0.5 write ratio, 16 closed-loop clients, 5 regions\n");
    for mode in [Mode::Gryff, Mode::GryffRsc] {
        let result = run(mode);
        let name = match mode {
            Mode::Gryff => "Gryff     ",
            Mode::GryffRsc => "Gryff-RSC ",
        };
        let mut reads = result.read_latencies.clone();
        let mut writes = result.write_latencies.clone();
        println!("{name}:");
        println!(
            "  reads : p50 = {:>8}  p99 = {:>8}  p99.9 = {:>8}  (slow reads: {})",
            reads.percentile(50.0).unwrap(),
            reads.percentile(99.0).unwrap(),
            reads.percentile(99.9).unwrap(),
            result.client_stats.slow_reads
        );
        println!(
            "  writes: p50 = {:>8}  p99 = {:>8}",
            writes.percentile(50.0).unwrap(),
            writes.percentile(99.0).unwrap()
        );
        verify_run(&result).expect("run satisfies its consistency model");
        println!("  conformance check passed ✓\n");
    }
    println!("Gryff's conflicting reads need a write-back round trip before returning;");
    println!("Gryff-RSC's reads always finish in one round and piggyback the observed value");
    println!("onto the client's next operation — the ~40% p99 read-latency cut of Figure 7.");
}
