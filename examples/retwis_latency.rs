//! A scaled-down Figure 5: Retwis over the wide-area topology, comparing
//! Spanner and Spanner-RSS read-only transaction tail latency.
//!
//! Run with: `cargo run --release --example retwis_latency`
//! (Use `--release`; the simulation covers ~40 simulated seconds per variant.)

use rand::rngs::SmallRng;
use regular_seq::core::types::Key;
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner::prelude::*;
use regular_seq::workloads::Retwis;

/// Adapter from the Retwis generator to the session workload interface.
struct RetwisWorkload(Retwis);

impl SessionWorkload for RetwisWorkload {
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp {
        let txn = self.0.next_txn(rng);
        let keys = txn.keys.iter().map(|&k| Key(k)).collect();
        if txn.read_only {
            SessionOp::RoTxn { keys }
        } else {
            SessionOp::RwTxn { keys }
        }
    }
}

fn run(mode: Mode) -> RunResult {
    let clients = (0..3)
        .map(|region| ClientSpec {
            region,
            sessions: SessionConfig::partly_open(4.0, 0.9, SimDuration::ZERO),
            workload: Box::new(RetwisWorkload(Retwis::new(200_000, 0.7)))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    run_cluster(ClusterSpec {
        config: SpannerConfig::wan(mode),
        net: LatencyMatrix::spanner_wan(),
        seed: 7,
        clients,
        stop_issuing_at: SimTime::from_secs(40),
        drain: SimDuration::from_secs(10),
        measure_from: SimTime::from_secs(5),
    })
}

fn main() {
    println!("Retwis (skew 0.7) over CA/VA/IR — read-only transaction latency\n");
    for mode in [Mode::Spanner, Mode::SpannerRss] {
        let result = run(mode);
        let name = match mode {
            Mode::Spanner => "Spanner",
            Mode::SpannerRss => "Spanner-RSS",
        };
        let mut ro = result.ro_latencies.clone();
        let mut rw = result.rw_latencies.clone();
        println!("{name}:");
        println!(
            "  RO  p50 = {:>8}  p99 = {:>8}  p99.9 = {:>8}",
            ro.percentile(50.0).unwrap(),
            ro.percentile(99.0).unwrap(),
            ro.percentile(99.9).unwrap()
        );
        println!(
            "  RW  p50 = {:>8}  p99 = {:>8}",
            rw.percentile(50.0).unwrap(),
            rw.percentile(99.0).unwrap()
        );
        println!("  throughput = {:.0} txn/s", result.throughput);
        verify_run(&result).expect("run satisfies its consistency model");
        println!("  conformance check passed ✓\n");
    }
    println!("The RSS variant trims the read-only tail (blocking on conflicting prepared");
    println!("read-write transactions) without changing read-write latency — Figure 5's shape.");
}
