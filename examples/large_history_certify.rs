//! Certifying a 100,000-operation history end to end.
//!
//! The paper's checkable guarantee only matters if certification keeps up
//! with real runs, which are orders of magnitude past the 128-op exact
//! search frontier. This example drives a long Spanner-RSS simulation to
//! roughly 100k operations, certifies the recorded history against its
//! serialization witness through the *streaming* cascade (component
//! decomposition + windowed checking, fed in completion order), and prints
//! the certification throughput alongside the component structure.
//!
//! It then repeats the exercise on a synthetic 8-group history where the
//! component decomposition actually splits the work, showing the three
//! certification paths (batch, decomposed, streaming) agree.
//!
//! Run with: `cargo run --release --example large_history_certify`

use std::time::Instant;

use regular_seq::core::checker::certificate::WitnessModel;
use regular_seq::core::{check_witness, check_witness_decomposed, ComponentSplit};
use regular_seq::sweep::{certify_streaming, run_seed_with, synthetic_history, Scenario};

fn main() {
    // A long Spanner-RSS run: ~100k operations of simulated WAN traffic,
    // certified RSS through the windowed streaming checker.
    let run = run_seed_with(Scenario::SpannerRss, 1, 1, Some(100_000), true);
    assert!(run.report.certified, "spanner-rss must certify: {:?}", run.report.violation);
    let certify_ops_per_sec = run.report.history_ops as f64 / (run.report.cert_ms / 1_000.0);
    println!("spanner-rss seed 1, scaled to a ~100k-op run:");
    println!("  history operations   {}", run.report.history_ops);
    println!("  certified            {} (streamed)", run.report.certified);
    println!(
        "  certification        {:.1} ms ({:.0} ops/sec)",
        run.report.cert_ms, certify_ops_per_sec
    );
    println!("  components           {}", run.report.components);
    println!("  peak reorder window  {} ops", run.report.peak_window);

    // A synthetic history with real component structure: 8 disjoint
    // process/key groups, so the decomposed checker certifies 8 independent
    // sub-histories. All three certification paths agree.
    let (history, witness) = synthetic_history(100_000, 8);
    let components = ComponentSplit::split(&history).len();

    let started = Instant::now();
    check_witness(&history, &witness, WitnessModel::Regular).expect("batch certifies");
    let batch_ms = started.elapsed().as_secs_f64() * 1_000.0;

    let started = Instant::now();
    check_witness_decomposed(&history, &witness, WitnessModel::Regular, 2)
        .expect("decomposed certifies");
    let decomposed_ms = started.elapsed().as_secs_f64() * 1_000.0;

    let started = Instant::now();
    let stats =
        certify_streaming(&history, &witness, WitnessModel::Regular).expect("streaming certifies");
    let streaming_ms = started.elapsed().as_secs_f64() * 1_000.0;

    println!("\nsynthetic 100k-op history, {components} components:");
    println!("  batch check          {batch_ms:.1} ms");
    println!("  decomposed check     {decomposed_ms:.1} ms ({components} components, 2 threads)");
    println!("  streaming check      {streaming_ms:.1} ms (peak window {})", stats.peak_window);
    println!("\nall three certification paths accept the same witness");
}
