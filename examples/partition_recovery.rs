//! Partition Virginia away mid-run over the composed Spanner-RSS +
//! Gryff-RSC deployment, heal it, and certify the combined history as RSS.
//!
//! Virginia hosts Spanner shard 1's leader and Gryff replica 1, so for two
//! simulated seconds every cross-region message to or from them is dropped
//! at send time. Clients observe timeouts and retry; after the heal the
//! protocols re-drive their stalled coordination from durable state — and
//! the conformance checker proves no client ever observed an inconsistency.
//!
//! Run with: `cargo run --release --example partition_recovery`

use regular_seq::sim::fault::FaultSchedule;
use regular_seq::sim::net::regions;
use regular_seq::sim::time::{SimDuration, SimTime};
use regular_seq::sweep::composed::{
    certify_composed, run_composed, ComposedRunConfig, ComposedWorkload,
};

fn main() {
    let partition_from = SimTime::from_secs(6);
    let partition_until = SimTime::from_secs(8);
    let faults =
        FaultSchedule::new().partition_region(regions::VIRGINIA, partition_from, partition_until);
    let config = ComposedRunConfig {
        num_apps: 2,
        ops_per_service: 1,
        batch: 2,
        duration_secs: 16,
        drain_secs: 8,
        workload: ComposedWorkload::PhotoApp,
        faults,
        op_timeout: Some(SimDuration::from_millis(1_500)),
        handoff_every: Some(8),
        ..ComposedRunConfig::default()
    };

    println!("Composed Spanner-RSS + Gryff-RSC deployment, photo-sharing app");
    println!(
        "  fault script: Virginia partitioned away {partition_from} -> {partition_until} \
         (shard 1 and replica 1 unreachable from other regions)\n"
    );

    let outcome = run_composed(7, &config);
    let net = outcome.net_stats;
    println!("simulated 16 s of load (+8 s drain):");
    println!("  spanner ops completed : {}", outcome.spanner_ops());
    println!("  gryff ops completed   : {}", outcome.gryff_ops());
    println!("  libRSS auto-fences    : {}", outcome.auto_fences());
    println!("  causal handoffs       : {}", outcome.handoffs());
    println!("  messages delivered    : {}", net.delivered);
    println!("  messages dropped      : {} (partition cut links)", net.dropped);
    println!("  messages expired      : {}", net.expired);

    match certify_composed(&outcome, 1) {
        Ok(certified) => {
            println!(
                "\nverdict: CERTIFIED — the combined {}-op history satisfies RSS \
                 through the partition and recovery",
                certified.history.len()
            );
        }
        Err(violation) => {
            println!("\nverdict: VIOLATION — {}", violation.reason);
            std::process::exit(1);
        }
    }
    assert!(net.dropped > 0, "the partition must actually drop traffic");
}
