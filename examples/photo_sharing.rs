//! The photo-sharing application of Section 2: invariants, anomalies, and why
//! RSS is "just as strong" as strict serializability for applications.
//!
//! The example walks through the canonical executions behind Table 1 and shows
//! which consistency models admit them, plus a correct execution where the
//! invariants hold.
//!
//! Run with: `cargo run --example photo_sharing`

use regular_seq::core::checker::models::{satisfies, satisfies_composed, Model};
use regular_seq::core::invariants::{
    check_i1, check_i2, detect_a1, detect_a2_a3, scenarios, PhotoAppKeys,
};

fn main() {
    let keys = PhotoAppKeys::default();

    println!("Photo-sharing application (Section 2.2)");
    println!(
        "  album key = {:?}, photo base = {:?}, request queue = {:?}\n",
        keys.album, keys.photo_base, keys.queue
    );

    // A correct execution: add a photo, enqueue the processing request, the
    // worker dequeues it and reads the photo.
    let good = scenarios::correct_execution(&keys);
    assert!(check_i1(&good, &keys).is_ok());
    assert!(check_i2(&good, &keys).is_ok());
    assert!(detect_a1(&good, &keys).is_none());
    assert!(detect_a2_a3(&good, &keys).is_none());
    println!("Correct execution: I1 and I2 hold, no anomalies. ✓\n");

    // Invariant I1: an album never references a photo whose data is null.
    let bad_i1 = scenarios::i1_violation(&keys);
    let violation = check_i1(&bad_i1, &keys).unwrap_err();
    println!(
        "I1-violating execution (operation {} sees photo {} referenced but null):",
        violation.observer, violation.photo
    );
    println!(
        "  admitted by strict serializability? {}",
        satisfies(&bad_i1, Model::StrictSerializability)
    );
    println!(
        "  admitted by RSS?                    {}",
        satisfies(&bad_i1, Model::RegularSequentialSerializability)
    );
    println!(
        "  admitted by PO serializability?     {}\n",
        satisfies(&bad_i1, Model::ProcessOrderedSerializability)
    );

    // Invariant I2: the worker never reads null for a photo it was asked to
    // process. This one needs *composition* across the key-value store and the
    // messaging service.
    let bad_i2 = scenarios::i2_violation(&keys);
    assert!(check_i2(&bad_i2, &keys).is_err());
    println!("I2-violating execution (worker dequeues the request but reads null):");
    println!(
        "  admitted by strict serializability?           {}",
        satisfies(&bad_i2, Model::StrictSerializability)
    );
    println!(
        "  admitted by RSS (composed through fences)?    {}",
        satisfies(&bad_i2, Model::RegularSequentialSerializability)
    );
    println!(
        "  admitted by independently PO-serializable services? {}",
        satisfies_composed(&bad_i2, Model::ProcessOrderedSerializability)
    );
    println!(
        "  -> I2 relies on a composable consistency model; PO serializability is not composable.\n"
    );

    // Anomaly A3: Alice sees Charlie's still-in-flight photo, phones Bob, and
    // Bob's read misses it. RSS admits this *temporarily* (the phone call is
    // invisible to the services), strict serializability never does.
    let a3 = scenarios::a3_anomaly(&keys);
    let anomaly = detect_a2_a3(&a3, &keys).unwrap();
    println!("Anomaly {} (user-visible, not an invariant violation):", anomaly.anomaly);
    println!(
        "  admitted by strict serializability? {}",
        satisfies(&a3, Model::StrictSerializability)
    );
    println!(
        "  admitted by RSS?                    {} (only while Charlie's add is still in flight)",
        satisfies(&a3, Model::RegularSequentialSerializability)
    );
    println!(
        "  admitted by PO serializability?     {}",
        satisfies(&a3, Model::ProcessOrderedSerializability)
    );
    println!("\nThis is the paper's Table 1: RSS preserves every invariant strict serializability");
    println!("preserves, and only relaxes real-time ordering for operations that are causally");
    println!("unrelated and still concurrent with an in-flight write.");
}
