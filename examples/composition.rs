//! Composing RSS services with `libRSS` (Section 4.1).
//!
//! Two services can each be RSS on their own and still expose a *cycle* to
//! clients that hop between them, because RSS lets causally-unrelated reads
//! run "behind" real time while a write is still in flight. The fix is a
//! real-time fence at the previous service before the first transaction at a
//! different service — inserted automatically by `libRSS`.
//!
//! This example builds the cross-service execution from Section 4.1:
//!
//! * process P3 reads `x = 1` at service A and then `y = 0` at service B,
//! * process P4 reads `y = 1` at service B and then `x = 0` at service A,
//!
//! while the writes of `x` and `y` are still in flight. Each service's
//! projection satisfies RSS, but the composition does not (the observed states
//! form a cycle). With the fence `libRSS` issues when P3 and P4 switch
//! services, the second reads are forced to observe the first service's state,
//! the cycle disappears, and the composition satisfies RSS.
//!
//! Run with: `cargo run --example composition`

use regular_seq::core::checker::models::{satisfies, Model};
use regular_seq::core::history::History;
use regular_seq::core::op::{OpKind, OpResult};
use regular_seq::core::types::{Key, ProcessId, ServiceId, Timestamp, Value};
use regular_seq::librss::{FencePlanner, LibRss, SharedLibRss};

const SVC_A: ServiceId = ServiceId(0);
const SVC_B: ServiceId = ServiceId(1);
const X: Key = Key(1);
const Y: Key = Key(2);

fn read(h: &mut History, p: u32, svc: ServiceId, key: Key, value: u64, at: (u64, u64)) {
    h.add_complete(
        ProcessId(p),
        svc,
        OpKind::Read { key },
        Timestamp(at.0),
        Timestamp(at.1),
        OpResult::Value(Value(value)),
    );
}

fn in_flight_write(h: &mut History, p: u32, svc: ServiceId, key: Key, value: u64, start: u64) {
    // The writer has not received its acknowledgement yet: the operation is
    // incomplete, so RSS does not (yet) force every later read to observe it.
    h.add_incomplete(
        ProcessId(p),
        svc,
        OpKind::Write { key, value: Value(value) },
        Timestamp(start),
    );
}

/// The unfenced execution of Section 4.1: the two service-hopping readers
/// observe states that cannot be reconciled into one global order.
fn without_fences() -> History {
    let mut h = History::new();
    in_flight_write(&mut h, 1, SVC_A, X, 1, 0);
    in_flight_write(&mut h, 2, SVC_B, Y, 1, 0);
    // P3: x = 1 at A, then y = 0 at B.
    read(&mut h, 3, SVC_A, X, 1, (10, 20));
    read(&mut h, 3, SVC_B, Y, 0, (30, 40));
    // P4: y = 1 at B, then x = 0 at A.
    read(&mut h, 4, SVC_B, Y, 1, (10, 20));
    read(&mut h, 4, SVC_A, X, 0, (30, 40));
    h
}

/// The same client behaviour when `libRSS` fences the previous service before
/// each cross-service hop: the fence at A (issued by P3 before touching B)
/// forces every later read at A — including P4's — to observe `x = 1`, and
/// symmetrically for B, so the second reads return the new values.
fn with_fences() -> History {
    let mut h = History::new();
    in_flight_write(&mut h, 1, SVC_A, X, 1, 0);
    in_flight_write(&mut h, 2, SVC_B, Y, 1, 0);
    read(&mut h, 3, SVC_A, X, 1, (10, 20));
    // P3's fence at A completes at time 25 (not an operation on the store's
    // data, so it is not recorded as a read/write).
    read(&mut h, 3, SVC_B, Y, 1, (30, 40));
    read(&mut h, 4, SVC_B, Y, 1, (10, 20));
    read(&mut h, 4, SVC_A, X, 1, (30, 40));
    h
}

fn report(name: &str, h: &History) {
    let composite = satisfies(h, Model::RegularSequentialSerializability);
    let service_a = satisfies(&h.project_service(SVC_A), Model::RegularSequentialSerializability);
    let service_b = satisfies(&h.project_service(SVC_B), Model::RegularSequentialSerializability);
    println!("{name}:");
    println!("  service A alone satisfies RSS: {service_a}");
    println!("  service B alone satisfies RSS: {service_b}");
    println!("  composition satisfies RSS:     {composite}\n");
}

fn main() {
    println!("Composing two RSS services (Section 4.1)\n");

    let unfenced = without_fences();
    let fenced = with_fences();
    report("Without real-time fences", &unfenced);
    report("With libRSS-inserted fences", &fenced);

    assert!(satisfies(&unfenced.project_service(SVC_A), Model::RegularSequentialSerializability));
    assert!(satisfies(&unfenced.project_service(SVC_B), Model::RegularSequentialSerializability));
    assert!(!satisfies(&unfenced, Model::RegularSequentialSerializability));
    assert!(satisfies(&fenced, Model::RegularSequentialSerializability));

    // libRSS decides *where* the fences go: one per service switch, none for
    // repeated transactions at the same service. Service names are interned
    // to dense ids at registration, so the hot path is a lookup-free index
    // comparison when the application keeps the returned id.
    let mut librss = LibRss::new();
    let svc_a = librss.register_service("service-a", || {});
    let svc_b = librss.register_service("service-b", || {});
    // P3's pattern: A, then B.
    librss.start_transaction_at(svc_a).unwrap();
    librss.start_transaction_at(svc_b).unwrap();
    // P4's pattern (same registry instance for brevity): B, then A.
    librss.start_transaction_at(svc_b).unwrap();
    librss.start_transaction_at(svc_a).unwrap();
    let stats = librss.stats();
    println!(
        "libRSS inserted {} fences across {} transaction starts;",
        stats.executed,
        stats.executed + stats.elided
    );
    println!("applications never call the fence themselves (Figure 3's interface).");

    // In the simulated deployments, the same decision logic runs in its pure
    // form: the composed session runner asks a FencePlanner per session and
    // executes the fence as a real protocol operation (see the multi_service
    // integration test, which runs Spanner-RSS and Gryff-RSC side by side).
    let mut planner = FencePlanner::new();
    assert_eq!(planner.on_transaction(3, 0), None); // P3 at A: first txn
    assert_eq!(planner.on_transaction(3, 1), Some(0)); // P3 hops to B: fence A
    assert_eq!(planner.on_transaction(4, 1), None); // P4's history is its own
    assert_eq!(planner.on_transaction(4, 0), Some(1)); // P4 hops to A: fence B
    println!(
        "FencePlanner (simulation form) reproduced the decisions: {} fences.",
        planner.stats().executed
    );

    // Section 4.2: when the application hops *across processes* (a Web server
    // answering a browser that then talks to another server), the causal
    // context travels out of band and the receiving registry keeps fencing.
    let sender = SharedLibRss::new();
    sender.register_service("service-a", || {});
    sender.register_service("service-b", || {});
    sender.start_transaction("service-a").unwrap();
    let ctx = sender.export_context(42);
    let receiver = SharedLibRss::new();
    receiver.register_service("service-a", || {});
    receiver.register_service("service-b", || {});
    receiver.import_context(&ctx);
    receiver.start_transaction("service-b").unwrap();
    assert_eq!(receiver.stats().executed, 1);
    println!("CausalContext propagation fenced service-a in the receiving process.");
}
