//! Quickstart: what RSS and RSC buy you, in three steps.
//!
//! 1. Check hand-written histories against the consistency models.
//! 2. Run a small simulated Spanner-RSS cluster through the unified session
//!    API — including pipelined (batched) sessions — and verify the recorded
//!    execution really satisfies RSS.
//! 3. Apply the Lemma 1 transformation to see why RSS preserves every
//!    invariant that holds under strict serializability.
//!
//! Run with: `cargo run --example quickstart`

use regular_seq::core::checker::models::{check, satisfies, Model};
use regular_seq::core::history::HistoryBuilder;
use regular_seq::core::transform::transform;
use regular_seq::session::SessionConfig;
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Step 1: consistency models on a tiny history (Figure 2 of the paper).
    // A write is concurrent with two reads; the earlier read returns the new
    // value, the later one still returns the old value.
    // ------------------------------------------------------------------
    let mut builder = HistoryBuilder::new();
    builder.write(2, 1, 1, 0, 100); // P2 writes x = 1 over [0, 100]
    builder.read(3, 1, 1, 10, 20); // P3 reads x = 1
    builder.read(1, 1, 0, 30, 40); // P1 reads x = 0 afterwards
    let history = builder.build();

    println!("Figure 2 history:");
    for (model, expected) in [
        (Model::Linearizability, false),
        (Model::RegularSequentialConsistency, true),
        (Model::SequentialConsistency, true),
    ] {
        let ok = satisfies(&history, model);
        println!("  {:<28} -> {}", model.name(), if ok { "allowed" } else { "disallowed" });
        assert_eq!(ok, expected);
    }

    // ------------------------------------------------------------------
    // Step 2: the Lemma 1 transformation — the RSC execution is equivalent to
    // a linearizable one, so every application invariant carries over.
    // ------------------------------------------------------------------
    let outcome = check(&history, Model::RegularSequentialConsistency).unwrap();
    let witness = outcome.witness.expect("the history satisfies RSC");
    let transformed = transform(&history, &witness);
    assert!(transformed.per_process_order_preserved());
    assert!(transformed.service_interactions_sequential());
    println!("\nLemma 1: transformed into an equivalent sequential execution,");
    println!(
        "         preserving every process's local order ({} actions).",
        transformed.schedule().len()
    );

    // ------------------------------------------------------------------
    // Step 3: run a small Spanner-RSS cluster through the session API and
    // verify the whole execution. `SessionConfig` is protocol-agnostic: the
    // same configuration drives the Gryff harness, and `.with_batch(4)`
    // pipelines four transactions per session turn (each pipeline slot is its
    // own application process in the recorded history).
    // ------------------------------------------------------------------
    let result = run_cluster(ClusterSpec {
        config: SpannerConfig::wan(Mode::SpannerRss),
        net: LatencyMatrix::spanner_wan(),
        seed: 1,
        clients: vec![ClientSpec {
            region: 0,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO).with_batch(4),
            workload: Box::new(UniformWorkload { num_keys: 50, ro_fraction: 0.5, keys_per_txn: 2 }),
        }],
        stop_issuing_at: SimTime::from_secs(10),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
    });
    println!("\nSimulated Spanner-RSS run (4 sessions x batch 4):");
    println!("  committed read-write transactions: {}", result.client_stats.rw_completed);
    println!("  committed read-only  transactions: {}", result.client_stats.ro_completed);
    let mut ro = result.ro_latencies.clone();
    println!(
        "  RO latency p50 = {}, p99 = {}",
        ro.percentile(50.0).unwrap(),
        ro.percentile(99.0).unwrap()
    );
    verify_run(&result).expect("the recorded execution satisfies RSS");
    println!("  conformance: the execution satisfies regular sequential serializability ✓");
}
