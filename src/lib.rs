//! `regular-seq`: a reproduction of *"Regular Sequential Serializability and
//! Regular Sequential Consistency"* (SOSP 2021).
//!
//! This facade crate re-exports the workspace members so examples, integration
//! tests, and downstream users can depend on a single crate. For the map of
//! the whole stack — crate layering, the two execution planes, the durable
//! storage layer, the certification cascade, and the seed flow — see
//! [`ARCHITECTURE.md`](https://github.com/paper-repro/regular-seq/blob/main/ARCHITECTURE.md)
//! at the repository root. The members:
//!
//! * [`core`] (`regular-core`) — the consistency models themselves: histories,
//!   causal/real-time orders, checkers for RSS, RSC, and their neighbours, the
//!   Lemma 1 transformation, and the photo-sharing invariants of Table 1.
//! * [`sim`] (`regular-sim`) — the deterministic discrete-event simulator the
//!   protocol evaluations run on, including multi-protocol composition
//!   ([`sim::compose`]).
//! * [`session`] (`regular-session`) — the protocol-agnostic session layer:
//!   typed session operations, closed-loop/partly-open drivers with a
//!   batching knob, the shared history recorder, and multi-service session
//!   runners with automatic `libRSS` fencing.
//! * [`spanner`] (`regular-spanner`) — Spanner and Spanner-RSS (Section 5).
//! * [`gryff`] (`regular-gryff`) — Gryff and Gryff-RSC (Section 7).
//! * [`live`] (`regular-live`) — the live execution plane: the same protocol
//!   crates on real OS threads and a scaled wall clock instead of the event
//!   queue, with completions streamed into online certification. Messages
//!   travel over a pluggable transport — in-process channels, Unix-domain
//!   sockets, or TCP up to nodes in separate OS processes; see
//!   [`OPERATIONS.md`](https://github.com/paper-repro/regular-seq/blob/main/OPERATIONS.md)
//!   for the operator's guide to launching and reading live clusters.
//! * [`storage`] (`regular-storage`) — the durable storage stack under the
//!   protocol nodes: write-ahead log with group commit, page-based buffer
//!   pool and checkpoints, and crash recovery that replays from the log —
//!   on a deterministic in-process device in the simulator and real files
//!   on the live plane, behind the `Durability` knob both protocol configs
//!   carry.
//! * [`librss`] (`regular-librss`) — the libRSS composition meta-library
//!   (Section 4).
//! * [`workloads`] (`regular-workloads`) — Retwis and Zipfian workload
//!   generators (Section 6).
//! * [`sweep`] (`regular-sweep`) — parallel conformance sweeps: seeded
//!   certified runs of every scenario fanned across a work-stealing pool,
//!   with sharded witness checking and replayable failure artifacts.
//! * [`hunt`] (`regular-hunt`) — coverage-guided schedule search: treats the
//!   whole `(seed, workload, fault schedule, delivery order)` tuple as a
//!   mutable input, scores executions by behaviour-coverage signatures
//!   recorded inside the simulator, and delta-debugs any certification
//!   failure down to a minimal replayable artifact.
//!
//! # Quick start: checking histories
//!
//! ```
//! use regular_seq::core::checker::models::{satisfies, Model};
//! use regular_seq::core::history::HistoryBuilder;
//!
//! // A read concurrent with a write returns the new value; a later,
//! // causally unrelated read still returns the old one. RSC allows this
//! // (only causally *later* reads are constrained); linearizability does not.
//! let mut history = HistoryBuilder::new();
//! history.write(1, 1, 1, 0, 100);
//! history.read(2, 1, 1, 10, 20);
//! history.read(3, 1, 0, 30, 40);
//! let history = history.build();
//!
//! assert!(satisfies(&history, Model::RegularSequentialConsistency));
//! assert!(!satisfies(&history, Model::Linearizability));
//! ```
//!
//! # Quick start: driving a protocol through the session API
//!
//! Both protocol harnesses speak the same session interface: a
//! [`session::SessionConfig`] chooses the load model (closed-loop or
//! partly-open, with optional pipelining via `with_batch`), a
//! [`session::SessionWorkload`] produces typed operations, and the recorded
//! run is converted to a checkable history by the shared
//! [`session::HistoryRecorder`].
//!
//! ```
//! use regular_seq::session::SessionConfig;
//! use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
//! use regular_seq::spanner::prelude::*;
//!
//! let result = run_cluster(ClusterSpec {
//!     config: SpannerConfig::wan(Mode::SpannerRss),
//!     net: LatencyMatrix::spanner_wan(),
//!     seed: 1,
//!     clients: vec![ClientSpec {
//!         region: 0,
//!         // Two sessions, each pipelining four transactions per turn.
//!         sessions: SessionConfig::closed_loop(2, SimDuration::ZERO).with_batch(4),
//!         workload: Box::new(UniformWorkload { num_keys: 100, ro_fraction: 0.5, keys_per_txn: 2 }),
//!     }],
//!     stop_issuing_at: SimTime::from_secs(5),
//!     drain: SimDuration::from_secs(2),
//!     measure_from: SimTime::from_secs(1),
//! });
//! assert!(result.client_stats.ro_completed > 0);
//! verify_run(&result).expect("the recorded execution satisfies RSS");
//! ```
//!
//! Because the session layer is protocol-agnostic, one simulation can run a
//! Spanner-RSS store and a Gryff-RSC store side by side with `libRSS`
//! inserting real-time fences on every service switch — see
//! `tests/multi_service.rs` for the end-to-end scenario and the
//! `examples/` directory for more runnable walkthroughs. The
//! `regular-bench` crate regenerates every table and figure of the paper's
//! evaluation.

pub use regular_core as core;
pub use regular_gryff as gryff;
pub use regular_hunt as hunt;
pub use regular_librss as librss;
pub use regular_live as live;
pub use regular_session as session;
pub use regular_sim as sim;
pub use regular_spanner as spanner;
pub use regular_storage as storage;
pub use regular_sweep as sweep;
pub use regular_workloads as workloads;
