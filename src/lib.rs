//! `regular-seq`: a reproduction of *"Regular Sequential Serializability and
//! Regular Sequential Consistency"* (SOSP 2021).
//!
//! This facade crate re-exports the workspace members so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`core`] (`regular-core`) — the consistency models themselves: histories,
//!   causal/real-time orders, checkers for RSS, RSC, and their neighbours, the
//!   Lemma 1 transformation, and the photo-sharing invariants of Table 1.
//! * [`sim`] (`regular-sim`) — the deterministic discrete-event simulator the
//!   protocol evaluations run on.
//! * [`spanner`] (`regular-spanner`) — Spanner and Spanner-RSS (Section 5).
//! * [`gryff`] (`regular-gryff`) — Gryff and Gryff-RSC (Section 7).
//! * [`librss`] (`regular-librss`) — the libRSS composition meta-library
//!   (Section 4).
//! * [`workloads`] (`regular-workloads`) — Retwis and Zipfian workload
//!   generators (Section 6).
//!
//! # Quick start
//!
//! ```
//! use regular_seq::core::checker::models::{satisfies, Model};
//! use regular_seq::core::history::HistoryBuilder;
//!
//! // A read concurrent with a write returns the new value; a later,
//! // causally unrelated read still returns the old one. RSC allows this
//! // (only causally *later* reads are constrained); linearizability does not.
//! let mut history = HistoryBuilder::new();
//! history.write(1, 1, 1, 0, 100);
//! history.read(2, 1, 1, 10, 20);
//! history.read(3, 1, 0, 30, 40);
//! let history = history.build();
//!
//! assert!(satisfies(&history, Model::RegularSequentialConsistency));
//! assert!(!satisfies(&history, Model::Linearizability));
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `regular-bench` crate for the harnesses that regenerate every table and
//! figure of the paper's evaluation.

pub use regular_core as core;
pub use regular_gryff as gryff;
pub use regular_librss as librss;
pub use regular_sim as sim;
pub use regular_spanner as spanner;
pub use regular_workloads as workloads;
