//! End-to-end durability differentials over the whole stack.
//!
//! Three anchors pin the write-ahead log to the protocols' semantics:
//!
//! 1. **Healthy runs are byte-identical.** With no faults and a zero
//!    group-commit window, a run under `Durability::Wal` produces exactly
//!    the history and final store of the same run under
//!    `Durability::InMemory` — durability is observationally invisible
//!    until something crashes.
//! 2. **Offline replay equals the live state.** After a faulty run (real
//!    crashes, torn tails, in-protocol recovery), re-reading each node's
//!    device offline — snapshot plus surviving log records, no protocol
//!    code — reconstructs exactly the store the live node ended with.
//! 3. **Recovery feeds certification.** The faulty durable runs still
//!    certify their consistency model, with the storage counters proving
//!    recovery actually replayed the log.

use regular_gryff::durable::replay_registers;
use regular_gryff::prelude as gryff;
use regular_session::{SessionConfig, SessionWorkload};
use regular_sim::fault::{FaultSchedule, LinkScope};
use regular_sim::net::LatencyMatrix;
use regular_sim::time::{SimDuration, SimTime};
use regular_spanner::durable::replay_store;
use regular_spanner::prelude as spanner;
use regular_storage::{Durability, StorageRegistry, WalOptions};

const SEED: u64 = 42;

/// A short faulty window: one node crash (wiping volatile state under WAL
/// durability) plus a lossy stretch, inside a 12-simulated-second run.
fn crash_faults(victim: usize) -> FaultSchedule {
    FaultSchedule::new().crash(victim, SimTime::from_secs(3), SimTime::from_secs(5)).drop_window(
        LinkScope::All,
        SimTime::from_secs(6),
        SimTime::from_secs(9),
        0.05,
    )
}

/// A WAL configuration sized so a short run still exercises everything:
/// segment rotation, checkpoints, group commit, and seeded torn tails.
fn wal(registry: &StorageRegistry) -> Durability {
    Durability::Wal(
        WalOptions::mem(registry.clone())
            .with_group_commit_us(200)
            .with_segment_bytes(16 * 1024)
            .with_checkpoint_every(128)
            .with_torn_tail_seed(SEED),
    )
}

fn run_spanner(durability: Durability, faults: Option<FaultSchedule>) -> spanner::RunResult {
    let mut config =
        spanner::SpannerConfig::wan(spanner::Mode::SpannerRss).with_durability(durability);
    if let Some(faults) = faults {
        config = config.with_faults(faults, SimDuration::from_millis(1_500));
    }
    let clients = (0..3)
        .map(|i| spanner::ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(SEED.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 100,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config,
        net: LatencyMatrix::spanner_wan(),
        seed: SEED,
        clients,
        stop_issuing_at: SimTime::from_secs(12),
        drain: SimDuration::from_secs(6),
        measure_from: SimTime::from_secs(1),
    })
}

fn run_gryff(durability: Durability, faults: Option<FaultSchedule>) -> gryff::GryffRunResult {
    let mut config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc).with_durability(durability);
    if let Some(faults) = faults {
        config = config.with_faults(faults, SimDuration::from_millis(1_500));
    }
    let clients = (0..5)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO)
                .with_workload_seed(SEED.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(0.5, 0.25, SEED + i as u64))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    gryff::run_gryff(gryff::GryffClusterSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed: SEED,
        clients,
        stop_issuing_at: SimTime::from_secs(12),
        drain: SimDuration::from_secs(6),
        measure_from: SimTime::from_secs(1),
    })
}

#[test]
fn healthy_spanner_wal_run_is_byte_identical_to_in_memory() {
    let registry = StorageRegistry::new();
    // Group commit 0: every append syncs immediately, so the WAL never
    // defers work to a timer and the event schedule matches exactly.
    let durable = run_spanner(Durability::Wal(WalOptions::mem(registry.clone())), None);
    let volatile = run_spanner(Durability::InMemory, None);

    let (dh, dw) = spanner::build_history(&durable);
    let (vh, vw) = spanner::build_history(&volatile);
    assert_eq!(dh, vh, "healthy WAL run must replay the in-memory history byte for byte");
    assert_eq!(dw, vw, "and the serialization witness");
    assert_eq!(durable.shard_stores, volatile.shard_stores, "and the final committed stores");
    assert!(volatile.storage.is_empty(), "in-memory runs log nothing");
    assert!(durable.storage.records > 0, "the WAL run actually logged");
}

#[test]
fn healthy_gryff_wal_run_is_byte_identical_to_in_memory() {
    let registry = StorageRegistry::new();
    let durable = run_gryff(Durability::Wal(WalOptions::mem(registry.clone())), None);
    let volatile = run_gryff(Durability::InMemory, None);

    let (dh, mut dc) = gryff::build_history(&durable);
    let (vh, mut vc) = gryff::build_history(&volatile);
    assert_eq!(dh, vh, "healthy WAL run must replay the in-memory history byte for byte");
    // The constraint-edge *set* is deterministic; its Vec order is not (the
    // per-key chains live in a hash map), so compare sorted.
    dc.sort_unstable();
    vc.sort_unstable();
    assert_eq!(dc, vc, "and the carstamp-chain constraint edges");
    assert_eq!(durable.replica_registers, volatile.replica_registers, "and the final registers");
    assert!(volatile.storage.is_empty());
    assert!(durable.storage.records > 0);
}

#[test]
fn spanner_crash_recovery_replays_the_log_and_still_certifies() {
    let registry = StorageRegistry::new();
    let result = run_spanner(wal(&registry), Some(crash_faults(0)));

    let s = &result.storage;
    assert!(s.recoveries > 0, "the crashed shard recovered from its log ({s:?})");
    assert!(s.replayed > 0, "recovery replayed logged records ({s:?})");
    assert!(s.checkpoints > 0, "the run checkpointed ({s:?})");
    assert!(s.syncs < s.records, "group commit batched fsyncs ({s:?})");
    assert!(result.client_stats.rw_completed > 50, "the cluster kept serving");
    spanner::verify_run(&result).expect("Spanner-RSS must satisfy RSS through durable recovery");

    // Offline differential: re-reading each shard's device without any
    // protocol code reconstructs exactly the store the live shard ended with.
    for (shard, live) in result.shard_stores.iter().enumerate() {
        let mut replayed = replay_store(registry.disk(&format!("spanner-shard-{shard}"))).dump();
        replayed.sort_unstable_by_key(|(k, ts, _)| (k.0, *ts));
        assert_eq!(
            &replayed, live,
            "offline WAL replay of shard {shard} must equal its final live store"
        );
    }
}

#[test]
fn gryff_crash_recovery_replays_the_log_and_still_certifies() {
    let registry = StorageRegistry::new();
    let result = run_gryff(wal(&registry), Some(crash_faults(1)));

    let s = &result.storage;
    assert!(s.recoveries > 0, "the crashed replica recovered from its log ({s:?})");
    assert!(s.replayed > 0, "recovery replayed logged records ({s:?})");
    assert!(s.syncs < s.records, "group commit batched fsyncs ({s:?})");
    gryff::verify_run(&result).expect("Gryff-RSC must satisfy RSC through durable recovery");

    for (replica, live) in result.replica_registers.iter().enumerate() {
        let replayed = replay_registers(registry.disk(&format!("gryff-replica-{replica}")));
        assert_eq!(
            &replayed, live,
            "offline WAL replay of replica {replica} must equal its final live registers"
        );
    }
}

#[test]
fn durable_faulty_runs_are_deterministic_for_a_seed() {
    let run = || {
        let registry = StorageRegistry::new();
        run_spanner(wal(&registry), Some(crash_faults(0)))
    };
    let a = run();
    let b = run();
    let (ha, _) = spanner::build_history(&a);
    let (hb, _) = spanner::build_history(&b);
    assert_eq!(ha, hb, "same seed, same crashes, same torn tails: identical history");
    assert_eq!(a.shard_stores, b.shard_stores);
    assert_eq!(a.storage, b.storage, "and identical storage counters");
}
