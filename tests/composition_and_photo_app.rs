//! Integration tests for Table 1 (the photo-sharing application) and the
//! libRSS composition protocol of Section 4.

use regular_seq::core::checker::models::{satisfies, satisfies_composed, Model};
use regular_seq::core::invariants::{
    check_i1, check_i2, detect_a1, detect_a2_a3, scenarios, PhotoAppKeys,
};
use regular_seq::librss::{CausalContext, LibRss};

#[test]
fn table_1_verdicts_match_the_paper() {
    let keys = PhotoAppKeys::default();

    // Scenario sanity: each one really exhibits its violation/anomaly.
    assert!(check_i1(&scenarios::i1_violation(&keys), &keys).is_err());
    assert!(check_i2(&scenarios::i2_violation(&keys), &keys).is_err());
    assert!(detect_a1(&scenarios::a1_anomaly(&keys), &keys).is_some());
    assert!(detect_a2_a3(&scenarios::a2_anomaly(&keys), &keys).is_some());
    assert!(detect_a2_a3(&scenarios::a3_anomaly(&keys), &keys).is_some());

    // I1: never violated under any of the three models.
    let i1 = scenarios::i1_violation(&keys);
    assert!(!satisfies(&i1, Model::StrictSerializability));
    assert!(!satisfies(&i1, Model::RegularSequentialSerializability));
    assert!(!satisfies_composed(&i1, Model::ProcessOrderedSerializability));

    // I2: violated only when the services are composed without a composable
    // guarantee (PO serializability).
    let i2 = scenarios::i2_violation(&keys);
    assert!(!satisfies(&i2, Model::StrictSerializability));
    assert!(!satisfies(&i2, Model::RegularSequentialSerializability));
    assert!(satisfies_composed(&i2, Model::ProcessOrderedSerializability));

    // A1: never under all three.
    let a1 = scenarios::a1_anomaly(&keys);
    assert!(!satisfies(&a1, Model::StrictSerializability));
    assert!(!satisfies(&a1, Model::RegularSequentialSerializability));
    assert!(!satisfies_composed(&a1, Model::ProcessOrderedSerializability));

    // A2: never under strict serializability and RSS; possible under PO.
    let a2 = scenarios::a2_anomaly(&keys);
    assert!(!satisfies(&a2, Model::StrictSerializability));
    assert!(!satisfies(&a2, Model::RegularSequentialSerializability));
    assert!(satisfies_composed(&a2, Model::ProcessOrderedSerializability));

    // A3: never under strict serializability; temporarily possible under RSS.
    let a3 = scenarios::a3_anomaly(&keys);
    assert!(!satisfies(&a3, Model::StrictSerializability));
    assert!(satisfies(&a3, Model::RegularSequentialSerializability));
    assert!(satisfies_composed(&a3, Model::ProcessOrderedSerializability));

    // The correct execution passes every invariant and anomaly detector.
    let good = scenarios::correct_execution(&keys);
    assert!(check_i1(&good, &keys).is_ok());
    assert!(check_i2(&good, &keys).is_ok());
    assert!(detect_a1(&good, &keys).is_none());
    assert!(detect_a2_a3(&good, &keys).is_none());
    assert!(satisfies(&good, Model::RegularSequentialSerializability));
}

#[test]
fn librss_fences_exactly_on_service_switches() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    let kv_fences = Arc::new(AtomicU32::new(0));
    let mq_fences = Arc::new(AtomicU32::new(0));
    let mut lib = LibRss::new();
    let k = kv_fences.clone();
    lib.register_service("kv", move || {
        k.fetch_add(1, Ordering::SeqCst);
    });
    let m = mq_fences.clone();
    lib.register_service("mq", move || {
        m.fetch_add(1, Ordering::SeqCst);
    });

    // The photo-sharing web server's pattern: add-photo (kv), enqueue (mq),
    // then the next request's add-photo (kv) again.
    for _ in 0..10 {
        lib.start_transaction("kv").unwrap();
        lib.start_transaction("mq").unwrap();
    }
    assert_eq!(kv_fences.load(Ordering::SeqCst), 10);
    assert_eq!(mq_fences.load(Ordering::SeqCst), 9);
    let stats = lib.stats();
    assert_eq!(stats.executed, 19);
    assert_eq!(stats.elided, 1);
}

#[test]
fn causal_context_propagates_between_processes() {
    let mut web_server_1 = LibRss::new();
    web_server_1.register_service("kv", || {});
    web_server_1.register_service("mq", || {});
    web_server_1.start_transaction("kv").unwrap();

    // The response to the browser carries the causal context; a different web
    // server handling the browser's next request imports it.
    let ctx: CausalContext = web_server_1.export_context(1234);
    assert_eq!(ctx.min_timestamp, 1234);

    let mut web_server_2 = LibRss::new();
    let fenced = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let f = fenced.clone();
    web_server_2.register_service("kv", move || {
        f.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    });
    web_server_2.register_service("mq", || {});
    web_server_2.import_context(&ctx);
    // First transaction at a *different* service: the imported kv context
    // forces a kv fence so the browser's causal past is ordered first.
    web_server_2.start_transaction("mq").unwrap();
    assert_eq!(fenced.load(std::sync::atomic::Ordering::SeqCst), 1);
}
