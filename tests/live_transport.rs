//! Socket-transport integration tests: the same live deployment carried
//! over an in-process mpsc channel, a Unix-domain socket, and TCP loopback
//! must be *behaviourally* identical — certified under the same model, with
//! progress of the same order — because the transport only moves bytes; the
//! router's latency, fault, and delivery-record machinery is shared.

use regular_seq::core::checker::certificate::WitnessModel;
use regular_seq::live::{run_cluster_live, SpannerLiveSpec, TransportKind};
use regular_seq::session::{SessionConfig, SessionWorkload};
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner::prelude::*;
use regular_seq::sweep::certify_streaming;

fn clients(num_clients: usize, seed: u64) -> Vec<ClientSpec> {
    (0..num_clients)
        .map(|i| ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(UniformWorkload { num_keys: 200, ro_fraction: 0.5, keys_per_txn: 2 })
                as Box<dyn SessionWorkload>,
        })
        .collect()
}

fn run(seed: u64, transport: TransportKind) -> (usize, bool) {
    let result = run_cluster_live(SpannerLiveSpec {
        config: SpannerConfig::wan(Mode::SpannerRss),
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients: clients(4, seed),
        stop_issuing_at: SimTime::from_secs(15),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(1),
        time_scale: 40,
        record_deliveries: true,
        transport,
    });
    assert!(
        !result.deliveries.is_empty(),
        "{} run must record its delivery schedule",
        transport.name()
    );
    if transport != TransportKind::Mpsc {
        assert!(
            result.wire.frames_tx > 0 && result.wire.frames_rx > 0,
            "{} run must count wire frames, got {:?}",
            transport.name(),
            result.wire
        );
        assert!(
            result.wire.bytes_tx > result.wire.frames_tx * 8,
            "byte counters must include payloads, not just headers"
        );
    } else {
        assert_eq!(result.wire.frames_tx, 0, "mpsc moves no wire frames");
    }
    let (history, witness) = build_history_from(&result.completed);
    let certified = certify_streaming(&history, &witness, WitnessModel::Regular).is_ok();
    (history.len(), certified)
}

/// The same seeded Spanner-RSS deployment over mpsc and over a Unix-domain
/// socket: both certify RSS online and complete a comparable number of
/// operations. (Socket runs are not bit-identical — real scheduling and
/// wire latency shift timestamps — so the comparison is behavioural, like
/// the live-vs-simulator differential.)
#[test]
fn uds_transport_certifies_like_mpsc() {
    let seed = 13;
    let (mpsc_ops, mpsc_ok) = run(seed, TransportKind::Mpsc);
    let (uds_ops, uds_ok) = run(seed, TransportKind::Uds);
    assert!(mpsc_ok, "mpsc run must certify RSS");
    assert!(uds_ok, "uds run must certify RSS");
    assert!(mpsc_ops >= 50, "mpsc baseline too small to compare ({mpsc_ops} ops)");
    let ratio = uds_ops as f64 / mpsc_ops as f64;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "uds progress diverges from mpsc: {uds_ops} uds vs {mpsc_ops} mpsc ops"
    );
}

/// TCP loopback, same bar: certified RSS and comparable progress.
#[test]
fn tcp_transport_certifies_like_mpsc() {
    let seed = 17;
    let (mpsc_ops, mpsc_ok) = run(seed, TransportKind::Mpsc);
    let (tcp_ops, tcp_ok) = run(seed, TransportKind::Tcp);
    assert!(mpsc_ok, "mpsc run must certify RSS");
    assert!(tcp_ok, "tcp run must certify RSS");
    assert!(mpsc_ops >= 50, "mpsc baseline too small to compare ({mpsc_ops} ops)");
    let ratio = tcp_ops as f64 / mpsc_ops as f64;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "tcp progress diverges from mpsc: {tcp_ops} tcp vs {mpsc_ops} mpsc ops"
    );
}
