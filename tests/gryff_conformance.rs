//! Cross-crate integration tests: Gryff / Gryff-RSC simulations verified with
//! the `regular-core` checkers (linearizability and RSC respectively).

use regular_seq::gryff::prelude::*;
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};

fn ycsb_cluster(mode: Mode, write_ratio: f64, conflict: f64, seed: u64) -> GryffRunResult {
    let clients = (0..10)
        .map(|i| GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO),
            workload: Box::new(ConflictWorkload::ycsb(write_ratio, conflict, i as u64))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    run_gryff(GryffClusterSpec {
        config: GryffConfig::wan(mode),
        net: LatencyMatrix::gryff_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(40),
        drain: SimDuration::from_secs(15),
        measure_from: SimTime::from_secs(4),
    })
}

#[test]
fn gryff_is_linearizable_under_high_conflict() {
    let result = ycsb_cluster(Mode::Gryff, 0.5, 0.5, 31);
    assert!(result.client_stats.reads > 500);
    assert!(result.client_stats.slow_reads > 0, "the write-back path should be exercised");
    verify_run(&result).expect("Gryff must be linearizable");
}

#[test]
fn gryff_rsc_satisfies_rsc_under_high_conflict() {
    let result = ycsb_cluster(Mode::GryffRsc, 0.5, 0.5, 31);
    assert!(result.client_stats.reads > 500);
    assert_eq!(result.client_stats.slow_reads, 0, "Gryff-RSC reads are always one round");
    assert!(result.client_stats.deps_piggybacked > 0);
    verify_run(&result).expect("Gryff-RSC must satisfy RSC");
}

#[test]
fn gryff_rsc_p99_read_latency_improves_with_conflicts() {
    let baseline = ycsb_cluster(Mode::Gryff, 0.5, 0.25, 17);
    let rsc = ycsb_cluster(Mode::GryffRsc, 0.5, 0.25, 17);
    let mut b = baseline.read_latencies.clone();
    let mut r = rsc.read_latencies.clone();
    let pb = b.percentile(99.0).unwrap();
    let pr = r.percentile(99.0).unwrap();
    assert!(pr < pb, "Gryff-RSC p99 read latency ({pr}) should beat Gryff's ({pb})");
    // The write protocol is identical between the variants. The pooled median
    // can still shift a little because faster reads let far-region closed-loop
    // clients contribute more (higher-latency) write samples, so compare with
    // a tolerance that absorbs that sampling-composition effect.
    let mut bw = baseline.write_latencies.clone();
    let mut rw = rsc.write_latencies.clone();
    let wb = bw.percentile(50.0).unwrap().as_micros() as f64;
    let wr = rw.percentile(50.0).unwrap().as_micros() as f64;
    assert!(
        (wb - wr).abs() / wb < 0.20,
        "median write latency should be essentially unchanged (baseline {wb} vs rsc {wr})"
    );
}

#[test]
fn lagging_replica_does_not_break_consistency() {
    // Failure injection: one replica is an order of magnitude slower at
    // processing messages. Quorums route around it; consistency must hold.
    let mut config = GryffConfig::wan(Mode::GryffRsc);
    config.replica_service_time = SimDuration::from_micros(20);
    let net = LatencyMatrix::gryff_wan();
    let mut clients: Vec<GryffClientSpec> = (0..8)
        .map(|i| GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO),
            workload: Box::new(ConflictWorkload::ycsb(0.5, 0.4, i as u64))
                as Box<dyn SessionWorkload>,
        })
        .collect();
    // Make one client hammer the shared key to maximize disagreement windows.
    clients.push(GryffClientSpec {
        region: 0,
        sessions: SessionConfig::closed_loop(1, SimDuration::ZERO),
        workload: Box::new(ConflictWorkload::ycsb(1.0, 1.0, 99)) as Box<dyn SessionWorkload>,
    });
    let result = run_gryff(GryffClusterSpec {
        config,
        net,
        seed: 8,
        clients,
        stop_issuing_at: SimTime::from_secs(30),
        drain: SimDuration::from_secs(15),
        measure_from: SimTime::from_secs(3),
    });
    assert!(result.client_stats.reads > 200);
    verify_run(&result).expect("Gryff-RSC must satisfy RSC with a lagging replica");
}

#[test]
fn rmw_workload_is_consistent() {
    let clients = (0..4)
        .map(|i| GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO),
            workload: Box::new(ConflictWorkload {
                rmw_ratio: 0.3,
                ..ConflictWorkload::ycsb(0.4, 0.2, i as u64)
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    let result = run_gryff(GryffClusterSpec {
        config: GryffConfig::wan(Mode::GryffRsc),
        net: LatencyMatrix::gryff_wan(),
        seed: 12,
        clients,
        stop_issuing_at: SimTime::from_secs(30),
        drain: SimDuration::from_secs(15),
        measure_from: SimTime::from_secs(3),
    });
    assert!(result.client_stats.rmws > 50);
    verify_run(&result).expect("mixed read/write/rmw workload must satisfy RSC");
}

#[test]
fn deterministic_runs_for_fixed_seed() {
    let a = ycsb_cluster(Mode::Gryff, 0.3, 0.1, 55);
    let b = ycsb_cluster(Mode::Gryff, 0.3, 0.1, 55);
    assert_eq!(a.client_stats.reads, b.client_stats.reads);
    assert_eq!(a.client_stats.writes, b.client_stats.writes);
    assert_eq!(a.messages, b.messages);
}
