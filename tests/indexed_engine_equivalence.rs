//! Protocol-level pin of the PR 5 tentpole: the indexed (arena + time-wheel)
//! event queue yields **byte-identical histories** to the retained
//! heap-based reference engine for the same
//! `(engine seed, workload seed, FaultSchedule)` — including same-timestamp
//! tie-breaking — across Spanner-RSS, Gryff-RSC, and the composed
//! deployment, healthy and under faults (the new one-way-cut and
//! crash-during-commit-wait shapes included). Histories are compared as
//! canonical JSON text, the same yardstick the sweep's failure artifacts
//! use.

use proptest::prelude::*;
use regular_seq::gryff::prelude as gryff;
use regular_seq::session::{HistoryRecorder, SessionConfig, SessionWorkload};
use regular_seq::sim::fault::{FaultSchedule, LinkScope};
use regular_seq::sim::net::{LatencyMatrix, Region};
use regular_seq::sim::queue::QueueKind;
use regular_seq::sim::time::{SimDuration, SimTime};
use regular_seq::spanner::prelude as spanner;
use regular_seq::sweep::artifact::history_to_json;
use regular_seq::sweep::composed::{run_composed, ComposedRunConfig, ComposedWorkload};

/// A Spanner-RSS WAN run rendered as canonical history JSON.
fn spanner_history(seed: u64, kind: QueueKind, faults: Option<FaultSchedule>) -> String {
    let mut config = spanner::SpannerConfig::wan(spanner::Mode::SpannerRss);
    config.queue_kind = kind;
    if let Some(faults) = faults {
        config = config.with_faults(faults, SimDuration::from_millis(1_500));
    }
    let clients = (0..3)
        .map(|i| spanner::ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 200,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn SessionWorkload>,
        })
        .collect();
    let result = spanner::run_cluster(spanner::ClusterSpec {
        config,
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(15),
        drain: SimDuration::from_secs(6),
        measure_from: SimTime::from_secs(1),
    });
    let (history, _) = spanner::build_history(&result);
    history_to_json(&history).to_pretty()
}

/// A Gryff-RSC WAN run rendered as canonical history JSON.
fn gryff_history(seed: u64, kind: QueueKind, faults: Option<FaultSchedule>) -> String {
    let mut config = gryff::GryffConfig::wan(gryff::Mode::GryffRsc);
    config.queue_kind = kind;
    if let Some(faults) = faults {
        config = config.with_faults(faults, SimDuration::from_millis(1_500));
    }
    let clients = (0..5)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(2, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(999_983).wrapping_add(i as u64)),
            workload: Box::new(gryff::ConflictWorkload::ycsb(
                0.5,
                0.25,
                seed.wrapping_add(i as u64),
            )) as Box<dyn SessionWorkload>,
        })
        .collect();
    let result = gryff::run_gryff(gryff::GryffClusterSpec {
        config,
        net: LatencyMatrix::gryff_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(15),
        drain: SimDuration::from_secs(6),
        measure_from: SimTime::from_secs(1),
    });
    let (history, _) = gryff::build_history(&result);
    history_to_json(&history).to_pretty()
}

/// A composed photo-app run under faults rendered as history JSON.
fn composed_history(seed: u64, kind: QueueKind) -> String {
    let config = ComposedRunConfig {
        num_apps: 2,
        ops_per_service: 1,
        batch: 2,
        duration_secs: 12,
        drain_secs: 8,
        workload: ComposedWorkload::PhotoApp,
        faults: FaultSchedule::new()
            .crash(1, SimTime::from_secs(3), SimTime::from_secs(5))
            .drop_window(LinkScope::All, SimTime::from_secs(7), SimTime::from_secs(9), 0.03)
            .duplicate_window(LinkScope::All, SimTime::from_secs(7), SimTime::from_secs(9), 0.03),
        op_timeout: Some(SimDuration::from_millis(1_200)),
        handoff_every: Some(6),
        queue_kind: kind,
        ..ComposedRunConfig::default()
    };
    let outcome = run_composed(seed, &config);
    let mut recorder = HistoryRecorder::new();
    for app in &outcome.apps {
        for (_, rec) in &app.completed {
            recorder.record(app.node as u64, rec);
        }
    }
    history_to_json(recorder.history()).to_pretty()
}

/// The spanner-oneway shape: asymmetric cuts in both directions plus loss.
fn oneway_faults() -> FaultSchedule {
    FaultSchedule::new()
        .cut_link_oneway(Region(0), Region(1), SimTime::from_secs(3), SimTime::from_secs(5))
        .cut_link_oneway(Region(1), Region(0), SimTime::from_secs(7), SimTime::from_secs(8))
        .drop_window(LinkScope::All, SimTime::from_secs(9), SimTime::from_secs(11), 0.02)
        .duplicate_window(LinkScope::All, SimTime::from_secs(9), SimTime::from_secs(11), 0.02)
}

/// The spanner-commit-crash shape: short crashes landing on commit waits.
fn commit_crash_faults() -> FaultSchedule {
    FaultSchedule::new()
        .crash(0, SimTime::from_millis(3_000), SimTime::from_millis(3_400))
        .crash(0, SimTime::from_millis(6_000), SimTime::from_millis(6_400))
        .crash(0, SimTime::from_millis(9_000), SimTime::from_millis(9_400))
}

#[test]
fn spanner_histories_are_byte_identical_across_queue_kinds() {
    for (label, faults) in [
        ("healthy", None),
        ("oneway", Some(oneway_faults())),
        ("commit-crash", Some(commit_crash_faults())),
    ] {
        let indexed = spanner_history(11, QueueKind::Indexed, faults.clone());
        let heap = spanner_history(11, QueueKind::ReferenceHeap, faults);
        assert_eq!(indexed, heap, "spanner {label}: queue kinds must replay identically");
        assert!(indexed.len() > 1_000, "spanner {label}: the run produced a real history");
    }
}

#[test]
fn gryff_histories_are_byte_identical_across_queue_kinds() {
    let faults = FaultSchedule::new()
        .crash(2, SimTime::from_secs(3), SimTime::from_secs(5))
        .drop_window(LinkScope::All, SimTime::from_secs(7), SimTime::from_secs(9), 0.02);
    for (label, faults) in [("healthy", None), ("faults", Some(faults))] {
        let indexed = gryff_history(5, QueueKind::Indexed, faults.clone());
        let heap = gryff_history(5, QueueKind::ReferenceHeap, faults);
        assert_eq!(indexed, heap, "gryff {label}: queue kinds must replay identically");
    }
}

#[test]
fn composed_fault_histories_are_byte_identical_across_queue_kinds() {
    let indexed = composed_history(7, QueueKind::Indexed);
    let heap = composed_history(7, QueueKind::ReferenceHeap);
    assert_eq!(indexed, heap, "composed: queue kinds must replay identically");
    // And a different seed diverges, so the pin is not vacuous.
    assert_ne!(indexed, composed_history(8, QueueKind::Indexed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random fault schedules: the indexed engine replays the reference
    /// heap byte-for-byte on the full Spanner protocol stack.
    #[test]
    fn random_spanner_fault_schedules_replay_identically(
        seed in 0u64..500,
        victim in 0usize..3,
        crash_at in 2u64..6,
        cut_a in 0usize..3,
        drop_permille in 0u64..50,
    ) {
        let cut_b = (cut_a + 1) % 3;
        let faults = FaultSchedule::new()
            .crash(victim, SimTime::from_secs(crash_at), SimTime::from_secs(crash_at + 2))
            .cut_link_oneway(
                Region(cut_a),
                Region(cut_b),
                SimTime::from_secs(9),
                SimTime::from_secs(10),
            )
            .drop_window(
                LinkScope::All,
                SimTime::from_secs(10),
                SimTime::from_secs(12),
                drop_permille as f64 / 1_000.0,
            );
        let indexed = spanner_history(seed, QueueKind::Indexed, Some(faults.clone()));
        let heap = spanner_history(seed, QueueKind::ReferenceHeap, Some(faults));
        prop_assert_eq!(indexed, heap);
    }
}
