//! End-to-end guarantees of the fault plane: composed runs under scripted
//! partitions, crashes, and lossy windows still certify as RSS; identical
//! `(engine seed, workload seed, FaultSchedule)` triples replay to
//! byte-identical histories; and failure artifacts from fault runs re-check
//! without re-simulating.

use proptest::prelude::*;
use regular_seq::core::checker::certificate::WitnessModel;
use regular_seq::sim::fault::{FaultSchedule, LinkScope};
use regular_seq::sim::net::Region;
use regular_seq::sim::time::{SimDuration, SimTime};
use regular_seq::sweep::artifact::{history_to_json, FailureArtifact};
use regular_seq::sweep::composed::{
    certify_composed, run_composed, ComposedRunConfig, ComposedWorkload,
};
use regular_seq::sweep::Json;

/// A short composed photo-app run with a crash, a partition, and lossy
/// windows — all firing while every lane switches services on every step.
fn chaotic_config(drop_p: f64) -> ComposedRunConfig {
    ComposedRunConfig {
        num_apps: 2,
        ops_per_service: 1,
        batch: 2,
        duration_secs: 14,
        drain_secs: 8,
        workload: ComposedWorkload::PhotoApp,
        faults: FaultSchedule::new()
            .crash(1, SimTime::from_secs(3), SimTime::from_secs(5))
            .partition_region(Region(2), SimTime::from_secs(7), SimTime::from_secs(8))
            .drop_window(LinkScope::All, SimTime::from_secs(9), SimTime::from_secs(11), drop_p)
            .duplicate_window(
                LinkScope::All,
                SimTime::from_secs(9),
                SimTime::from_secs(11),
                drop_p,
            ),
        op_timeout: Some(SimDuration::from_millis(1_200)),
        handoff_every: Some(6),
        ..ComposedRunConfig::default()
    }
}

#[test]
fn composed_photo_app_with_faults_and_handoffs_satisfies_rss() {
    let outcome = run_composed(3, &chaotic_config(0.03));
    assert!(outcome.spanner_ops() > 50, "photo store served load ({})", outcome.spanner_ops());
    assert!(outcome.gryff_ops() > 50, "request queue served load ({})", outcome.gryff_ops());
    assert!(outcome.auto_fences() > 50, "every step is a fenced switch");
    assert!(outcome.handoffs() > 0, "cross-process causal handoffs happened");
    let net = outcome.net_stats;
    assert!(net.dropped > 0 && net.duplicated > 0 && net.expired > 0, "faults fired ({net:?})");
    let certified = certify_composed(&outcome, 2)
        .unwrap_or_else(|v| panic!("chaotic composed run satisfies RSS: {}", v.reason));
    assert!(
        !certified.history.external_communications().is_empty(),
        "handoffs are recorded as external communications"
    );
}

#[test]
fn a_fault_run_artifact_replays_without_resimulating() {
    // Take a certified fault run, corrupt its witness, and dump it exactly
    // the way the sweep dumps failing seeds: the artifact must reproduce the
    // violation from the recorded history alone (no simulator involved).
    let outcome = run_composed(5, &chaotic_config(0.02));
    let certified =
        certify_composed(&outcome, 1).unwrap_or_else(|v| panic!("seed 5 certifies: {}", v.reason));
    let mut witness = certified.witness.clone();
    let last = witness.len() - 1;
    witness.swap(0, last);
    let artifact = FailureArtifact {
        scenario: "composed-faults".to_string(),
        seed: 5,
        model: WitnessModel::Regular,
        violation: "synthetic: witness corrupted for the replay test".to_string(),
        witness,
        history: certified.history,
        deliveries: Vec::new(),
        durability: None,
        schedule: None,
        coverage: None,
    };
    let verdict = artifact.replay();
    assert!(verdict.is_err(), "the corrupted witness must be rejected");

    let dir = std::env::temp_dir().join("regular-fault-artifact-test");
    let path = artifact.save(&dir).expect("artifact saves");
    let loaded = FailureArtifact::load(&path).expect("artifact loads");
    assert_eq!(loaded.replay(), verdict, "replay from disk reproduces the exact verdict");
    assert_eq!(loaded.history, artifact.history, "the history round-trips byte-exactly");
    // And the uncorrupted witness still certifies after the round trip.
    assert_eq!(
        regular_seq::core::checker::certificate::check_witness(
            &loaded.history,
            &certified.witness,
            WitnessModel::Regular
        ),
        Ok(())
    );
    let _ = std::fs::remove_file(path);
}

/// Renders a history as canonical JSON text — the byte-identity yardstick.
fn history_bytes(config: &ComposedRunConfig, seed: u64) -> String {
    let outcome = run_composed(seed, config);
    let mut recorder = regular_seq::session::HistoryRecorder::new();
    for app in &outcome.apps {
        for (_, rec) in &app.completed {
            recorder.record(app.node as u64, rec);
        }
    }
    history_to_json(recorder.history()).to_pretty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fault injection must not break deterministic replay: identical
    /// (engine seed, workload seed, schedule) triples produce byte-identical
    /// histories — the property sweep failure artifacts rely on. The
    /// workload seeds derive from the engine seed inside `run_composed`, so
    /// the triple is fully pinned by `(seed, config)`.
    #[test]
    fn identical_seed_and_schedule_replay_byte_identically(
        seed in 0u64..1_000,
        crash_at in 2u64..5,
        drop_permille in 0u64..60,
    ) {
        let config = ComposedRunConfig {
            num_apps: 2,
            ops_per_service: 1,
            batch: 1,
            duration_secs: 8,
            drain_secs: 6,
            workload: ComposedWorkload::PhotoApp,
            faults: FaultSchedule::new()
                .crash(0, SimTime::from_secs(crash_at), SimTime::from_secs(crash_at + 2))
                .drop_window(
                    LinkScope::All,
                    SimTime::from_secs(5),
                    SimTime::from_secs(7),
                    drop_permille as f64 / 1_000.0,
                ),
            op_timeout: Some(SimDuration::from_millis(1_200)),
            handoff_every: Some(5),
            ..ComposedRunConfig::default()
        };
        let a = history_bytes(&config, seed);
        let b = history_bytes(&config, seed);
        prop_assert_eq!(&a, &b, "same (seed, schedule) must replay byte-identically");
        prop_assert!(Json::parse(&a).is_ok(), "the rendered history is valid JSON");
        // A different seed under the same schedule diverges (the test would
        // be vacuous if the history ignored its inputs).
        let c = history_bytes(&config, seed.wrapping_add(1));
        prop_assert_ne!(a, c, "different seeds must diverge");
    }
}
