//! Live execution plane integration tests: the protocol crates on real OS
//! threads and a scaled wall clock, certified with the same checkers as the
//! simulator.
//!
//! Three angles:
//!
//! * a differential check that a minimal zero-latency deployment certifies on
//!   both planes and makes comparable progress,
//! * the acceptance configuration — a 12-thread Spanner-RSS cluster driven
//!   past 30k operations and streaming-certified online,
//! * a faulted live run (crashes, partitions, drops on the wall clock) that
//!   still certifies.

use regular_seq::core::checker::certificate::WitnessModel;
use regular_seq::live::{run_cluster_live, SpannerLiveSpec, TransportKind};
use regular_seq::session::{SessionConfig, SessionWorkload};
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner::prelude::*;
use regular_seq::sweep::{certify_streaming, run_seed_with, Scenario};

fn uniform_clients(
    num_clients: usize,
    sessions_per_client: usize,
    num_keys: u64,
    seed: u64,
) -> Vec<ClientSpec> {
    (0..num_clients)
        .map(|i| ClientSpec {
            region: i % 3,
            sessions: SessionConfig::closed_loop(sessions_per_client, SimDuration::ZERO)
                .with_workload_seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            workload: Box::new(UniformWorkload { num_keys, ro_fraction: 0.5, keys_per_txn: 2 })
                as Box<dyn SessionWorkload>,
        })
        .collect()
}

/// The same minimal deployment — one client, one session, a zero-latency
/// single-region network — run through the event-queue simulator and the
/// live plane. Thread scheduling makes the live interleaving nondeterministic,
/// so the differential assertions are behavioural, not bitwise: both planes
/// must certify RSS, and the live run must make progress of the same order of
/// magnitude (its only added latency is real scheduling jitter mapped onto
/// the scaled clock).
#[test]
fn live_plane_matches_simulator_on_a_zero_latency_cluster() {
    let seed = 7;
    let stop = SimTime::from_secs(10);
    let drain = SimDuration::from_secs(5);
    let measure_from = SimTime::from_secs(1);
    // Three regions (the wan config spreads replicas over them), zero
    // latency and zero jitter between all of them.
    let zero = [0.0, 0.0, 0.0];
    let zero_net = || LatencyMatrix::from_rtt_ms(&[&zero, &zero, &zero], SimDuration::ZERO);

    let sim = run_cluster(ClusterSpec {
        config: SpannerConfig::wan(Mode::SpannerRss),
        net: zero_net(),
        seed,
        clients: uniform_clients(1, 1, 100, seed),
        stop_issuing_at: stop,
        drain,
        measure_from,
    });
    let (sim_history, sim_witness) = build_history(&sim);
    certify_streaming(&sim_history, &sim_witness, WitnessModel::Regular)
        .expect("simulator run must certify RSS");

    let live = run_cluster_live(SpannerLiveSpec {
        config: SpannerConfig::wan(Mode::SpannerRss),
        net: zero_net(),
        seed,
        clients: uniform_clients(1, 1, 100, seed),
        stop_issuing_at: stop,
        drain,
        measure_from,
        time_scale: 20,
        record_deliveries: true,
        transport: TransportKind::Mpsc,
    });
    let (live_history, live_witness) = build_history_from(&live.completed);
    certify_streaming(&live_history, &live_witness, WitnessModel::Regular)
        .expect("live run must certify RSS");

    assert!(
        sim_history.len() >= 50,
        "simulator baseline too small to compare ({} ops)",
        sim_history.len()
    );
    let ratio = live_history.len() as f64 / sim_history.len() as f64;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "live plane progress diverges from the simulator: {} live vs {} sim ops",
        live_history.len(),
        sim_history.len()
    );

    // The recorded delivery schedule is the replay evidence (the seeded
    // determinism escape hatch): present, and in delivery order.
    assert!(!live.deliveries.is_empty(), "live run must record its delivery schedule");
    assert!(
        live.deliveries.windows(2).all(|w| w[0].seq < w[1].seq),
        "delivery records must be sequenced in delivery order"
    );
}

/// The acceptance configuration of the live plane: 3 shard threads, 8 client
/// threads, and the router (12 OS threads) driving well past 30k operations,
/// with the resulting history streaming-certified as RSS.
#[test]
fn live_spanner_stress_run_certifies_rss_online() {
    let seed = 11;
    let config = SpannerConfig::wan(Mode::SpannerRss);
    let num_shards = config.num_shards;
    let num_clients = 8;
    let result = run_cluster_live(SpannerLiveSpec {
        config,
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients: uniform_clients(num_clients, 4, 500, seed),
        stop_issuing_at: SimTime::from_secs(280),
        drain: SimDuration::from_secs(8),
        measure_from: SimTime::from_secs(1),
        time_scale: 40,
        record_deliveries: false,
        transport: TransportKind::Mpsc,
    });

    let threads = num_shards + num_clients + 1;
    assert!(threads >= 8, "stress deployment must span at least 8 threads, got {threads}");

    let (history, witness) = build_history_from(&result.completed);
    assert!(
        history.len() >= 30_000,
        "stress run must complete at least 30k operations, got {}",
        history.len()
    );
    let stats = certify_streaming(&history, &witness, WitnessModel::Regular)
        .expect("live stress run must certify RSS through the streaming checker");
    assert!(stats.peak_window > 0, "streaming checker saw no concurrency window");
    assert!(result.wall_throughput > 0.0, "wall-clock throughput must be measured");
}

/// Crashes, partitions, drops, and duplicates injected on the wall clock
/// (the `live-spanner-faults` sweep scenario) must leave a certifiable
/// history: lost messages cost throughput and retries, never correctness.
#[test]
fn live_spanner_run_with_faults_still_certifies() {
    let run = run_seed_with(Scenario::LiveSpannerFaults, 1, 2, Some(2_000), false);
    assert!(
        run.report.certified,
        "faulted live run must certify, got violation: {:?}",
        run.report.violation
    );
    assert!(run.artifact.is_none(), "certified run must not emit a failure artifact");
    assert!(
        run.report.dropped > 0,
        "fault schedule must actually drop messages (dropped = {})",
        run.report.dropped
    );
    assert!(
        run.report.dropped + run.report.expired + run.report.duplicated > 10,
        "fault plane barely engaged: dropped {} expired {} duplicated {}",
        run.report.dropped,
        run.report.expired,
        run.report.duplicated
    );
    assert!(run.report.history_ops > 500, "faulted run made too little progress");
}
