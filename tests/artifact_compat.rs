//! Failure-artifact schema compatibility: the hunter's new optional
//! `schedule` and `coverage` fields must never perturb artifacts that do not
//! use them. Artifacts written without the new fields serialize
//! byte-identically to the pre-hunt schema (so existing tooling diffs
//! clean), and pre-hunt artifact files parse unchanged with the new fields
//! reading as absent.

use proptest::prelude::*;
use regular_seq::core::checker::certificate::WitnessModel;
use regular_seq::core::coverage::CoverageSignature;
use regular_seq::core::history::HistoryBuilder;
use regular_seq::core::types::OpId;
use regular_seq::sweep::artifact::FailureArtifact;
use regular_seq::sweep::Json;

/// Builds a small but varied artifact: `n` write/read pairs over `keys`
/// keys, optionally carrying the new hunter fields.
fn build_artifact(seed: u64, n: u64, keys: u64, with_hunt_fields: bool) -> FailureArtifact {
    let mut b = HistoryBuilder::new();
    let mut witness: Vec<OpId> = Vec::new();
    for i in 0..n {
        let key = i % keys;
        let at = i * 40;
        witness.push(b.write(1 + (i % 3) as u32, key, i + 1, at, at + 10));
        witness.push(b.read(1 + ((i + 1) % 3) as u32, key, i + 1, at + 20, at + 30));
    }
    FailureArtifact {
        scenario: "compat-test".to_string(),
        seed,
        model: WitnessModel::Regular,
        violation: "none (valid witness)".to_string(),
        witness,
        history: b.build(),
        deliveries: Vec::new(),
        durability: None,
        schedule: with_hunt_fields
            .then(|| Json::obj(vec![("kind", Json::str("hunt-input")), ("seed", Json::u64(seed))])),
        coverage: with_hunt_fields
            .then(|| CoverageSignature::from_features(vec![0x0001_0000 | (seed as u32 & 0xff)])),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Artifacts that do not use the hunter fields are byte-identical to the
    /// pre-hunt schema: the serialized text never mentions the new keys, and
    /// a serialize→parse→serialize cycle is a fixed point.
    #[test]
    fn plain_artifacts_stay_byte_identical(seed in 0u64..1_000, n in 1u64..12, keys in 1u64..4) {
        let artifact = build_artifact(seed, n, keys, false);
        let text = artifact.to_json().to_pretty();
        prop_assert!(!text.contains("schedule"), "unset schedule must be omitted");
        prop_assert!(!text.contains("coverage"), "unset coverage must be omitted");

        let parsed = FailureArtifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert!(parsed.schedule.is_none());
        prop_assert!(parsed.coverage.is_none());
        prop_assert_eq!(
            parsed.to_json().to_pretty(),
            text,
            "serialize→parse→serialize must be a fixed point"
        );
    }

    /// Artifacts that do carry the hunter fields round-trip them exactly and
    /// leave everything else intact.
    #[test]
    fn hunt_fields_round_trip_exactly(seed in 0u64..1_000, n in 1u64..12, keys in 1u64..4) {
        let artifact = build_artifact(seed, n, keys, true);
        let text = artifact.to_json().to_pretty();
        let parsed = FailureArtifact::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&parsed.schedule, &artifact.schedule, "schedule round-trips");
        prop_assert_eq!(&parsed.coverage, &artifact.coverage, "coverage round-trips");
        prop_assert_eq!(&parsed.history, &artifact.history);
        prop_assert_eq!(&parsed.witness, &artifact.witness);
        prop_assert_eq!(parsed.replay(), artifact.replay(), "the replay verdict is unchanged");
    }

    /// A pre-hunt artifact file — the exact JSON an older build would have
    /// written — parses under the new schema with the new fields absent, and
    /// replays to the same verdict.
    #[test]
    fn old_artifact_files_still_parse(seed in 0u64..1_000, n in 1u64..12, keys in 1u64..4) {
        // An older build's output is byte-identical to a new build's output
        // with the fields unset (established above), so synthesize it that
        // way and treat the text as the on-disk legacy file.
        let legacy_text = build_artifact(seed, n, keys, false).to_json().to_pretty();
        let parsed = FailureArtifact::from_json(&Json::parse(&legacy_text).unwrap())
            .expect("legacy artifacts parse under the new schema");
        prop_assert!(parsed.schedule.is_none());
        prop_assert!(parsed.coverage.is_none());
        prop_assert_eq!(parsed.replay(), Ok(()), "legacy artifacts still replay");
    }
}
