//! Property-based integration tests of the paper's central claim
//! (invariant-equivalence, Theorem 2 / Corollaries C.7 and C.8) and of the
//! relationships between the consistency models.

use proptest::prelude::*;
use regular_seq::core::checker::models::{check, satisfies, Model};
use regular_seq::core::checker::proximal::{check_proximal, ProximalModel};
use regular_seq::core::history::History;
use regular_seq::core::op::{OpKind, OpResult};
use regular_seq::core::spec::SpecState;
use regular_seq::core::transform::transform;
use regular_seq::core::types::{Key, ProcessId, ServiceId, Timestamp, Value};

/// Generates a random *sequentially executed* history: operations run one at a
/// time against the spec (so it is strictly serializable / linearizable by
/// construction), issued round-robin by a few processes.
fn sequential_history(ops: Vec<(u8, u8, bool)>) -> History {
    let mut history = History::new();
    let mut state = SpecState::new();
    let mut now = 0u64;
    for (i, (process, key, is_write)) in ops.into_iter().enumerate() {
        let process = ProcessId((process % 3) as u32 + 1);
        let key = Key((key % 4) as u64 + 1);
        let kind = if is_write {
            OpKind::Write { key, value: Value(1_000 + i as u64) }
        } else {
            OpKind::Read { key }
        };
        let result = state.apply(ServiceId::KV, &kind);
        let result = match (&kind, result) {
            (OpKind::Write { .. }, _) => OpResult::Ack,
            (_, r) => r,
        };
        now += 10;
        let invoke = Timestamp(now);
        now += 10;
        let response = Timestamp(now);
        history.add_complete(process, ServiceId::KV, kind, invoke, response, result);
    }
    history
}

/// Generates a random history with overlapping operations where reads return
/// the value of *some* previously started write to the same key (or null) —
/// not necessarily consistent with any model. Used to check that the model
/// hierarchy (SS ⊆ RSS ⊆ PO-ser, and SS ⊆ CRDB etc.) holds on arbitrary
/// inputs, whether or not they are satisfiable.
fn loose_history(ops: Vec<(u8, u8, bool, u8, u8)>) -> History {
    let mut history = History::new();
    let mut writes_so_far: Vec<(Key, Value)> = Vec::new();
    let mut now = 0u64;
    // Keep each process's operations non-overlapping (well-formed histories:
    // a process has at most one outstanding operation).
    let mut process_free_at = [0u64; 4];
    for (i, (process, key, is_write, overlap, pick)) in ops.into_iter().enumerate() {
        let process_index = (process % 3) as usize + 1;
        let process = ProcessId(process_index as u32);
        let key = Key((key % 3) as u64 + 1);
        now += 10;
        let invoke_us = now.max(process_free_at[process_index] + 1);
        let invoke = Timestamp(invoke_us);
        let response = Timestamp(invoke_us + 5 + (overlap as u64 % 3) * 20);
        process_free_at[process_index] = response.0;
        if is_write {
            let value = Value(1_000 + i as u64);
            writes_so_far.push((key, value));
            history.add_complete(
                process,
                ServiceId::KV,
                OpKind::Write { key, value },
                invoke,
                response,
                OpResult::Ack,
            );
        } else {
            let candidates: Vec<Value> =
                writes_so_far.iter().filter(|(k, _)| *k == key).map(|(_, v)| *v).collect();
            let value = if candidates.is_empty()
                || (pick as usize) % (candidates.len() + 1) == candidates.len()
            {
                Value::NULL
            } else {
                candidates[(pick as usize) % candidates.len()]
            };
            history.add_complete(
                process,
                ServiceId::KV,
                OpKind::Read { key },
                invoke,
                response,
                OpResult::Value(value),
            );
        }
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential executions satisfy every model in the hierarchy.
    #[test]
    fn sequential_histories_satisfy_everything(ops in prop::collection::vec((0u8..3, 0u8..4, any::<bool>()), 1..9)) {
        let h = sequential_history(ops);
        prop_assert!(satisfies(&h, Model::Linearizability));
        prop_assert!(satisfies(&h, Model::StrictSerializability));
        prop_assert!(satisfies(&h, Model::RegularSequentialConsistency));
        prop_assert!(satisfies(&h, Model::RegularSequentialSerializability));
        prop_assert!(satisfies(&h, Model::SequentialConsistency));
        prop_assert!(satisfies(&h, Model::ProcessOrderedSerializability));
        for model in [ProximalModel::Crdb, ProximalModel::OscU, ProximalModel::VvRegularity,
                      ProximalModel::RealTimeCausal, ProximalModel::MwrWeak] {
            prop_assert!(check_proximal(&h, model).unwrap(), "{} rejected a sequential history", model.name());
        }
    }

    /// The model hierarchy: linearizability ⇒ RSC ⇒ sequential consistency,
    /// and the same for the transactional side.
    #[test]
    fn model_hierarchy_holds(ops in prop::collection::vec((0u8..3, 0u8..3, any::<bool>(), 0u8..3, any::<u8>()), 1..8)) {
        let h = loose_history(ops);
        if satisfies(&h, Model::Linearizability) {
            prop_assert!(satisfies(&h, Model::RegularSequentialConsistency));
            prop_assert!(satisfies(&h, Model::StrictSerializability));
            prop_assert!(check_proximal(&h, ProximalModel::VvRegularity).unwrap());
            prop_assert!(check_proximal(&h, ProximalModel::OscU).unwrap());
            prop_assert!(check_proximal(&h, ProximalModel::Crdb).unwrap());
        }
        if satisfies(&h, Model::RegularSequentialConsistency) {
            prop_assert!(satisfies(&h, Model::SequentialConsistency));
            prop_assert!(check_proximal(&h, ProximalModel::RealTimeCausal).unwrap());
        }
        if satisfies(&h, Model::RegularSequentialSerializability) {
            prop_assert!(satisfies(&h, Model::ProcessOrderedSerializability));
        }
    }

    /// Lemma 1 (mechanized): every RSC-satisfying history can be transformed
    /// into an equivalent execution whose service interactions are sequential
    /// and in the witness order, without reordering any process's actions.
    #[test]
    fn lemma_1_transformation_properties(ops in prop::collection::vec((0u8..3, 0u8..3, any::<bool>(), 0u8..3, any::<u8>()), 1..8)) {
        let h = loose_history(ops);
        if let Ok(outcome) = check(&h, Model::RegularSequentialConsistency) {
            if outcome.satisfied {
                let witness = outcome.witness.unwrap();
                let t = transform(&h, &witness);
                prop_assert!(t.per_process_order_preserved());
                prop_assert!(t.respects_witness(&witness));
                prop_assert!(t.service_interactions_sequential());
            }
        }
    }
}
