//! Cross-crate integration tests: full Spanner / Spanner-RSS simulations whose
//! recorded histories are verified with the `regular-core` checkers.

use rand::rngs::SmallRng;
use regular_seq::core::checker::certificate::{check_witness, WitnessModel};
use regular_seq::core::types::Key;
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner::prelude::*;
use regular_seq::workloads::Retwis;

struct RetwisWorkload(Retwis);

impl SessionWorkload for RetwisWorkload {
    fn next_op(&mut self, rng: &mut SmallRng) -> SessionOp {
        let txn = self.0.next_txn(rng);
        let keys = txn.keys.iter().map(|&k| Key(k)).collect();
        if txn.read_only {
            SessionOp::RoTxn { keys }
        } else {
            SessionOp::RwTxn { keys }
        }
    }
}

fn retwis_cluster(mode: Mode, skew: f64, seed: u64, keys: u64) -> RunResult {
    let clients = (0..3)
        .map(|region| ClientSpec {
            region,
            sessions: SessionConfig::partly_open(4.0, 0.9, SimDuration::ZERO),
            workload: Box::new(RetwisWorkload(Retwis::new(keys, skew))) as Box<dyn SessionWorkload>,
        })
        .collect();
    run_cluster(ClusterSpec {
        config: SpannerConfig::wan(mode),
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(30),
        drain: SimDuration::from_secs(20),
        measure_from: SimTime::from_secs(3),
    })
}

#[test]
fn spanner_retwis_is_strictly_serializable() {
    let result = retwis_cluster(Mode::Spanner, 0.7, 21, 10_000);
    assert!(result.client_stats.ro_completed > 200);
    assert!(result.client_stats.rw_completed > 200);
    verify_run(&result).expect("Spanner run must be strictly serializable");
}

#[test]
fn spanner_rss_retwis_satisfies_rss() {
    let result = retwis_cluster(Mode::SpannerRss, 0.7, 21, 10_000);
    assert!(result.client_stats.ro_completed > 200);
    verify_run(&result).expect("Spanner-RSS run must satisfy RSS");
}

#[test]
fn spanner_rss_high_contention_satisfies_rss_but_not_strict_serializability_witness() {
    // Under heavy contention the RSS run both exercises the skip path and
    // (almost always) contains at least one real-time inversion that a
    // strictly serializable system would forbid — demonstrating that the
    // consistency relaxation is observable, not just theoretical.
    let result = retwis_cluster(Mode::SpannerRss, 0.9, 5, 200);
    verify_run(&result).expect("Spanner-RSS run must satisfy RSS");
    let skipped: u64 = result.shard_stats.iter().map(|s| s.ro_skipped_prepared).sum();
    assert!(skipped > 0, "high contention should exercise the RSS skip path");
}

#[test]
fn spanner_rss_ro_tail_latency_not_worse_than_spanner() {
    let baseline = retwis_cluster(Mode::Spanner, 0.9, 9, 2_000);
    let rss = retwis_cluster(Mode::SpannerRss, 0.9, 9, 2_000);
    let mut b = baseline.ro_latencies.clone();
    let mut r = rss.ro_latencies.clone();
    let pb = b.percentile(99.0).unwrap();
    let pr = r.percentile(99.0).unwrap();
    // Allow a little noise but the RSS variant must not be meaningfully worse.
    assert!(
        pr.as_micros() <= pb.as_micros() + 20_000,
        "Spanner-RSS p99 RO latency ({pr}) must not exceed Spanner's ({pb}) by more than 20 ms"
    );
}

#[test]
fn spanner_rw_latency_identical_between_variants() {
    // The RW protocol is byte-for-byte identical in the two variants; compare
    // mean latency (the RW latency distribution is multi-modal — it depends on
    // how many shards a transaction spans — so the median is a fragile
    // statistic when the two runs sample slightly different transaction mixes).
    let baseline = retwis_cluster(Mode::Spanner, 0.5, 13, 50_000);
    let rss = retwis_cluster(Mode::SpannerRss, 0.5, 13, 50_000);
    let pb = baseline.rw_latencies.mean().unwrap().as_micros() as f64;
    let pr = rss.rw_latencies.mean().unwrap().as_micros() as f64;
    let diff = (pb - pr).abs() / pb;
    assert!(diff < 0.15, "mean RW latency should be nearly identical (diff {diff:.3})");
}

#[test]
fn witness_model_mismatch_is_detected() {
    // Sanity-check the testing methodology itself: a Spanner-RSS history from
    // a contended run generally does NOT pass the strict-serializability
    // (real-time) witness check with the RSS witness order, while it does pass
    // the RSS check. (If no inversion happened in this run the check may pass;
    // the seed below is known to produce inversions.)
    let result = retwis_cluster(Mode::SpannerRss, 0.9, 5, 200);
    let (history, witness) = build_history(&result);
    check_witness(&history, &witness, WitnessModel::Regular).expect("RSS witness is valid");
    assert!(
        check_witness(&history, &witness, WitnessModel::RealTime).is_err(),
        "the contended RSS run should visibly relax real-time ordering"
    );
}

#[test]
fn clock_uncertainty_spike_preserves_rss() {
    // Failure injection: a large TrueTime uncertainty (100 ms) lengthens
    // commit wait dramatically but must not violate RSS.
    let mut config = SpannerConfig::wan(Mode::SpannerRss);
    config.truetime_epsilon = SimDuration::from_millis(100);
    let clients = (0..3)
        .map(|region| ClientSpec {
            region,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO),
            workload: Box::new(UniformWorkload { num_keys: 100, ro_fraction: 0.5, keys_per_txn: 2 })
                as Box<dyn SessionWorkload>,
        })
        .collect();
    let result = run_cluster(ClusterSpec {
        config,
        net: LatencyMatrix::spanner_wan(),
        seed: 77,
        clients,
        stop_issuing_at: SimTime::from_secs(20),
        drain: SimDuration::from_secs(20),
        measure_from: SimTime::from_secs(2),
    });
    assert!(result.client_stats.rw_completed > 20);
    verify_run(&result).expect("RSS must hold regardless of clock uncertainty");
}
