//! The Section 4 scenario end to end: a Spanner-RSS store and a Gryff-RSC
//! store in ONE simulation, driven through the unified `Service`/`Session`
//! API, with `libRSS` inserting a real-time fence at the previous service
//! every time a session switches stores.
//!
//! The deployment itself lives in `regular_sweep::composed` (the conformance
//! sweep fans it across seed corpora); these tests pin the end-to-end
//! guarantees on specific configurations: the combined history — both
//! services, one process space — certifies against the RSS (Regular) witness
//! model, which is precisely what the paper's Figure 3 composition rule
//! buys.

use regular_seq::sweep::composed::{
    certify_composed, run_composed, ComposedRunConfig, GRYFF_SERVICE, SPANNER_SERVICE,
};

fn config(num_apps: usize, ops_per_service: usize, batch: usize) -> ComposedRunConfig {
    ComposedRunConfig {
        num_apps,
        ops_per_service,
        batch,
        duration_secs: 20,
        drain_secs: 10,
        ..ComposedRunConfig::default()
    }
}

#[test]
fn composed_spanner_rss_and_gryff_rsc_satisfy_rss_together() {
    let run = run_composed(42, &config(3, 3, 1));
    let spanner_ops = run.spanner_ops();
    let gryff_ops = run.gryff_ops();
    let auto_fences = run.auto_fences();
    assert!(spanner_ops > 100, "the Spanner-RSS store served transactions ({spanner_ops})");
    assert!(gryff_ops > 100, "the Gryff-RSC store served operations ({gryff_ops})");
    assert!(auto_fences > 50, "libRSS inserted fences on service switches ({auto_fences})");
    assert!(run.fences() >= auto_fences, "every planned fence executed as a protocol operation");
    let certified = certify_composed(&run, 1)
        .unwrap_or_else(|v| panic!("the combined execution satisfies RSS: {}", v.reason));
    assert_eq!(
        certified.history.services(),
        vec![SPANNER_SERVICE, GRYFF_SERVICE],
        "both stores appear in one history"
    );
}

#[test]
fn composed_run_with_batched_sessions_satisfies_rss() {
    // Pipelined sessions hop between the stores too: each slot fences
    // independently, and the combined history still certifies as RSS —
    // here with the witness check itself sharded across threads.
    let run = run_composed(7, &config(2, 2, 4));
    let total = run.total_completed();
    assert!(total > 400, "batched composed sessions complete real load ({total})");
    certify_composed(&run, 4)
        .unwrap_or_else(|v| panic!("batched composed run satisfies RSS: {}", v.reason));
}

#[test]
fn photo_sharing_app_over_the_composed_deployment_satisfies_rss() {
    // The ROADMAP's Table 1 scenario as a live workload: uploader lanes
    // write photo + album at the Spanner-RSS store then publish a request
    // at the Gryff-RSC queue; worker lanes claim requests and read the
    // album — every step a fenced service switch.
    use regular_seq::sweep::composed::ComposedWorkload;
    let cfg = ComposedRunConfig {
        workload: ComposedWorkload::PhotoApp,
        ops_per_service: 1,
        ..config(3, 1, 2)
    };
    let run = run_composed(11, &cfg);
    assert!(run.spanner_ops() > 100, "uploads and album reads completed ({})", run.spanner_ops());
    assert!(run.gryff_ops() > 100, "requests published and claimed ({})", run.gryff_ops());
    assert!(
        run.auto_fences() as f64 > 0.8 * (run.spanner_ops() + run.gryff_ops()) as f64 / 2.0,
        "nearly every step switches services ({} fences)",
        run.auto_fences()
    );
    certify_composed(&run, 1)
        .unwrap_or_else(|v| panic!("the photo app satisfies RSS: {}", v.reason));
}

#[test]
fn composed_runs_are_deterministic() {
    let a = run_composed(5, &config(2, 3, 1));
    let b = run_composed(5, &config(2, 3, 1));
    let counts = |r: &regular_seq::sweep::composed::ComposedOutcome| {
        r.apps.iter().map(|a| a.completed.len()).collect::<Vec<_>>()
    };
    assert_eq!(counts(&a), counts(&b));
    assert_eq!(a.auto_fences(), b.auto_fences());
}
