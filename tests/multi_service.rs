//! The Section 4 scenario end to end: a Spanner-RSS store and a Gryff-RSC
//! store in ONE simulation, driven through the unified `Service`/`Session`
//! API, with `libRSS` inserting a real-time fence at the previous service
//! every time a session switches stores.
//!
//! Each application process (session lane) hops between the two stores.
//! After the run, the *combined* history — both services, one process space —
//! is assembled by the shared `HistoryRecorder` and certified against the
//! RSS (Regular) witness model: the composition of the two independently
//! correct services is itself RSS, which is precisely the guarantee the
//! paper's Figure 3 composition rule buys.

use std::collections::HashMap;

use regular_seq::core::checker::assemble::assemble_witness;
use regular_seq::core::checker::certificate::{check_witness, WitnessModel};
use regular_seq::core::op::OpKind;
use regular_seq::core::types::{OpId, ServiceId};
use regular_seq::gryff;
use regular_seq::gryff::prelude::{GryffConfig, GryffService};
use regular_seq::gryff::replica::GryffReplica;
use regular_seq::gryff::workload::ConflictWorkload;
use regular_seq::gryff::Carstamp;
use regular_seq::gryff::GryffMsg;
use regular_seq::session::{
    CompletedRecord, ComposedRunner, HistoryRecorder, MappedService, MultiServiceWorkload,
    RoundRobinWorkload, Service, SessionConfig, SessionWorkload, WitnessHint,
};
use regular_seq::sim::compose::Embedded;
use regular_seq::sim::engine::{Context, Engine, EngineConfig, Node, NodeId};
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner;
use regular_seq::spanner::prelude::{
    Mode as SpannerMode, SpannerConfig, SpannerService, UniformWorkload,
};
use regular_seq::spanner::shard::ShardNode;
use regular_seq::spanner::SpannerMsg;

const SPANNER_SERVICE: ServiceId = ServiceId(0);
const GRYFF_SERVICE: ServiceId = ServiceId(1);

/// The combined wire type of the composite deployment.
#[derive(Clone)]
enum DuoMsg {
    Spanner(SpannerMsg),
    Gryff(GryffMsg),
}

impl From<SpannerMsg> for DuoMsg {
    fn from(m: SpannerMsg) -> Self {
        DuoMsg::Spanner(m)
    }
}
impl From<GryffMsg> for DuoMsg {
    fn from(m: GryffMsg) -> Self {
        DuoMsg::Gryff(m)
    }
}
impl TryFrom<DuoMsg> for SpannerMsg {
    type Error = ();
    fn try_from(m: DuoMsg) -> Result<Self, ()> {
        match m {
            DuoMsg::Spanner(s) => Ok(s),
            DuoMsg::Gryff(_) => Err(()),
        }
    }
}
impl TryFrom<DuoMsg> for GryffMsg {
    type Error = ();
    fn try_from(m: DuoMsg) -> Result<Self, ()> {
        match m {
            DuoMsg::Gryff(g) => Ok(g),
            DuoMsg::Spanner(_) => Err(()),
        }
    }
}

/// A node of the composite deployment.
enum DuoNode {
    SpannerShard(Embedded<ShardNode, SpannerMsg>),
    GryffReplica(Embedded<GryffReplica, GryffMsg>),
    App(ComposedRunner<DuoMsg>),
}

impl Node<DuoMsg> for DuoNode {
    fn on_start(&mut self, ctx: &mut Context<DuoMsg>) {
        match self {
            DuoNode::SpannerShard(n) => n.on_start(ctx),
            DuoNode::GryffReplica(n) => n.on_start(ctx),
            DuoNode::App(n) => n.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Context<DuoMsg>, from: NodeId, msg: DuoMsg) {
        match self {
            DuoNode::SpannerShard(n) => n.on_message(ctx, from, msg),
            DuoNode::GryffReplica(n) => n.on_message(ctx, from, msg),
            DuoNode::App(n) => n.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<DuoMsg>, tag: u64) {
        match self {
            DuoNode::SpannerShard(n) => n.on_timer(ctx, tag),
            DuoNode::GryffReplica(n) => n.on_timer(ctx, tag),
            DuoNode::App(n) => n.on_timer(ctx, tag),
        }
    }
}

/// One app node's results: node id, completions annotated with the producing
/// service index, and the number of auto-fences `libRSS` executed.
type AppResult = (NodeId, Vec<(usize, CompletedRecord)>, u64);

struct DuoRun {
    apps: Vec<AppResult>,
}

/// Runs the composite deployment: 3 Spanner-RSS shards + 5 Gryff-RSC
/// replicas, `num_apps` composed client nodes whose sessions alternate
/// between the two stores every `ops_per_service` operations.
fn run_duo(seed: u64, num_apps: usize, ops_per_service: usize, batch: usize) -> DuoRun {
    let spanner_cfg = SpannerConfig::wan(SpannerMode::SpannerRss);
    let gryff_cfg = GryffConfig::wan(gryff::config::Mode::GryffRsc);
    // Both topologies use regions 0..=4 of the Gryff WAN matrix; the Spanner
    // stores' three leaders sit in regions 0/1/2.
    let net = LatencyMatrix::gryff_wan();
    let stop_issuing_at = SimTime::from_secs(20);
    let engine_cfg = EngineConfig {
        default_service_time: spanner_cfg.shard_service_time,
        max_time: stop_issuing_at + SimDuration::from_secs(10),
        truetime_epsilon: spanner_cfg.truetime_epsilon,
    };
    let mut engine: Engine<DuoMsg, DuoNode> = Engine::new(engine_cfg, net.clone(), seed);

    // Spanner shards.
    let mut shard_nodes = Vec::new();
    let mut replication_delays = Vec::new();
    for shard in 0..spanner_cfg.num_shards {
        let delay = spanner_cfg.replication_delay(shard, &net);
        replication_delays.push(delay);
        let id = engine.add_node_with(
            DuoNode::SpannerShard(Embedded::new(ShardNode::new(&spanner_cfg, shard, delay))),
            spanner_cfg.leader_regions[shard],
            spanner_cfg.shard_service_time,
        );
        shard_nodes.push(id);
    }
    // Gryff replicas.
    let mut replica_nodes = Vec::new();
    for i in 0..gryff_cfg.num_replicas {
        let id = engine.add_node_with(
            DuoNode::GryffReplica(Embedded::new(GryffReplica::new(&gryff_cfg, i))),
            gryff_cfg.replica_regions[i],
            gryff_cfg.replica_service_time,
        );
        replica_nodes.push(id);
    }
    // Composed app nodes: each drives sessions hopping between both stores.
    let mut app_ids = Vec::new();
    for i in 0..num_apps {
        let region = i % 3;
        let s_core = SpannerService::new(spanner::client_config(
            &spanner_cfg,
            &net,
            region,
            shard_nodes.clone(),
            replication_delays.clone(),
        ))
        .with_service_id(SPANNER_SERVICE);
        let g_core = GryffService::new(gryff::client_config(&gryff_cfg, replica_nodes.clone()))
            .with_service_id(GRYFF_SERVICE);
        let services: Vec<Box<dyn Service<Msg = DuoMsg>>> = vec![
            Box::new(MappedService::with_tag_namespace(s_core, 0, 2)),
            Box::new(MappedService::with_tag_namespace(g_core, 1, 2)),
        ];
        let workload = RoundRobinWorkload::new(
            vec![
                Box::new(UniformWorkload { num_keys: 60, ro_fraction: 0.5, keys_per_txn: 2 })
                    as Box<dyn SessionWorkload>,
                Box::new(ConflictWorkload::ycsb(0.5, 0.4, i as u64)) as Box<dyn SessionWorkload>,
            ],
            ops_per_service,
        );
        let runner = ComposedRunner::new(
            services,
            SessionConfig::closed_loop(2, SimDuration::ZERO).with_batch(batch),
            stop_issuing_at,
            Box::new(workload) as Box<dyn MultiServiceWorkload>,
        );
        let id =
            engine.add_node_with(DuoNode::App(runner), region, spanner_cfg.client_service_time);
        app_ids.push(id);
    }

    engine.run();

    let apps = app_ids
        .into_iter()
        .map(|id| match engine.node(id) {
            DuoNode::App(runner) => (id, runner.completed.clone(), runner.fence_stats().executed),
            _ => unreachable!("app ids point at composed runners"),
        })
        .collect();
    DuoRun { apps }
}

/// Builds the combined history and certifies it against the RSS (Regular)
/// witness model.
///
/// Edge construction per protocol:
///
/// * Spanner **read-write** transactions are chained in commit-timestamp
///   order (writes really are totally ordered; commit wait keeps that order
///   consistent with real time and the cross-service hops). Read-only
///   transactions are *not* chained globally — RSS lets a stale snapshot
///   float later in the serialization, which the cross-service causal edges
///   exploit — but each is pinned per key between the version it observed
///   and the next write of that key.
/// * Gryff ops contribute their per-key carstamp chains.
/// * Every session lane contributes its process order — including the
///   cross-service hops the fences make safe.
fn certify_combined_rss(run: &DuoRun) {
    let mut recorder = HistoryRecorder::new();
    // Spanner read-write transactions: (ts, finish, op).
    let mut spanner_rw: Vec<(u64, u64, OpId)> = Vec::new();
    // Spanner writes per key: (ts, value, op).
    let mut spanner_writes: HashMap<u64, Vec<(u64, u64, OpId)>> = HashMap::new();
    // Spanner read-only transactions: (serialization ts, op, [(key, value)]).
    type SpannerRo = (u64, OpId, Vec<(u64, u64)>);
    let mut spanner_ro: Vec<SpannerRo> = Vec::new();
    let mut per_key: HashMap<u64, Vec<(Carstamp, u8, u64, OpId)>> = HashMap::new();
    for (client, completed, _) in &run.apps {
        for (svc, rec) in completed {
            let id = recorder.record(*client as u64, rec);
            match *svc {
                0 => {
                    let ts = rec.witness_ts().unwrap_or_else(|| rec.finish.as_micros());
                    match (&rec.kind, &rec.result) {
                        (OpKind::RwTxn { writes, .. }, _) => {
                            spanner_rw.push((ts, rec.finish.as_micros(), id));
                            for (k, v) in writes {
                                spanner_writes.entry(k.0).or_default().push((ts, v.0, id));
                            }
                        }
                        (OpKind::RoTxn { .. }, regular_seq::core::op::OpResult::Values(vs)) => {
                            spanner_ro.push((ts, id, vs.iter().map(|(k, v)| (k.0, v.0)).collect()));
                        }
                        _ => {} // fences: process order only
                    }
                }
                _ => {
                    let (key, rank) = match &rec.kind {
                        OpKind::Read { key } => (Some(*key), 1),
                        OpKind::Write { key, .. } | OpKind::Rmw { key, .. } => (Some(*key), 0),
                        _ => (None, 0),
                    };
                    if let (Some(k), WitnessHint::Carstamp { count, writer }) = (key, rec.witness) {
                        per_key.entry(k.0).or_default().push((
                            Carstamp { count, writer },
                            rank,
                            rec.finish.as_micros(),
                            id,
                        ));
                    }
                }
            }
        }
    }
    let mut edges: Vec<(OpId, OpId)> = Vec::new();
    // Spanner write chain.
    spanner_rw.sort_unstable();
    for w in spanner_rw.windows(2) {
        edges.push((w[0].2, w[1].2));
    }
    // Spanner read-only placement: after the observed version, before the
    // next write of each read key.
    for list in spanner_writes.values_mut() {
        list.sort_unstable();
    }
    for (ts, ro, reads) in &spanner_ro {
        for (key, value) in reads {
            let Some(writes) = spanner_writes.get(key) else { continue };
            if *value != 0 {
                if let Some(&(_, _, w)) = writes.iter().find(|(_, v, _)| v == value) {
                    edges.push((w, *ro));
                }
            }
            if let Some(&(_, _, w_next)) = writes.iter().find(|(wts, _, _)| wts > ts) {
                edges.push((*ro, w_next));
            }
        }
    }
    // Gryff carstamp chains.
    for (_, mut items) in per_key {
        items.sort_unstable();
        for w in items.windows(2) {
            edges.push((w[0].3, w[1].3));
        }
    }
    edges.extend(recorder.process_order_edges());
    let history = recorder.into_history();
    history.validate().expect("the combined history is well-formed");
    assert_eq!(
        history.services(),
        vec![SPANNER_SERVICE, GRYFF_SERVICE],
        "both stores appear in one history"
    );
    let witness = assemble_witness(&history, &edges, WitnessModel::Regular)
        .expect("combined constraints are acyclic (the fences make the composition RSS)");
    check_witness(&history, &witness, WitnessModel::Regular)
        .expect("the combined execution satisfies RSS");
}

#[test]
fn composed_spanner_rss_and_gryff_rsc_satisfy_rss_together() {
    let run = run_duo(42, 3, 3, 1);
    let mut spanner_ops = 0u64;
    let mut gryff_ops = 0u64;
    let mut fences = 0u64;
    let mut auto_fences = 0u64;
    for (_, completed, executed) in &run.apps {
        auto_fences += executed;
        for (svc, rec) in completed {
            if rec.kind.is_fence() {
                fences += 1;
            } else if *svc == 0 {
                spanner_ops += 1;
            } else {
                gryff_ops += 1;
            }
        }
    }
    assert!(spanner_ops > 100, "the Spanner-RSS store served transactions ({spanner_ops})");
    assert!(gryff_ops > 100, "the Gryff-RSC store served operations ({gryff_ops})");
    assert!(auto_fences > 50, "libRSS inserted fences on service switches ({auto_fences})");
    assert!(fences >= auto_fences, "every planned fence executed as a protocol operation");
    certify_combined_rss(&run);
}

#[test]
fn composed_run_with_batched_sessions_satisfies_rss() {
    // Pipelined sessions hop between the stores too: each slot fences
    // independently, and the combined history still certifies as RSS.
    let run = run_duo(7, 2, 2, 4);
    let total: usize = run.apps.iter().map(|(_, c, _)| c.len()).sum();
    assert!(total > 400, "batched composed sessions complete real load ({total})");
    certify_combined_rss(&run);
}

#[test]
fn composed_runs_are_deterministic() {
    let a = run_duo(5, 2, 3, 1);
    let b = run_duo(5, 2, 3, 1);
    let counts = |r: &DuoRun| r.apps.iter().map(|(_, c, _)| c.len()).collect::<Vec<_>>();
    assert_eq!(counts(&a), counts(&b));
    let fences = |r: &DuoRun| r.apps.iter().map(|(_, _, f)| *f).sum::<u64>();
    assert_eq!(fences(&a), fences(&b));
}
