//! Differential conformance of the shared `HistoryRecorder` against the
//! legacy per-harness history extraction.
//!
//! Before the unified session API, each protocol harness hand-rolled its own
//! `CompletedTxn → History` / `CompletedOp → History` conversion. Those paths
//! are deleted; this test keeps the legacy *algorithm* alive (inlined below,
//! faithfully: per-`(client, session)` process assignment, orphan processes
//! numbered from 1 000 000, insertion-order op ids) and asserts that a seeded
//! Spanner-RSS run and a seeded Gryff-RSC run produce byte-identical
//! `History` values through the new shared recorder.

use std::collections::HashMap;

use regular_seq::core::history::History;
use regular_seq::core::types::{OpId, ProcessId, Timestamp};
use regular_seq::gryff::prelude as gryff;
use regular_seq::session::{CompletedRecord, SessionConfig};
use regular_seq::sim::engine::NodeId;
use regular_seq::sim::{LatencyMatrix, SimDuration, SimTime};
use regular_seq::spanner::prelude as spanner;

/// The legacy extraction, verbatim in structure: one process per
/// `(client node, session)` pair assigned in first-appearance order, a fresh
/// high-numbered process per orphaned completion, operations appended in
/// per-client completion order.
///
/// With `batch = 1` every session has exactly one lane (slot 0), so the new
/// recorder's `(client, session, slot)` process key collapses to the legacy
/// `(client, session)` key and the two algorithms must agree bit for bit.
fn legacy_build_history(completed: &[(NodeId, Vec<CompletedRecord>)]) -> History {
    let mut history = History::new();
    let mut process_of: HashMap<(NodeId, u64), ProcessId> = HashMap::new();
    let mut orphan_pid = 1_000_000u32;
    for (client, records) in completed {
        for rec in records {
            let pid = if rec.orphan {
                orphan_pid += 1;
                ProcessId(orphan_pid)
            } else {
                let next_pid = ProcessId((process_of.len() + 1) as u32);
                *process_of.entry((*client, rec.session)).or_insert(next_pid)
            };
            history.add_complete(
                pid,
                rec.service,
                rec.kind.clone(),
                Timestamp(rec.invoke.as_micros()),
                Timestamp(rec.finish.as_micros()),
                rec.result.clone(),
            );
        }
    }
    history
}

/// The legacy Spanner witness construction: sort by
/// `(protocol timestamp, read-only rank, finish, op id)`.
fn legacy_spanner_witness(completed: &[(NodeId, Vec<CompletedRecord>)]) -> Vec<OpId> {
    let mut keys: Vec<(u64, u8, u64, OpId)> = Vec::new();
    let mut next = 0u32;
    for (_, records) in completed {
        for rec in records {
            let id = OpId(next);
            next += 1;
            let ts = rec.witness_ts().expect("spanner records carry timestamps");
            keys.push((ts, u8::from(rec.kind.is_read_only()), rec.finish.as_micros(), id));
        }
    }
    keys.sort_unstable();
    keys.into_iter().map(|(_, _, _, id)| id).collect()
}

fn spanner_run(seed: u64) -> spanner::RunResult {
    let clients = (0..3)
        .map(|region| spanner::ClientSpec {
            region,
            sessions: SessionConfig::closed_loop(4, SimDuration::ZERO),
            workload: Box::new(spanner::UniformWorkload {
                num_keys: 60,
                ro_fraction: 0.5,
                keys_per_txn: 2,
            }) as Box<dyn spanner::SessionWorkload>,
        })
        .collect();
    spanner::run_cluster(spanner::ClusterSpec {
        config: spanner::SpannerConfig::wan(spanner::Mode::SpannerRss),
        net: LatencyMatrix::spanner_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(15),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(2),
    })
}

fn gryff_run(seed: u64) -> gryff::GryffRunResult {
    let clients = (0..5)
        .map(|i| gryff::GryffClientSpec {
            region: i % 5,
            sessions: SessionConfig::closed_loop(3, SimDuration::ZERO),
            workload: Box::new(gryff::ConflictWorkload::ycsb(0.5, 0.4, i as u64))
                as Box<dyn gryff::SessionWorkload>,
        })
        .collect();
    gryff::run_gryff(gryff::GryffClusterSpec {
        config: gryff::GryffConfig::wan(gryff::Mode::GryffRsc),
        net: LatencyMatrix::gryff_wan(),
        seed,
        clients,
        stop_issuing_at: SimTime::from_secs(15),
        drain: SimDuration::from_secs(5),
        measure_from: SimTime::from_secs(2),
    })
}

#[test]
fn spanner_rss_history_matches_legacy_extraction() {
    let result = spanner_run(23);
    assert!(result.client_stats.rw_completed > 50, "the run produced real load");
    let (new_history, new_witness) = spanner::build_history(&result);
    let legacy = legacy_build_history(&result.completed);
    assert_eq!(new_history, legacy, "the shared recorder reproduces the legacy History exactly");
    assert_eq!(
        new_witness,
        legacy_spanner_witness(&result.completed),
        "the timestamp witness order is unchanged"
    );
}

#[test]
fn gryff_rsc_history_matches_legacy_extraction() {
    let result = gryff_run(23);
    assert!(result.client_stats.reads > 100, "the run produced real load");
    let (new_history, new_edges) = gryff::build_history(&result);
    let legacy = legacy_build_history(&result.completed);
    assert_eq!(new_history, legacy, "the shared recorder reproduces the legacy History exactly");
    // The legacy edge construction grouped per key and per process through
    // hash maps, so edge *order* was never meaningful; the edge set is.
    let mut edges = new_edges;
    edges.sort_unstable();
    edges.dedup();
    assert!(!edges.is_empty());
}

#[test]
fn spanner_histories_are_identical_across_extraction_runs() {
    // Extraction is a pure function of the run: building twice is bit-equal
    // (guards against hidden iteration-order nondeterminism in the recorder).
    let result = spanner_run(29);
    let (a, wa) = spanner::build_history(&result);
    let (b, wb) = spanner::build_history(&result);
    assert_eq!(a, b);
    assert_eq!(wa, wb);
}
