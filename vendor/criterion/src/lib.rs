//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! and `Bencher::iter_batched` — on top of a plain wall-clock harness:
//! each benchmark is warmed up, then timed over `sample_size` samples, and
//! the per-iteration median/mean are printed. `--test` (the CI smoke mode)
//! runs every benchmark body exactly once. Statistical machinery (outlier
//! analysis, HTML reports) is intentionally absent.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the stub treats all variants alike
/// (setup runs outside the timed section for every batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// A named benchmark id (`BenchmarkId::new("f", 10)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let n = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / n as u32);
    }

    /// Times `routine` over inputs produced (outside the timed section) by
    /// `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let n = self.iters_per_sample;
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / n as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None, test_mode: false, default_sample_size: 20 }
    }
}

impl Criterion {
    /// Builds the harness from the process arguments (`--test` for the smoke
    /// mode; the first free-standing argument is a substring filter).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo/criterion callers commonly pass; ignored.
                "--bench" | "--noplot" | "--quiet" | "-n" => {}
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(None, &id.into().id, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        group: Option<&str>,
        name: &str,
        sample_size: usize,
        mut f: F,
    ) {
        let full_name = match group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut samples = Vec::new();
            let mut bencher =
                Bencher { samples: &mut samples, iters_per_sample: 1, test_mode: true };
            f(&mut bencher);
            println!("{full_name}: test ok");
            return;
        }
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ≥ ~2ms (or a single iteration is already slower than that).
        let mut iters = 1u64;
        loop {
            let mut samples = Vec::new();
            let mut bencher =
                Bencher { samples: &mut samples, iters_per_sample: iters, test_mode: false };
            f(&mut bencher);
            let per_iter = samples.first().copied().unwrap_or(Duration::ZERO);
            if per_iter * iters as u32 >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut bencher =
                Bencher { samples: &mut samples, iters_per_sample: iters, test_mode: false };
            f(&mut bencher);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{full_name}: median {} / mean {} per iter ({} samples x {} iters)",
            format_duration(median),
            format_duration(mean),
            samples.len(),
            iters
        );
    }

    /// Prints the trailing summary (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let name = self.name.clone();
        self.criterion.run_one(Some(&name), &id.into().id, sample_size, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
