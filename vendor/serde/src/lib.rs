//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! histories and protocol messages can be persisted once a real registry is
//! available, but no code path serializes anything yet (there are no
//! `T: Serialize` bounds anywhere). The derives therefore expand to nothing;
//! swapping in the real crate via `[workspace.dependencies]` requires no
//! source change. Binary encodings that must actually work today — the
//! write-ahead-log record formats and the failure-artifact JSON — are
//! hand-rolled instead (`regular_storage::codec`, `regular_sweep::json`)
//! precisely because this stub is derive-only.

use proc_macro::TokenStream;

/// Marker derive; expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive; expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
