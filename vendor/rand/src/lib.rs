//! Offline stand-in for the `rand` crate.
//!
//! The simulator and workload generators only need deterministic, seeded
//! pseudo-randomness (`SmallRng::seed_from_u64` plus the `Rng` convenience
//! methods), so this crate implements exactly that surface on top of
//! xoshiro256++ with a splitmix64 seeder. It is API-compatible with the
//! subset of `rand 0.8` the workspace uses; swap it for the real crate by
//! changing the workspace `[workspace.dependencies]` entry when a registry
//! is available.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value range
/// (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts. The output type parameter lets the
/// compiler infer integer-literal range bounds from the call site, matching
/// `rand 0.8`'s `SampleRange<T>`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    // Widening-multiply mapping (Lemire); bias is negligible for simulation.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-distributable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seeded generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=10);
            assert!((1..=10).contains(&y));
            let f = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
