//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use — integer-range and `any::<T>()` strategies, tuples,
//! `prop_map`, `prop::collection::vec`, and the `proptest!` /
//! `prop_assert!` macros — driven by a deterministic seeded RNG. There is
//! no shrinking: a failing case panics with the generated value's `Debug`
//! representation, which is reproducible because the per-case seeds are
//! fixed.

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map: f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The per-property driver used by the `proptest!` expansion.
pub mod runner {
    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    /// Runs `body` once per case with a deterministic per-case RNG.
    pub fn run<F: FnMut(&mut TestRng, u64)>(config: &ProptestConfig, mut body: F) {
        for case in 0..config.cases as u64 {
            let mut rng = TestRng::seed_from_u64(0x5EED_0000_0000_0000 ^ case);
            body(&mut rng, case);
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Alias of the crate root, so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics with the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::runner::run(&config, |__rng, __case| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                    let __case_desc = format!(
                        concat!("case ", "{}", $(", ", stringify!($arg), " = {:?}"),+),
                        __case $(, &$arg)+
                    );
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!("proptest failure in {}: {}", stringify!($name), __case_desc);
                        ::std::panic::resume_unwind(payload);
                    }
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_tuples_and_vecs(xs in prop::collection::vec((0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b)), 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for (a, _) in xs {
                prop_assert!(a < 4, "range strategy out of bounds: {}", a);
            }
        }
    }
}
