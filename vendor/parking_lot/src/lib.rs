//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind the
//! poison-free `lock()` signature the workspace uses.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutex whose `lock` never returns a poison error: a poisoned lock is
/// recovered (the protected data is still accessible, as in `parking_lot`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
